"""Figure 12: distribution of runtime value sizes (significant bytes)."""

from repro.experiments import figure12_data_size_distribution


def test_figure12_data_size_distribution(run_once):
    histogram = run_once(figure12_data_size_distribution)
    assert abs(sum(histogram.values()) - 1.0) < 1e-6
    # Narrow values dominate (the paper reports ~43% single-byte values) and
    # there is a visible 5-byte population coming from memory addresses.
    assert histogram[1] > 0.25
    assert histogram[1] > histogram[3]
    assert histogram[5] > histogram[6]
