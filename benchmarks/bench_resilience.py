"""Supervision overhead on the happy path: fault-tolerant sweep vs direct.

The resilience runtime threads several seams through the hot evaluation
paths: a chaos probe and a classify-wrapping ``try`` around every sweep
group, checksummed store publishes, stale-temp reaping at store open,
and amortized budget probes in the simulator loops.  All of that must be
(near) free when nothing fails — fault tolerance is bought for the
unhappy path, not paid on every healthy sweep.

Both sides run the identical warm design-space sweep (every group served
by snapshot replay, zero simulator steps): the supervised side through
the public ``engine.sweep`` (chaos probe + failure classification +
error-row machinery armed), the direct side calling the group scorer
with none of the supervision seams.  The supervised side must stay
within ``_OVERHEAD_BAR`` of direct — the CI-enforced ceiling behind the
"supervision is free until it isn't" claim in ``docs/resilience.md``.
"""

from __future__ import annotations

import gc
import time

import pytest

from repro.experiments.engine import ExperimentConfig, ExperimentEngine
from repro.experiments.store import ResultStore
from repro.experiments.sweep import SweepSpec, _score_group
from repro.hardware import gating
from repro.workloads import workload_by_name

#: Suite workloads the warm sweep runs over.
_WORKLOADS = ("li", "ijpeg")

#: Supervised warm sweep may cost at most this multiple of the direct
#: unsupervised scoring loop (CI-enforced ceiling).
_OVERHEAD_BAR = 1.05


@pytest.fixture(scope="module")
def warm_sweep(tmp_path_factory):
    """A store warmed with snapshots plus the sweep spec to score."""
    root = tmp_path_factory.mktemp("resilience-store")
    engine = ExperimentEngine(store=ResultStore(root), jobs=1)
    spec = SweepSpec.cartesian(workloads=list(_WORKLOADS))
    # Warm the snapshot layer: one materialized evaluation per workload.
    for name in _WORKLOADS:
        engine.evaluate(ExperimentConfig(workload=name), pipeline="materialized")
    # Verify equivalence outside the timed region: both sides must
    # produce identical row cells from the same warm snapshots.
    supervised = {
        (row.workload, row.config, row.policy): (row.cycles, row.energy_nj)
        for row in engine.sweep(spec)
    }
    direct = {
        (workload, config, policy): cell
        for workload, config, policy, cell in _direct_cells(engine, spec)
    }
    assert supervised == direct
    return engine, spec


def _direct_cells(engine, spec):
    """The sweep's per-group scoring with no supervision seams at all."""
    points = list(spec.iter_points())
    config_map = spec.config_map()
    groups: dict[tuple, list[int]] = {}
    for index, point in enumerate(points):
        signature = (
            point.workload,
            point.mechanism,
            point.threshold_nj,
            point.conventional_vrp,
        )
        groups.setdefault(signature, []).append(index)
    cells = []
    for (name, mechanism, threshold_nj, conventional_vrp), indices in groups.items():
        workload = workload_by_name(name)
        config_names: list[str] = []
        policy_names: list[str] = []
        for index in indices:
            point = points[index]
            if point.config not in config_names:
                config_names.append(point.config)
            if point.policy not in policy_names:
                policy_names.append(point.policy)
        configs = [config_map[config_name] for config_name in config_names]
        policies = {policy: gating.get(policy) for policy in policy_names}
        _, timings, _, energies = _score_group(
            engine,
            workload,
            mechanism,
            threshold_nj,
            conventional_vrp,
            configs,
            policies,
            "auto",
        )
        position = {config_name: i for i, config_name in enumerate(config_names)}
        for index in indices:
            point = points[index]
            at = position[point.config]
            cells.append(
                (
                    point.workload,
                    point.config,
                    point.policy,
                    (timings[at].cycles, energies[at][point.policy].total),
                )
            )
    return cells


def _timed(fn, *args) -> float:
    gc.collect()
    gc.disable()
    try:
        start = time.perf_counter()
        fn(*args)
        return time.perf_counter() - start
    finally:
        gc.enable()


def _supervised_pass(engine, spec):
    for _ in engine.sweep(spec):
        pass


def _direct_pass(engine, spec):
    _direct_cells(engine, spec)


def _measure(engine, spec, rounds: int = 5) -> dict[str, float]:
    """Interleaved best-of-``rounds`` seconds per side, so one background
    hiccup cannot skew a single side."""
    best = {"supervised": float("inf"), "direct": float("inf")}
    for _ in range(rounds):
        best["direct"] = min(best["direct"], _timed(_direct_pass, engine, spec))
        best["supervised"] = min(
            best["supervised"], _timed(_supervised_pass, engine, spec)
        )
    return best


def test_supervision_overhead_on_warm_sweep(benchmark, warm_sweep):
    engine, spec = warm_sweep
    best = benchmark.pedantic(_measure, args=(engine, spec), rounds=1, iterations=1)
    ratio = best["supervised"] / best["direct"]
    if ratio > _OVERHEAD_BAR:
        # One remeasure before failing: a loaded shared runner can skew a
        # single sample set; the bar guards a property of the code, not
        # of the scheduler.
        best = _measure(engine, spec)
        ratio = min(ratio, best["supervised"] / best["direct"])

    benchmark.extra_info["rows"] = len(spec)
    benchmark.extra_info["direct_ms"] = round(best["direct"] * 1e3, 2)
    benchmark.extra_info["supervised_ms"] = round(best["supervised"] * 1e3, 2)
    benchmark.extra_info["overhead_ratio"] = round(ratio, 4)

    assert ratio <= _OVERHEAD_BAR, (
        f"supervised warm sweep costs {ratio:.3f}x the direct scoring loop "
        f"(ceiling: {_OVERHEAD_BAR}x over {len(spec)} rows)"
    )
