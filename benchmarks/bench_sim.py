"""Simulator dispatch tiers: block-compiled vs fast vs reference.

The block compiler (``repro/sim/blockc.py``) replaced per-instruction
closure dispatch with straight-line Python per basic block, batched trace
emission and compiled-program reuse across runs.  This benchmark measures
end-to-end simulation throughput (dynamic instructions per second, with
trace collection — the configuration every cold experiment fill pays) for
all three tiers on suite workloads, using one ``Machine`` per workload so
the steady state being measured is exactly what repeated experiment runs
see: zero recompilation, per-run state bound into cached compiled code.

The ≥2x block-over-fast bar is asserted (not just tracked), mirroring how
``bench_trace.py`` enforces the columnar-engine win; per-tier
instructions/sec are recorded in ``extra_info`` for trend tracking.
"""

from __future__ import annotations

import gc
import time

import pytest

from repro.sim import Machine
from repro.workloads import workload_by_name

#: Suite workloads the tiers are timed on (sizeable loop + memory mix).
_WORKLOADS = ("go", "ijpeg")

#: The block tier must beat the fast per-instruction tier by this factor.
_BLOCK_VS_FAST_BAR = 2.0


@pytest.fixture(scope="module")
def machines():
    """One Machine per workload, with every tier's compiled artifacts warm."""
    prepared = {}
    total_instructions = 0
    for name in _WORKLOADS:
        workload = workload_by_name(name)
        program = workload.build()
        workload.apply_input(program, "ref")
        machine = Machine(program)
        # Warm the caches (and verify the tiers agree) outside the timed
        # region: compilation happens once per Machine, not per run.
        runs = {
            tier: machine.run(collect_trace=True, dispatch=tier)
            for tier in ("reference", "fast", "block")
        }
        for tier in ("fast", "block"):
            assert runs[tier].trace.records == runs["reference"].trace.records, tier
            assert runs[tier].output == runs["reference"].output, tier
        total_instructions += runs["block"].instructions
        prepared[name] = machine
    return prepared, total_instructions


def _time_tier(prepared, tier: str) -> float:
    """One timed pass of ``tier`` over every workload (trace collected)."""
    total = 0.0
    for machine in prepared.values():
        gc.collect()
        gc.disable()
        try:
            start = time.perf_counter()
            machine.run(collect_trace=True, dispatch=tier)
            total += time.perf_counter() - start
        finally:
            gc.enable()
    return total


def _measure(prepared, rounds: int = 5) -> dict[str, float]:
    """Interleaved best-of-``rounds`` seconds per tier, so one background
    hiccup cannot skew a single side."""
    best = {tier: float("inf") for tier in ("reference", "fast", "block")}
    for _ in range(rounds):
        for tier in best:
            best[tier] = min(best[tier], _time_tier(prepared, tier))
    return best


def test_block_tier_simulation_speedup(benchmark, machines):
    prepared, total_instructions = machines

    best = benchmark.pedantic(_measure, args=(prepared,), rounds=1, iterations=1)
    ratio = best["fast"] / best["block"]
    if ratio < _BLOCK_VS_FAST_BAR:
        # One remeasure before failing: a loaded shared runner can depress
        # a single sample set; the bar guards a property, not a scheduler.
        best = _measure(prepared)
        ratio = max(ratio, best["fast"] / best["block"])

    for tier, seconds in best.items():
        benchmark.extra_info[f"{tier}_best_s"] = round(seconds, 4)
        benchmark.extra_info[f"{tier}_minstr_per_s"] = round(
            total_instructions / seconds / 1e6, 2
        )
    benchmark.extra_info["instructions"] = total_instructions
    benchmark.extra_info["speedup_block_vs_fast"] = round(best["fast"] / best["block"], 2)
    benchmark.extra_info["speedup_block_vs_reference"] = round(
        best["reference"] / best["block"], 2
    )

    # The block tier must also beat the reference loop by a wide margin —
    # a sanity floor, not the headline bar.
    assert best["reference"] / best["block"] > _BLOCK_VS_FAST_BAR
    assert ratio >= _BLOCK_VS_FAST_BAR, (
        f"block tier only {ratio:.2f}x over the fast tier "
        f"(bar: {_BLOCK_VS_FAST_BAR}x)"
    )
