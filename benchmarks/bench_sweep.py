"""Sweep-engine per-point cost: batched multi-config scoring vs the
sequential per-config replay path.

Before the sweep engine, an analysis-only sweep over N uarch configs
replayed each stored trace through the timing pipeline N separate
times: per config, decode the snapshot and run ``replay_summary``
(single-config timing walk + fused accounting + distribution
aggregation).  The sweep engine decodes once, scores all configs in one
multi-config kernel pass (``run_compiled_many`` walks shared-shape
lanes together, sharing the fetch/cache/predictor streams and eliding
functional-unit probes that can never bind) and branches a single
accounting walk per config (``account_many``) — per-group work no
longer scales with the full pipeline times N.

Both sides are timed over the same warm snapshots and the same dense
16-config axis (2 pipeline widths x 4 window sizes x 2 memory
latencies, a Figure-15-style grid) on two suite workloads, and the
batched side must stay >=3x cheaper per point on the better workload —
the CI-enforced floor behind the sweep engine's
thousands-of-points-per-minute claim.  The kernel-only lane-batch ratio
(run_compiled_many vs per-config run_compiled, no decode or
accounting) is recorded in ``extra_info``: lane batching alone is a
modest win; the floor comes from amortising the decode, accounting and
aggregation across the whole config axis.
"""

from __future__ import annotations

import gc
import time
from dataclasses import replace

import pytest

from repro.experiments import POLICY_NAMES
from repro.experiments.runner import (
    _compute_evaluation,
    artifact_from_evaluation,
    replay_summary,
)
from repro.experiments.sweep import _sweep_timings
from repro.hardware import gating
from repro.power import MultiPolicyEnergyAccountant
from repro.sim.snapshot import decode_artifact, encode_artifact
from repro.uarch import MachineConfig, OutOfOrderModel
from repro.workloads import workload_by_name

#: Suite workloads the per-point costs are measured on.
_WORKLOADS = ("go", "perl")

#: The batched sweep path must beat sequential per-config replay by
#: this factor per point on the better workload (CI-enforced floor).
_BATCH_VS_SEQUENTIAL_BAR = 3.0


def _dense_axis() -> list[MachineConfig]:
    """A 16-config design-space axis: widths x windows x memory."""
    base = MachineConfig()
    return [
        replace(
            base,
            fetch_width=width,
            issue_width=width,
            max_in_flight=window,
            memory_first_chunk_cycles=memory,
        )
        for width in (2, 4)
        for window in (32, 64, 96, 128)
        for memory in (24, 40)
    ]


@pytest.fixture(scope="module")
def snapshots():
    """Warm snapshot blob per workload, with both sides verified."""
    configs = _dense_axis()
    prepared = {}
    for name in _WORKLOADS:
        workload = workload_by_name(name)
        blob = encode_artifact(artifact_from_evaluation(_compute_evaluation(workload)))
        # Verify outside the timed region: the batched side must
        # reproduce the sequential replay numbers bit-exactly.
        batched = _batched_cells(blob, configs)
        for at, config in enumerate(configs):
            summary = replay_summary(
                workload, decode_artifact(blob), machine_config=config
            )
            for policy in POLICY_NAMES:
                cycles, energy = batched[(at, policy)]
                assert cycles == summary.timing.cycles, (name, at, policy)
                assert energy == summary.energies[policy].total, (name, at, policy)
        prepared[name] = (workload, blob)
    return prepared, configs


def _batched_cells(blob, configs):
    """The sweep engine's per-group work: decode once, one multi-config
    timing pass, one branched accounting walk."""
    artifact = decode_artifact(blob)
    trace = artifact.trace
    timings = _sweep_timings(trace, configs)
    accountant = MultiPolicyEnergyAccountant(
        {policy: gating.get(policy) for policy in POLICY_NAMES}
    )
    energies = accountant.account_many(trace, timings)
    return {
        (at, policy): (timings[at].cycles, energies[at][policy].total)
        for at in range(len(configs))
        for policy in POLICY_NAMES
    }


def _timed(fn, *args) -> float:
    gc.collect()
    gc.disable()
    try:
        start = time.perf_counter()
        fn(*args)
        return time.perf_counter() - start
    finally:
        gc.enable()


def _sequential_pass(workload, blob, configs):
    for config in configs:
        replay_summary(workload, decode_artifact(blob), machine_config=config)


def _measure(prepared, configs, rounds: int = 3) -> dict[str, dict[str, float]]:
    """Interleaved best-of-``rounds`` seconds per (side, workload), so
    one background hiccup cannot skew a single side."""
    best = {
        side: {name: float("inf") for name in prepared}
        for side in ("sequential", "batched")
    }
    for _ in range(rounds):
        for name, (workload, blob) in prepared.items():
            best["sequential"][name] = min(
                best["sequential"][name], _timed(_sequential_pass, workload, blob, configs)
            )
            best["batched"][name] = min(
                best["batched"][name], _timed(_batched_cells, blob, configs)
            )
    return best


def _best_ratio(best) -> float:
    return max(
        best["sequential"][name] / best["batched"][name] for name in best["batched"]
    )


def test_batched_sweep_per_point_speedup(benchmark, snapshots):
    prepared, configs = snapshots
    best = benchmark.pedantic(_measure, args=(prepared, configs), rounds=1, iterations=1)
    ratio = _best_ratio(best)
    if ratio < _BATCH_VS_SEQUENTIAL_BAR:
        # One remeasure before failing: a loaded shared runner can
        # depress a single sample set; the bar guards a property of the
        # code, not of the scheduler.
        best = _measure(prepared, configs)
        ratio = max(ratio, _best_ratio(best))

    points = len(configs) * len(POLICY_NAMES)
    benchmark.extra_info["configs"] = len(configs)
    benchmark.extra_info["points_per_workload"] = points
    for name in prepared:
        sequential_s = best["sequential"][name]
        batched_s = best["batched"][name]
        benchmark.extra_info[f"{name}_sequential_point_ms"] = round(
            sequential_s / points * 1e3, 3
        )
        benchmark.extra_info[f"{name}_batched_point_ms"] = round(
            batched_s / points * 1e3, 3
        )
        benchmark.extra_info[f"{name}_per_point_speedup"] = round(
            sequential_s / batched_s, 2
        )
        benchmark.extra_info[f"{name}_points_per_minute"] = round(
            60.0 * points / batched_s
        )
    benchmark.extra_info["per_point_speedup_best"] = round(ratio, 2)

    # Kernel-only lane-batch ratio (not part of the bar): batched
    # multi-config walk vs N single-config compiled walks, warm trace.
    workload, blob = next(iter(prepared.values()))
    trace = decode_artifact(blob).trace
    batch_s = _timed(_sweep_timings, trace, configs)
    singles_s = _timed(
        lambda: [OutOfOrderModel(config).run(trace, kernel="compiled") for config in configs]
    )
    benchmark.extra_info["kernel_batch_ratio"] = round(singles_s / batch_s, 2)

    assert ratio >= _BATCH_VS_SEQUENTIAL_BAR, (
        f"batched sweep scoring only {ratio:.2f}x over sequential per-config "
        f"replay (bar: {_BATCH_VS_SEQUENTIAL_BAR}x at {len(configs)} configs)"
    )
