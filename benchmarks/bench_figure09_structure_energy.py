"""Figure 9: per-structure energy savings of VRP and the VRS variants."""

from repro.experiments import figure09_energy_by_structure


def test_figure09_energy_by_structure(run_once):
    data = run_once(figure09_energy_by_structure, (50.0,))
    vrp = data["vrp"]
    vrs = data["vrs_50nj"]
    # The data-manipulating structures benefit the most under both schemes.
    for config in (vrp, vrs):
        assert config["register_file"] > config["icache"]
        assert config["result_bus"] > config["lsq"]
    assert vrs["processor"] >= vrp["processor"] - 0.05
