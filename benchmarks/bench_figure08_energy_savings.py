"""Figure 8: per-benchmark energy savings of VRP and the VRS threshold sweep."""

from repro.experiments import VRS_THRESHOLDS_NJ, figure08_energy_savings_by_benchmark


def test_figure08_energy_savings(run_once):
    data = run_once(figure08_energy_savings_by_benchmark, (50.0,))
    assert "vrp" in data and "vrs_50nj" in data
    # VRS builds on VRP, so its average energy saving is at least VRP's.
    assert data["vrs_50nj"]["average"] >= data["vrp"]["average"] - 0.05
    assert 0.0 < data["vrp"]["average"] < 0.35


def test_figure08_threshold_sweep_is_stable(run_once):
    data = run_once(figure08_energy_savings_by_benchmark, VRS_THRESHOLDS_NJ[:2])
    configs = [key for key in data if key.startswith("vrs_")]
    averages = [data[key]["average"] for key in configs]
    # The paper observes that all thresholds behave very similarly.
    assert max(averages) - min(averages) < 0.10
