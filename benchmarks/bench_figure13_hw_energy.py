"""Figure 13: energy savings of the hardware compression schemes."""

from repro.experiments import figure13_hardware_energy_savings


def test_figure13_hardware_energy_savings(run_once):
    data = run_once(figure13_hardware_energy_savings)
    size = data["size_compression"]["average"]
    significance = data["significance_compression"]["average"]
    # Both hardware schemes save a double-digit percentage on average.
    assert size > 0.05
    assert significance > 0.05
    assert abs(size - significance) < 0.15
