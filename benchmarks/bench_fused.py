"""Streaming fused pipeline vs the materialized cold-evaluation path.

A *cold* experiment evaluation (store miss) classically pays
simulate-with-trace → timing-kernel walk → fused accounting walk →
summary + binary trace snapshot persistence.  The fused pipeline
(``repro/sim/fusedc.py``) collapses the first three into one streaming
pass — per-record timing inline in the block-compiled units, shape
aggregation via run-length width-signature memoization — and has no
trace to snapshot, so the persistence layer drops to one summary write.

This benchmark times both cold paths end-to-end (fresh program build,
fresh ``Machine``, full summary, store writes — exactly what
``ExperimentEngine.evaluate`` pays on a miss with each pipeline) on
suite workloads, interleaved best-of-rounds in one process so clock
drift cannot skew a side.  The ≥2x geometric-mean bar is asserted, not
tracked; per-workload ratios and the peak-heap-per-record footprint of
both pipelines are recorded in ``extra_info``.  The memory phase is the
point of the streaming design: the materialized peak grows with the
dynamic instruction count (the trace arena), the fused peak does not.
"""

from __future__ import annotations

import gc
import math
import time
import tracemalloc

import pytest

from repro.experiments.runner import _compute_evaluation, artifact_from_evaluation
from repro.experiments.store import ResultStore
from repro.workloads import workload_by_name

#: Suite workloads the pipelines are timed on (loop, image and list mix).
_WORKLOADS = ("ijpeg", "li", "compress")

#: The fused pipeline must beat the materialized cold path by this factor
#: in geometric mean over the workloads.
_GEOMEAN_BAR = 2.0

#: No single workload may fall below this ratio (sanity floor).
_PER_WORKLOAD_FLOOR = 1.6

#: The materialized pipeline's *marginal* heap cost (extra peak bytes per
#: extra dynamic record, between two sizes of the same loop) must exceed
#: the fused pipeline's by this factor.  Measured ~3.7x (29.8 vs 8.1
#: bytes/record); the bar leaves headroom for allocator jitter.
_MARGINAL_HEAP_BAR = 2.5

#: Loop whose dynamic record count scales linearly with the trip count —
#: the knob for the two-size marginal-memory measurement.
_LOOP_TEMPLATE = """
.func main 0
entry:
    li r1, {trips}
    li r2, 0
loop:
    add r2, r2, 7
    xor r3, r2, 85
    and r4, r3, 255
    sub r1, r1, 1
    bne r1, loop
done:
    print r2
    halt
.endfunc
"""


def _cold_materialized(workload, store):
    """Everything a cold store miss pays on the classic pipeline."""
    evaluation = _compute_evaluation(workload, pipeline="materialized")
    summary = evaluation.summarize()
    store.save(f"bench-m-{workload.name}", summary)
    store.save_trace(f"bench-m-{workload.name}", artifact_from_evaluation(evaluation))
    return evaluation


def _cold_fused(workload, store):
    """The same miss through the streaming pipeline: no trace, no snapshot."""
    evaluation = _compute_evaluation(workload, pipeline="fused")
    store.save(f"bench-f-{workload.name}", evaluation.summarize())
    return evaluation


@pytest.fixture(scope="module")
def bench_setup(tmp_path_factory):
    """Workloads + a scratch store, with all compiled tiers warm.

    The warm-up pass also asserts the two pipelines produce identical
    summaries — the speedup claim is only meaningful if the fast path is
    bit-exact.
    """
    store = ResultStore(tmp_path_factory.mktemp("fused-bench-store"))
    workloads = [workload_by_name(name) for name in _WORKLOADS]
    instructions = {}
    for workload in workloads:
        materialized = _cold_materialized(workload, store)
        fused = _cold_fused(workload, store)
        assert materialized.summarize().to_json_dict() == fused.summarize().to_json_dict(), (
            f"pipelines disagree on {workload.name}"
        )
        instructions[workload.name] = fused.run.instructions
    return workloads, store, instructions


def _measure(workloads, store, rounds: int = 5) -> dict[str, dict[str, float]]:
    """Interleaved best-of-``rounds`` seconds per workload and pipeline."""
    best: dict[str, dict[str, float]] = {
        workload.name: {"materialized": float("inf"), "fused": float("inf")}
        for workload in workloads
    }
    for _ in range(rounds):
        for workload in workloads:
            for label, cold in (("materialized", _cold_materialized), ("fused", _cold_fused)):
                gc.collect()
                gc.disable()
                try:
                    start = time.perf_counter()
                    cold(workload, store)
                    elapsed = time.perf_counter() - start
                finally:
                    gc.enable()
                if elapsed < best[workload.name][label]:
                    best[workload.name][label] = elapsed
    return best


def _geomean(ratios) -> float:
    values = list(ratios)
    return math.exp(sum(math.log(value) for value in values) / len(values))


def test_fused_pipeline_speedup(benchmark, bench_setup):
    workloads, store, instructions = bench_setup

    best = benchmark.pedantic(_measure, args=(workloads, store), rounds=1, iterations=1)
    ratios = {
        name: times["materialized"] / times["fused"] for name, times in best.items()
    }
    if _geomean(ratios.values()) < _GEOMEAN_BAR or min(ratios.values()) < _PER_WORKLOAD_FLOOR:
        # One remeasure before failing: a loaded shared runner can depress
        # a single sample set; the bar guards a property, not a scheduler.
        remeasured = _measure(workloads, store)
        for name, times in remeasured.items():
            ratios[name] = max(ratios[name], times["materialized"] / times["fused"])
            for label in times:
                best[name][label] = min(best[name][label], times[label])

    for name, times in best.items():
        benchmark.extra_info[f"{name}_materialized_s"] = round(times["materialized"], 4)
        benchmark.extra_info[f"{name}_fused_s"] = round(times["fused"], 4)
        benchmark.extra_info[f"{name}_ratio"] = round(ratios[name], 2)
        benchmark.extra_info[f"{name}_fused_minstr_per_s"] = round(
            instructions[name] / times["fused"] / 1e6, 2
        )
    geomean = _geomean(ratios.values())
    benchmark.extra_info["speedup_geomean"] = round(geomean, 2)

    assert min(ratios.values()) >= _PER_WORKLOAD_FLOOR, (
        f"fused pipeline ratio fell below the {_PER_WORKLOAD_FLOOR}x floor: {ratios}"
    )
    assert geomean >= _GEOMEAN_BAR, (
        f"fused pipeline only {geomean:.2f}x (geomean) over the materialized "
        f"cold path (bar: {_GEOMEAN_BAR}x): {ratios}"
    )


def _peak_heap(run) -> int:
    """Peak traced heap (bytes) over one call of *run*."""
    gc.collect()
    tracemalloc.start()
    try:
        run()
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return peak


def test_fused_pipeline_memory_footprint(benchmark):
    """Marginal peak heap per dynamic record, materialized vs fused.

    Absolute peaks are dominated by size-independent overhead (program
    build, generated-source compilation, summary construction), so the
    trace arena is isolated differentially: the same loop at two trip
    counts, and the slope ``(peak_big - peak_small) / (records_big -
    records_small)`` is the per-record cost.  The materialized slope is
    the trace arena (~30 bytes/record); the fused slope is transient
    interpreter churn (~8 bytes/record), independent of any per-record
    retention.  The ratio is asserted — the trace creeping back into the
    fused path would collapse it toward 1.
    """
    from repro.asm import assemble_program
    from repro.sim.machine import Machine

    sizes = {"small": 10_000, "big": 60_000}
    peaks: dict[str, dict[str, int]] = {}
    records: dict[str, int] = {}

    def measure():
        for label, trips in sizes.items():
            program = assemble_program(_LOOP_TEMPLATE.format(trips=trips))
            machine = Machine(program)
            # Warm both pipelines outside the measured window (codegen,
            # compile, caches) and pin bit-exactness on this very program.
            warm_materialized = machine.run(collect_trace=True)
            warm_fused = machine.run(pipeline="fused")
            assert (
                dict(warm_materialized.trace.shape_counts())
                == warm_fused.fused.shapes.shape_counts()
            )
            records[label] = warm_fused.instructions
            peaks[label] = {
                "materialized": _peak_heap(lambda: machine.run(collect_trace=True)),
                "fused": _peak_heap(lambda: machine.run(pipeline="fused")),
            }

    benchmark.pedantic(measure, rounds=1, iterations=1)
    span = records["big"] - records["small"]
    marginal = {
        pipeline: (peaks["big"][pipeline] - peaks["small"][pipeline]) / span
        for pipeline in ("materialized", "fused")
    }
    ratio = marginal["materialized"] / marginal["fused"]

    benchmark.extra_info["records_small"] = records["small"]
    benchmark.extra_info["records_big"] = records["big"]
    for pipeline in ("materialized", "fused"):
        benchmark.extra_info[f"{pipeline}_marginal_bytes_per_record"] = round(
            marginal[pipeline], 2
        )
        benchmark.extra_info[f"{pipeline}_peak_bytes_per_record"] = round(
            peaks["big"][pipeline] / records["big"], 2
        )
    benchmark.extra_info["marginal_ratio"] = round(ratio, 2)

    assert ratio >= _MARGINAL_HEAP_BAR, (
        f"materialized marginal heap ({marginal['materialized']:.1f} B/record) is "
        f"only {ratio:.1f}x the fused marginal ({marginal['fused']:.1f} B/record); "
        f"bar: {_MARGINAL_HEAP_BAR}x — the trace is creeping back into the fused path"
    )
