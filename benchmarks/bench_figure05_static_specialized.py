"""Figure 5: static instructions specialized vs eliminated at compile time."""

from repro.experiments import figure05_static_specialized_instructions


def test_figure05_static_specialized_instructions(run_once):
    data = run_once(figure05_static_specialized_instructions)
    average = data["average"]
    assert 0.0 <= average["eliminated"] <= 1.0
    assert 0.0 <= average["specialized"] <= 1.0
    # Some benchmark of the suite specializes a non-trivial region.
    assert any(stats["total_static_instructions"] > 0 for name, stats in data.items() if name != "average")
