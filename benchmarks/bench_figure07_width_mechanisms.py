"""Figure 7: run-time width distribution for no mechanism, VRP and VRS."""

from repro.experiments import figure07_width_by_mechanism
from repro.isa import Width


def test_figure07_width_by_mechanism(run_once):
    data = run_once(figure07_width_by_mechanism)
    none = data["none"]
    vrp = data["vrp"]
    vrs = data["vrs"]
    # Each mechanism monotonically shifts weight away from 64-bit encodings.
    assert vrp[Width.QUAD] <= none[Width.QUAD] + 1e-9
    assert vrs[Width.QUAD] <= none[Width.QUAD] + 1e-9
    assert vrp[Width.BYTE] >= none[Width.BYTE] - 1e-9
    for distribution in data.values():
        assert abs(sum(distribution.values()) - 1.0) < 1e-6
