"""Figure 11: energy-delay² savings of VRP and VRS."""

from repro.experiments import figure11_ed2_savings


def test_figure11_ed2_savings(run_once):
    data = run_once(figure11_ed2_savings, (50.0,))
    vrp_average = data["vrp"]["average"]
    vrs_average = data["vrs_50nj"]["average"]
    # VRP alone gives a modest ED² gain; VRS improves on it (paper: ~5% → ~15%).
    assert vrp_average > 0.0
    assert vrs_average >= vrp_average - 0.05
