"""Figure 15: energy-delay² savings of software, hardware and combined schemes."""

from repro.experiments import figure15_combined_ed2_savings


def test_figure15_combined_ed2_savings(run_once):
    data = run_once(figure15_combined_ed2_savings)
    combined = data["vrs_50nj+hw_significance"]["average"]
    software = data["vrs_50nj"]["average"]
    hardware = data["hw_significance"]["average"]
    # The combined scheme beats either scheme alone (the paper's 28% vs
    # 14%/15% headline), and every configuration is an improvement.
    assert combined >= software - 1e-9
    assert combined >= hardware - 1e-9
    assert all(entry["average"] > 0.0 for entry in data.values())
