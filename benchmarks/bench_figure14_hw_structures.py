"""Figure 14: per-structure energy savings of the hardware schemes."""

from repro.experiments import figure14_hardware_energy_by_structure


def test_figure14_hardware_energy_by_structure(run_once):
    data = run_once(figure14_hardware_energy_by_structure)
    for config in data.values():
        # Structures that directly manipulate values benefit the most.
        assert config["register_file"] > config["icache"]
        assert config["result_bus"] > 0.05
        assert config["processor"] > 0.02
