"""Figure 10: execution-time savings of VRS."""

from repro.experiments import figure10_execution_time_savings


def test_figure10_execution_time_savings(run_once):
    data = run_once(figure10_execution_time_savings, (50.0,))
    per_benchmark = data["vrs_50nj"]
    # Execution-time changes are small (the paper sees -1% to +4%).
    assert -0.10 < per_benchmark["average"] < 0.10
    assert len([name for name in per_benchmark if name != "average"]) == 8
