"""Columnar trace engine vs. the record-list reference.

The columnar :class:`~repro.sim.trace.Trace` replaced the seed's
``list[TraceRecord]`` with packed ``array('q')`` columns, and the three
per-record analysis walks of a cold evaluation — the fused energy
accountant, the summary distribution aggregation and the width
distribution — with cached columnar aggregations.  This benchmark
replays one workload's emission stream into both representations and
measures the full build-and-analyze path each side:

* **reference**: build the ``TraceRecord`` list, run the accountant's
  per-record shape fold (verbatim PR-2 code) feeding the *real*
  per-shape kernel, then the seed's fused distribution walk and width
  walk — the three independent record walks the columnar engine
  replaced;
* **columnar**: emit through the shared columnar append path, then run
  the actual production consumers (fused accountant, ``aggregate_trace``,
  ``Trace.width_distribution``) over the columns.

Both sides share the per-shape kernel and the timing result, so the
measured difference is exactly the storage + walk machinery.  The ≥3x
bar is asserted (not just tracked) so the win cannot silently erode, and
the trace's bytes-per-record is recorded next to the ~150 bytes a
NamedTuple record costs.
"""

from __future__ import annotations

import gc
import time

import pytest

from repro.experiments import POLICY_NAMES, policy_for
from repro.experiments.summary import COUNTED_KINDS, aggregate_trace
from repro.isa import OpKind, Width, significant_bytes
from repro.isa.opcodes import OPERATION_TYPE
from repro.power import MultiPolicyEnergyAccountant
from repro.sim import Machine, Trace
from repro.sim.trace import TraceRecord, pack_record
from repro.uarch import OutOfOrderModel
from repro.workloads import workload_by_name

#: Estimated heap bytes of one TraceRecord NamedTuple (object header +
#: 7 slots + the srcs tuple), used for the recorded comparison only.
_RECORD_LIST_BYTES_PER_RECORD = 150


@pytest.fixture(scope="module")
def trace_fixture():
    """One real workload trace plus its replayable emission stream."""
    workload = workload_by_name("go")
    program = workload.build()
    workload.apply_input(program, "ref")
    run = Machine(program).run(collect_trace=True)
    trace = run.trace
    timing = OutOfOrderModel().run(trace)
    policies = {name: policy_for(name) for name in POLICY_NAMES}
    emission = []
    record_stream = []
    for record in trace:
        record_stream.append(tuple(record))
        uid, _, srcs, result, mem, taken, _ = record
        meta, values = pack_record(uid, srcs, result, taken, mem is not None)
        emission.append((meta, values, mem))
    return {
        "trace": trace,
        "static": trace.static,
        "addresses": trace._addr_by_uid,
        "timing": timing,
        "policies": policies,
        "emission": emission,
        "records": record_stream,
    }


# ----------------------------------------------------------------------
# Reference pipeline (verbatim record-list implementations)
# ----------------------------------------------------------------------
def _reference_pipeline(fx):
    static = fx["static"]
    # 1. Trace construction: one NamedTuple per record.
    records = []
    append = records.append
    record = TraceRecord
    for args in fx["records"]:
        append(record(*args))

    # 2. Full accountant walk: the per-record shape fold (verbatim PR 2)...
    sig_cache = {}
    sig_get = sig_cache.get
    counts = {}
    counts_get = counts.get
    for item in records:
        srcs = item.srcs
        if srcs:
            sig_list = []
            for value in srcs:
                sig = sig_get(value)
                if sig is None:
                    sig = significant_bytes(value)
                    sig_cache[value] = sig
                sig_list.append(sig)
            sigs = tuple(sig_list)
        else:
            sigs = ()
        result = item.result
        if result is None:
            rsig = -1
        else:
            rsig = sig_get(result)
            if rsig is None:
                rsig = significant_bytes(result)
                sig_cache[result] = rsig
        key = (item.uid, sigs, rsig)
        counts[key] = counts_get(key, 0) + 1
    # ...feeding the *real* per-shape kernel (shared by both sides): a
    # probe trace pre-seeded with the folded shapes runs the production
    # accountant without any columnar walk.
    probe = Trace(static=static)
    probe._shape_counts_cache = {
        (uid, bytes(sigs), rsig): count for (uid, sigs, rsig), count in counts.items()
    }
    MultiPolicyEnergyAccountant(fx["policies"]).account(probe, fx["timing"])

    # 3. Summary distributions: the seed's fused record walk.
    width_distribution = {w: 0 for w in Width.all_widths()}
    counted = {w: 0 for w in Width.all_widths()}
    sizes = {size: 0 for size in range(1, 9)}
    per_type = {}
    for item in records:
        entry = static[item.uid]
        kind = entry.kind
        width = entry.memory_width if entry.memory_width is not None else entry.width
        width_distribution[width] += 1
        if kind in COUNTED_KINDS:
            counted[width] += 1
            if kind not in (OpKind.LOAD, OpKind.STORE, OpKind.MOVE):
                op_type = OPERATION_TYPE[entry.opcode]
                widths = per_type.setdefault(op_type, {w: 0 for w in Width.all_widths()})
                widths[entry.width] += 1
        if item.result is not None:
            sizes[significant_bytes(item.result)] += 1

    # 4. Width distribution: the seed's standalone record walk.
    distribution = {w: 0 for w in Width.all_widths()}
    for item in records:
        entry = static[item.uid]
        width = entry.memory_width if entry.memory_width is not None else entry.width
        distribution[width] += 1
    return records


# ----------------------------------------------------------------------
# Columnar pipeline (the production consumers)
# ----------------------------------------------------------------------
def _columnar_pipeline(fx):
    trace = Trace(static=fx["static"], addresses=fx["addresses"])
    emit, emit_mem = trace.emitters()
    for meta, values, mem in fx["emission"]:
        if mem is None:
            emit(meta, values)
        else:
            emit_mem(meta, values, mem)
    MultiPolicyEnergyAccountant(fx["policies"]).account(trace, fx["timing"])
    aggregate_trace(trace)
    trace.width_distribution()
    return trace


def _best_of(function, fx, rounds):
    best = float("inf")
    for _ in range(rounds):
        gc.collect()
        gc.disable()
        try:
            start = time.perf_counter()
            function(fx)
            best = min(best, time.perf_counter() - start)
        finally:
            gc.enable()
    return best


def test_columnar_trace_speedup(benchmark, trace_fixture):
    fx = trace_fixture

    def measured_ratio():
        # Interleave the two pipelines and keep the best of five rounds
        # each, so one background hiccup cannot skew either side.
        reference_best = float("inf")
        columnar_best = float("inf")
        for _ in range(5):
            reference_best = min(reference_best, _best_of(_reference_pipeline, fx, 1))
            columnar_best = min(columnar_best, _best_of(_columnar_pipeline, fx, 1))
        return reference_best, columnar_best

    def benched_round():
        return measured_ratio()

    reference_best, columnar_best = benchmark.pedantic(benched_round, rounds=1, iterations=1)
    ratio = reference_best / columnar_best
    if ratio < 3.0:
        # One remeasure before failing: a loaded shared runner can depress
        # a single sample set; the bar guards a property, not a scheduler.
        reference_best, columnar_best = measured_ratio()
        ratio = max(ratio, reference_best / columnar_best)

    trace = fx["trace"]
    bytes_per_record = trace.memory_bytes() / len(trace)
    benchmark.extra_info["records"] = len(trace)
    benchmark.extra_info["reference_best_s"] = round(reference_best, 4)
    benchmark.extra_info["columnar_best_s"] = round(columnar_best, 4)
    benchmark.extra_info["speedup_vs_record_list"] = round(ratio, 2)
    benchmark.extra_info["columnar_bytes_per_record"] = round(bytes_per_record, 1)
    benchmark.extra_info["record_list_bytes_per_record"] = _RECORD_LIST_BYTES_PER_RECORD

    # The columnar layout must also deliver its memory claim.
    assert bytes_per_record < 64
    # Construction + the three analysis walks must stay ≥3x over the
    # record-list reference; losing the bar means the columnar hot paths
    # regressed.
    assert ratio >= 3.0, f"columnar trace engine only {ratio:.2f}x over record list"
