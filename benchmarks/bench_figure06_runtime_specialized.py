"""Figure 6: run-time specialized instructions and guard-comparison overhead."""

from repro.experiments import figure06_runtime_specialized_instructions


def test_figure06_runtime_specialized_instructions(run_once):
    data = run_once(figure06_runtime_specialized_instructions)
    average = data["average"]
    # Specialized code executes far more often than its guards (the paper
    # reports >15% specialized instructions vs ~1% comparisons).
    assert 0.0 <= average["specialization_comparisons"] <= 0.25
    assert average["specialized_instructions"] >= 0.0
    for name, stats in data.items():
        assert stats["specialized_instructions"] + stats["specialization_comparisons"] <= 1.0
