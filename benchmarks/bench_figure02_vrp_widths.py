"""Figure 2: dynamic instruction width distribution, conventional vs proposed VRP."""

from repro.experiments import figure02_vrp_width_distribution
from repro.isa import Width


def test_figure02_vrp_width_distribution(run_once):
    data = run_once(figure02_vrp_width_distribution)
    conventional = data["conventional_vrp"]
    proposed = data["proposed_vrp"]
    for distribution in (conventional, proposed):
        assert abs(sum(distribution.values()) - 1.0) < 1e-6
    # The proposed (useful-range) VRP finds at least as many narrow
    # instructions as the conventional one.
    assert proposed[Width.BYTE] >= conventional[Width.BYTE]
    assert proposed[Width.QUAD] <= conventional[Width.QUAD] + 1e-9
