"""Shared helpers for the per-figure benchmark targets.

Every benchmark regenerates one table or figure of the paper.  The heavy
lifting (compilation, VRP/VRS, simulation) is cached process-wide by
``repro.experiments.runner``, so later benchmarks in a session reuse the
simulations performed by earlier ones.
"""

from __future__ import annotations

import pytest


@pytest.fixture(scope="session", autouse=True)
def _warm_suite_cache():
    """Pre-simulate the baseline configuration once for the whole session."""
    from repro.experiments import evaluate_suite

    evaluate_suite(mechanism="none")
    yield


@pytest.fixture
def run_once(benchmark):
    """Run an experiment exactly once under pytest-benchmark."""

    def runner(function, *args, **kwargs):
        return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return runner
