"""Shared helpers for the per-figure benchmark targets.

Every benchmark regenerates one table or figure of the paper.  The heavy
lifting (compilation, VRP/VRS, simulation) is resolved through the
experiment engine: results are memoized in-process and persisted to the
content-addressed result store, so later benchmarks in a session reuse the
simulations performed by earlier ones — and a *second* benchmark session is
served from disk without running the simulator at all (relocate or disable
the store with ``REPRO_RESULT_STORE``).
"""

from __future__ import annotations

import pytest


@pytest.fixture(scope="session", autouse=True)
def _warm_result_store():
    """Pre-simulate the baseline configuration once for the whole session.

    ``evaluate_suite`` fans cold configurations out across the engine's
    worker pool and fills the persistent store; on warm stores this is a
    handful of JSON reads.
    """
    from repro.experiments import evaluate_suite

    evaluate_suite(mechanism="none")
    yield


@pytest.fixture
def run_once(benchmark):
    """Run an experiment exactly once under pytest-benchmark."""

    def runner(function, *args, **kwargs):
        return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return runner
