"""Fused vs. sequential energy accounting over the whole suite.

Cold store fills materialize the energy breakdowns of every gating policy;
before the fused :class:`~repro.power.MultiPolicyEnergyAccountant`, that
cost six independent trace walks per workload.  This benchmark tracks the
speedup of the fused walk over six sequential single-policy walks — the
PR that introduced it targets (and asserts) at least 4x — so the win
stays visible in the perf trajectory instead of silently eroding.
"""

from __future__ import annotations

import time

import pytest

from repro.experiments import POLICY_NAMES, policy_for
from repro.power import EnergyAccountant, MultiPolicyEnergyAccountant
from repro.sim import Machine
from repro.uarch import OutOfOrderModel
from repro.workloads import load_suite


@pytest.fixture(scope="module")
def suite_traces():
    """Live traces and timing results for every suite workload."""
    traces = []
    for workload in load_suite():
        program = workload.build()
        workload.apply_input(program, "ref")
        run = Machine(program).run(collect_trace=True)
        timing = OutOfOrderModel().run(run.trace)
        traces.append((workload.name, run.trace, timing))
    return traces


def _account_fused(traces, policies):
    for _, trace, timing in traces:
        MultiPolicyEnergyAccountant(policies).account(trace, timing)


def _account_sequential(traces, policies):
    for _, trace, timing in traces:
        for policy in policies.values():
            EnergyAccountant(policy).account(trace, timing)


def test_fused_accounting_speedup(benchmark, suite_traces):
    policies = {name: policy_for(name) for name in POLICY_NAMES}

    fused_durations: list[float] = []

    def fused_round():
        start = time.perf_counter()
        _account_fused(suite_traces, policies)
        fused_durations.append(time.perf_counter() - start)

    benchmark.pedantic(fused_round, rounds=3, iterations=1)

    sequential_durations: list[float] = []
    for _ in range(3):
        start = time.perf_counter()
        _account_sequential(suite_traces, policies)
        sequential_durations.append(time.perf_counter() - start)
    sequential_best = min(sequential_durations)
    fused_best = min(fused_durations)
    speedup = sequential_best / fused_best
    benchmark.extra_info["sequential_best_s"] = round(sequential_best, 4)
    benchmark.extra_info["fused_best_s"] = round(fused_best, 4)
    benchmark.extra_info["speedup_vs_sequential"] = round(speedup, 2)
    # The fused walk shares the record decoding, the static lookups and the
    # significant-byte computations across all six policies; losing the 4x
    # bar means the accounting hot path regressed.
    assert speedup >= 4.0, f"fused accounting only {speedup:.2f}x over sequential"
