"""Fused vs. sequential energy accounting over the whole suite.

Cold store fills materialize the energy breakdowns of every gating policy;
before the fused :class:`~repro.power.MultiPolicyEnergyAccountant`, that
cost six independent trace walks per workload.  This benchmark asserts
the fused run stays at least 4x over six *cold* sequential single-policy
runs, so the walk-sharing win stays visible in the perf trajectory
instead of silently eroding.

With the columnar trace engine the sharing lives one layer down: the
per-record aggregation is :meth:`~repro.sim.trace.Trace.shape_counts`,
computed once and cached on the trace, so even sequential single-policy
runs on the *same* trace object reuse it and pay only the per-shape
kernel.  The sequential side here therefore invalidates the trace's
aggregation caches before each pass — measuring what six independent
accounting walks genuinely cost — and the warm-sequential time is
recorded alongside for the trajectory.
"""

from __future__ import annotations

import time

import pytest

from repro.experiments import POLICY_NAMES, policy_for
from repro.power import EnergyAccountant, MultiPolicyEnergyAccountant
from repro.sim import Machine
from repro.uarch import OutOfOrderModel
from repro.workloads import load_suite


@pytest.fixture(scope="module")
def suite_traces():
    """Live traces and timing results for every suite workload."""
    traces = []
    for workload in load_suite():
        program = workload.build()
        workload.apply_input(program, "ref")
        run = Machine(program).run(collect_trace=True)
        timing = OutOfOrderModel().run(run.trace)
        traces.append((workload.name, run.trace, timing))
    return traces


def _account_fused(traces, policies):
    for _, trace, timing in traces:
        trace.invalidate_aggregation_caches()
        MultiPolicyEnergyAccountant(policies).account(trace, timing)


def _account_sequential(traces, policies, cold=True):
    for _, trace, timing in traces:
        for policy in policies.values():
            if cold:
                trace.invalidate_aggregation_caches()
            EnergyAccountant(policy).account(trace, timing)


def test_fused_accounting_speedup(benchmark, suite_traces):
    policies = {name: policy_for(name) for name in POLICY_NAMES}

    fused_durations: list[float] = []

    def fused_round():
        start = time.perf_counter()
        _account_fused(suite_traces, policies)
        fused_durations.append(time.perf_counter() - start)

    benchmark.pedantic(fused_round, rounds=3, iterations=1)

    sequential_durations: list[float] = []
    for _ in range(3):
        start = time.perf_counter()
        _account_sequential(suite_traces, policies)
        sequential_durations.append(time.perf_counter() - start)
    warm_durations: list[float] = []
    for _ in range(3):
        start = time.perf_counter()
        _account_sequential(suite_traces, policies, cold=False)
        warm_durations.append(time.perf_counter() - start)

    sequential_best = min(sequential_durations)
    fused_best = min(fused_durations)
    speedup = sequential_best / fused_best
    benchmark.extra_info["sequential_cold_best_s"] = round(sequential_best, 4)
    benchmark.extra_info["sequential_warm_best_s"] = round(min(warm_durations), 4)
    benchmark.extra_info["fused_best_s"] = round(fused_best, 4)
    benchmark.extra_info["speedup_vs_cold_sequential"] = round(speedup, 2)
    # One columnar aggregation + one six-lane kernel pass must stay well
    # under six aggregation+kernel passes; losing the 4x bar means the
    # walk sharing (now the trace-level shape cache) regressed.
    assert speedup >= 4.0, f"fused accounting only {speedup:.2f}x over cold sequential"
