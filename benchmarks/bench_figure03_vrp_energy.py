"""Figure 3: per-structure energy savings of VRP."""

from repro.experiments import figure03_vrp_energy_by_structure


def test_figure03_vrp_energy_by_structure(run_once):
    savings = run_once(figure03_vrp_energy_by_structure)
    # Data-intensive structures benefit the most; address-dominated
    # structures barely move; the whole processor saves a few percent.
    assert savings["register_file"] > 0.05
    assert savings["result_bus"] > 0.05
    assert savings["alu"] > 0.05
    assert savings["lsq"] < savings["register_file"]
    assert savings["icache"] == 0.0
    assert 0.01 < savings["processor"] < 0.30
