"""§4.1: VRP analysis overhead relative to program execution."""

from repro.experiments import vrp_analysis_overhead


def test_vrp_analysis_overhead(run_once):
    data = run_once(vrp_analysis_overhead)
    assert data["total_analysis_seconds"] > 0.0
    # The binary-level analysis is a small fraction of even a simulated run
    # (the paper reports 0.02%-0.08% of native execution time).
    assert data["average_ratio"] < 2.0
