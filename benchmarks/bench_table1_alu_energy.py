"""Table 1: energy savings (nJ) for ALU operations per width change."""

from repro.experiments import table1_alu_energy_matrix
from repro.isa import Width


def test_table1_alu_energy(run_once):
    matrix = run_once(table1_alu_energy_matrix)
    # Narrowing saves energy, widening costs it, and the diagonal is zero.
    assert matrix[Width.BYTE][Width.QUAD] == 6.0
    assert matrix[Width.QUAD][Width.BYTE] == -6.0
    assert matrix[Width.WORD][Width.WORD] == 0.0
    assert matrix[Width.HALF][Width.QUAD] > matrix[Width.WORD][Width.QUAD]
