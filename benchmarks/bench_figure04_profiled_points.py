"""Figure 4: distribution of the profiled points after specialization filtering."""

from repro.experiments import figure04_profiled_point_distribution


def test_figure04_profiled_point_distribution(run_once):
    data = run_once(figure04_profiled_point_distribution)
    average = data["average"]
    # Most profiled points produce no benefit; only a small fraction is
    # specialized (the paper reports 88% / 7%).
    assert average["no_benefit"] >= average["specialized"]
    assert 0.0 <= average["specialized"] <= 0.6
    for name, stats in data.items():
        if name == "average":
            continue
        total = stats["specialized"] + stats["dependent_on_another_point"] + stats["no_benefit"]
        assert total <= 1.0 + 1e-6
