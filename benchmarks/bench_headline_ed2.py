"""§6 headline: software ≈14%, hardware ≈15%, combined ≈28% ED² savings."""

from repro.experiments import headline_ed2_summary


def test_headline_ed2(run_once):
    summary = run_once(headline_ed2_summary)
    # The reproduction targets the qualitative relationship, not the exact
    # percentages: software and hardware schemes each give a double-digit-ish
    # ED² gain and the combination is clearly better than either alone.
    assert summary["software_vrs"] > 0.03
    assert summary["hardware_significance"] > 0.03
    assert summary["combined"] > summary["software_vrs"]
    assert summary["combined"] > summary["hardware_significance"]
