"""Timing-kernel tiers: compiled vs reference.

The compiled kernel (``repro/uarch/tkernel.py``) replaced the reference
scoreboard's per-record method calls, dataclass attribute walks and
per-cycle usage dicts with generated per-config source over packed
static data, ring-buffer slot allocators and inlined cache/predictor
state.  This benchmark measures the end-to-end timing walk
(``OutOfOrderModel.run``) on suite workload traces for both tiers, with
every per-trace artifact (address column, packed static table, compiled
walk source) warm — the steady state repeated evaluations and
replayed-snapshot analyses see, mirroring how ``bench_sim.py`` measures
the simulator tiers with compilation outside the timed region.

The ≥2x compiled-over-reference bar is asserted (not just tracked) on
the faster of the measured workloads; the ≥3x aspiration from the
kernel's design review is recorded in ``extra_info`` as
``speedup_target`` for trend tracking, alongside per-workload ratios
and records/second.
"""

from __future__ import annotations

import gc
import time
from dataclasses import asdict

import pytest

from repro.sim import Machine
from repro.uarch import OutOfOrderModel
from repro.workloads import workload_by_name

#: Suite workloads the tiers are timed on (sizeable loop + memory mix).
_WORKLOADS = ("go", "ijpeg")

#: The compiled kernel must beat the reference walk by this factor on
#: the faster workload (CI-enforced floor).
_COMPILED_VS_REFERENCE_BAR = 2.0

#: The design target recorded for trend tracking.
_SPEEDUP_TARGET = 3.0


@pytest.fixture(scope="module")
def traces():
    """One trace per workload, with both kernel tiers verified and warm."""
    prepared = {}
    model = OutOfOrderModel()
    for name in _WORKLOADS:
        workload = workload_by_name(name)
        program = workload.build()
        workload.apply_input(program, "ref")
        trace = Machine(program).run(collect_trace=True).trace
        # Warm the caches (address column, packed table, compiled walk)
        # and verify the tiers agree outside the timed region.
        results = {
            kernel: model.run(trace, kernel=kernel)
            for kernel in ("reference", "compiled")
        }
        assert asdict(results["compiled"]) == asdict(results["reference"]), name
        prepared[name] = trace
    return prepared


def _time_kernel(prepared, kernel: str) -> dict[str, float]:
    """One timed pass of ``kernel`` over every workload trace."""
    model = OutOfOrderModel()
    seconds = {}
    for name, trace in prepared.items():
        gc.collect()
        gc.disable()
        try:
            start = time.perf_counter()
            model.run(trace, kernel=kernel)
            seconds[name] = time.perf_counter() - start
        finally:
            gc.enable()
    return seconds


def _measure(prepared, rounds: int = 5) -> dict[str, dict[str, float]]:
    """Interleaved best-of-``rounds`` seconds per (kernel, workload), so
    one background hiccup cannot skew a single side."""
    best = {
        kernel: {name: float("inf") for name in prepared}
        for kernel in ("reference", "compiled")
    }
    for _ in range(rounds):
        for kernel, per_workload in best.items():
            for name, seconds in _time_kernel(prepared, kernel).items():
                per_workload[name] = min(per_workload[name], seconds)
    return best


def _best_ratio(best) -> float:
    return max(
        best["reference"][name] / best["compiled"][name] for name in best["compiled"]
    )


def test_compiled_timing_kernel_speedup(benchmark, traces):
    best = benchmark.pedantic(_measure, args=(traces,), rounds=1, iterations=1)
    ratio = _best_ratio(best)
    if ratio < _COMPILED_VS_REFERENCE_BAR:
        # One remeasure before failing: a loaded shared runner can
        # depress a single sample set; the bar guards a property of the
        # code, not of the scheduler.
        best = _measure(traces)
        ratio = max(ratio, _best_ratio(best))

    records = {name: len(trace) for name, trace in traces.items()}
    for name in traces:
        reference_s = best["reference"][name]
        compiled_s = best["compiled"][name]
        benchmark.extra_info[f"{name}_reference_ms"] = round(reference_s * 1e3, 2)
        benchmark.extra_info[f"{name}_compiled_ms"] = round(compiled_s * 1e3, 2)
        benchmark.extra_info[f"{name}_speedup"] = round(reference_s / compiled_s, 2)
        benchmark.extra_info[f"{name}_compiled_mrec_per_s"] = round(
            records[name] / compiled_s / 1e6, 2
        )
    benchmark.extra_info["speedup_best"] = round(ratio, 2)
    benchmark.extra_info["speedup_target"] = _SPEEDUP_TARGET

    assert ratio >= _COMPILED_VS_REFERENCE_BAR, (
        f"compiled timing kernel only {ratio:.2f}x over the reference walk "
        f"(bar: {_COMPILED_VS_REFERENCE_BAR}x, target: {_SPEEDUP_TARGET}x)"
    )
