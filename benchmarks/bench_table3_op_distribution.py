"""Table 3: dynamic distribution of operation types and their widths under VRP."""

from repro.experiments import table3_operation_distribution


def test_table3_operation_distribution(run_once):
    rows = run_once(table3_operation_distribution)
    types = {row["type"] for row in rows}
    # ADD dominates the integer mix, as in the paper's Table 3.
    assert "ADD" in types
    top = rows[0]
    assert top["type"] == "ADD"
    for row in rows:
        total = row["64b"] + row["32b"] + row["16b"] + row["8b"]
        assert abs(total - 1.0) < 1e-6
