"""Tests for the mini-C front end: lexer, parser, semantics and codegen."""

import pytest

from repro.minic import MiniCError, compile_source, parse, tokenize
from repro.minic.semantics import analyze
from repro.sim import Machine


def run_main(source: str) -> list[int]:
    """Compile and execute a program, returning its printed output."""
    program = compile_source(source)
    return Machine(program).run().output


class TestLexer:
    def test_tokens_and_comments(self):
        tokens = tokenize("int x; // comment\n/* more */ x = 0x10 + 'A';")
        kinds = [t.kind for t in tokens]
        assert "eof" == kinds[-1]
        values = [t.value for t in tokens if t.kind == "number"]
        assert values == [16, 65]

    def test_unterminated_comment(self):
        with pytest.raises(MiniCError):
            tokenize("/* oops")


class TestParserAndSemantics:
    def test_undefined_variable(self):
        with pytest.raises(MiniCError):
            compile_source("int main() { return missing; }")

    def test_duplicate_local(self):
        with pytest.raises(MiniCError):
            compile_source("int main() { int a; int a; return 0; }")

    def test_call_arity_checked(self):
        source = "int f(int a) { return a; } int main() { return f(1, 2); }"
        with pytest.raises(MiniCError):
            compile_source(source)

    def test_division_rejected(self):
        with pytest.raises(MiniCError):
            compile_source("int main() { return 10 / 2; }")

    def test_break_outside_loop(self):
        with pytest.raises(MiniCError):
            compile_source("int main() { break; return 0; }")

    def test_array_requires_index(self):
        with pytest.raises(MiniCError):
            compile_source("int t[4]; int main() { return t; }")

    def test_types_annotated(self):
        module = parse("long f(int a) { return a + 1; }")
        analyze(module)
        ret = module.functions[0].body.statements[0]
        assert ret.value.ctype.name == "int"


class TestCodegenExecution:
    def test_arithmetic_and_precedence(self):
        assert run_main("int main() { print(2 + 3 * 4); return 0; }") == [14]

    def test_int_wraparound_matches_c(self):
        source = "int main() { int x; x = 2147483647; x = x + 1; print(x); return 0; }"
        assert run_main(source) == [-2147483648]

    def test_long_does_not_wrap_at_32_bits(self):
        source = "long big() { long x; x = 2147483647; return x + 1; } int main() { print(big()); return 0; }"
        assert run_main(source) == [2147483648]

    def test_char_array_zero_extends(self):
        source = """
        char buf[4];
        int main() { buf[0] = 255; print(buf[0]); return 0; }
        """
        assert run_main(source) == [255]

    def test_if_else_and_comparisons(self):
        source = """
        int main() {
            int a;
            a = 7;
            if (a >= 10) { print(1); } else { print(0); }
            if (a != 7 || a > 3) { print(2); }
            return 0;
        }
        """
        assert run_main(source) == [0, 2]

    def test_while_and_break_continue(self):
        source = """
        int main() {
            int i;
            int total;
            total = 0;
            i = 0;
            while (i < 10) {
                i = i + 1;
                if (i == 3) { continue; }
                if (i == 8) { break; }
                total = total + i;
            }
            print(total);
            return 0;
        }
        """
        # 1+2+4+5+6+7 = 25
        assert run_main(source) == [25]

    def test_for_loop_and_global_array(self):
        source = """
        int squares[16];
        int main() {
            int i;
            long sum;
            sum = 0;
            for (i = 0; i < 16; i = i + 1) { squares[i] = i * i; }
            for (i = 0; i < 16; i = i + 1) { sum = sum + squares[i]; }
            print(sum);
            return 0;
        }
        """
        assert run_main(source) == [sum(i * i for i in range(16))]

    def test_function_calls_and_recursion(self):
        source = """
        int fib(int n) {
            if (n < 2) { return n; }
            return fib(n - 1) + fib(n - 2);
        }
        int main() { print(fib(12)); return 0; }
        """
        assert run_main(source) == [144]

    def test_shifts_masks_and_bitops(self):
        source = """
        int main() {
            int x;
            x = 0x1234;
            print((x >> 4) & 0xff);
            print(x << 2);
            print(x ^ 0xffff);
            print(~5 & 255);
            return 0;
        }
        """
        assert run_main(source) == [0x23, 0x1234 << 2, 0x1234 ^ 0xFFFF, (~5) & 255]

    def test_short_parameters_zero_extend(self):
        source = """
        int widen(short value) { return value + 1; }
        int main() { print(widen(65535)); return 0; }
        """
        assert run_main(source) == [65536]

    def test_global_scalar_initializer(self):
        source = """
        int seed = 41;
        int main() { print(seed + 1); return 0; }
        """
        assert run_main(source) == [42]

    def test_missing_main_rejected(self):
        with pytest.raises(MiniCError):
            compile_source("int helper() { return 1; }")
