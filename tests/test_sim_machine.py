"""Tests for the functional simulator: memory, execution, traces, profiling."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.asm import assemble_program
from repro.ir import Program
from repro.isa import Width
from repro.sim import Machine, Memory, SimulationLimitExceeded, ValueProfiler


class TestMemory:
    def test_roundtrip_widths(self):
        memory = Memory()
        memory.store(0x1000, -2, Width.QUAD)
        assert memory.load(0x1000, Width.QUAD, signed=True) == -2
        memory.store(0x2000, 0xABCD, Width.HALF)
        assert memory.load(0x2000, Width.HALF, signed=False) == 0xABCD
        assert memory.load(0x2000, Width.BYTE, signed=False) == 0xCD  # little endian

    @given(st.integers(min_value=0, max_value=2**40), st.integers(min_value=-(2**31), max_value=2**31 - 1))
    def test_word_roundtrip_signed(self, address, value):
        memory = Memory()
        memory.store(address, value, Width.WORD)
        assert memory.load(address, Width.WORD, signed=True) == value

    def test_cross_page_access(self):
        memory = Memory()
        memory.write_bytes(4094, b"abcdef")
        assert memory.read_bytes(4094, 6) == b"abcdef"


def _run(asm: str):
    program = assemble_program(asm)
    return Machine(program).run(collect_trace=True)


class TestExecution:
    def test_arithmetic_width_wrapping(self):
        result = _run(
            """
.func main 0
entry:
    li r1, 127
    add.8 r2, r1, 1
    add r3, r1, 1
    print r2
    print r3
    halt
.endfunc
"""
        )
        assert result.output == [-128, 128]

    def test_call_and_return(self):
        result = _run(
            """
.func double 1
entry:
    add v0, a0, a0
    ret
.endfunc
.func main 0
entry:
    li a0, 21
    jsr double
    print v0
    halt
.endfunc
"""
        )
        assert result.output == [42]

    def test_conditional_branches_and_cmov(self):
        result = _run(
            """
.func main 0
entry:
    li r1, 5
    cmplt r2, r1, 10
    cmoveq r3, r2, r1
    cmovne r4, r2, r1
    print r3
    print r4
    halt
.endfunc
"""
        )
        assert result.output == [0, 5]

    def test_block_counts_and_instruction_counts(self):
        result = _run(
            """
.func main 0
entry:
    li r1, 0
loop:
    add r1, r1, 1
    cmplt r2, r1, 5
    bne r2, loop
done:
    print r1
    halt
.endfunc
"""
        )
        assert result.output == [5]
        assert result.block_counts[("main", "loop")] == 5
        assert result.block_counts[("main", "done")] == 1

    def test_trace_records_memory_and_branches(self):
        result = _run(
            """
.data buf 8 64
.func main 0
entry:
    li r1, =buf
    li r2, 77
    stq r2, 0(r1)
    ldq r3, 0(r1)
    print r3
    halt
.endfunc
"""
        )
        assert result.output == [77]
        memory_records = [r for r in result.trace.records if r.mem_address is not None]
        assert len(memory_records) == 2
        assert memory_records[0].mem_address == memory_records[1].mem_address

    def test_instruction_limit(self):
        program = assemble_program(
            """
.func main 0
entry:
    br entry
.endfunc
"""
        )
        with pytest.raises(SimulationLimitExceeded):
            Machine(program, max_instructions=100).run()

    def test_value_observer_hook(self):
        program = assemble_program(
            """
.func main 0
entry:
    li r1, 3
    add r2, r1, 4
    print r2
    halt
.endfunc
"""
        )
        add = [i for i in program.functions["main"].instructions() if i.op.value == "add"][0]
        profiler = ValueProfiler({add.uid})
        Machine(program).run(value_observer=profiler)
        assert profiler.table(add.uid).entries == {7: 1}
