"""Tests for the functional simulator: memory, execution, traces, profiling."""

import gc
import time

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.asm import assemble_program
from repro.isa import Width
from repro.sim import Machine, Memory, SimulationLimitExceeded, ValueProfiler
from repro.workloads import workload_by_name


class TestMemory:
    def test_roundtrip_widths(self):
        memory = Memory()
        memory.store(0x1000, -2, Width.QUAD)
        assert memory.load(0x1000, Width.QUAD, signed=True) == -2
        memory.store(0x2000, 0xABCD, Width.HALF)
        assert memory.load(0x2000, Width.HALF, signed=False) == 0xABCD
        assert memory.load(0x2000, Width.BYTE, signed=False) == 0xCD  # little endian

    @given(st.integers(min_value=0, max_value=2**40), st.integers(min_value=-(2**31), max_value=2**31 - 1))
    def test_word_roundtrip_signed(self, address, value):
        memory = Memory()
        memory.store(address, value, Width.WORD)
        assert memory.load(address, Width.WORD, signed=True) == value

    def test_cross_page_access(self):
        memory = Memory()
        memory.write_bytes(4094, b"abcdef")
        assert memory.read_bytes(4094, 6) == b"abcdef"


def _run(asm: str):
    program = assemble_program(asm)
    return Machine(program).run(collect_trace=True)


class TestExecution:
    def test_arithmetic_width_wrapping(self):
        result = _run(
            """
.func main 0
entry:
    li r1, 127
    add.8 r2, r1, 1
    add r3, r1, 1
    print r2
    print r3
    halt
.endfunc
"""
        )
        assert result.output == [-128, 128]

    def test_call_and_return(self):
        result = _run(
            """
.func double 1
entry:
    add v0, a0, a0
    ret
.endfunc
.func main 0
entry:
    li a0, 21
    jsr double
    print v0
    halt
.endfunc
"""
        )
        assert result.output == [42]

    def test_conditional_branches_and_cmov(self):
        result = _run(
            """
.func main 0
entry:
    li r1, 5
    cmplt r2, r1, 10
    cmoveq r3, r2, r1
    cmovne r4, r2, r1
    print r3
    print r4
    halt
.endfunc
"""
        )
        assert result.output == [0, 5]

    def test_block_counts_and_instruction_counts(self):
        result = _run(
            """
.func main 0
entry:
    li r1, 0
loop:
    add r1, r1, 1
    cmplt r2, r1, 5
    bne r2, loop
done:
    print r1
    halt
.endfunc
"""
        )
        assert result.output == [5]
        assert result.block_counts[("main", "loop")] == 5
        assert result.block_counts[("main", "done")] == 1

    def test_trace_records_memory_and_branches(self):
        result = _run(
            """
.data buf 8 64
.func main 0
entry:
    li r1, =buf
    li r2, 77
    stq r2, 0(r1)
    ldq r3, 0(r1)
    print r3
    halt
.endfunc
"""
        )
        assert result.output == [77]
        memory_records = [r for r in result.trace.records if r.mem_address is not None]
        assert len(memory_records) == 2
        assert memory_records[0].mem_address == memory_records[1].mem_address

    def test_instruction_limit(self):
        program = assemble_program(
            """
.func main 0
entry:
    br entry
.endfunc
"""
        )
        with pytest.raises(SimulationLimitExceeded):
            Machine(program, max_instructions=100).run()

    def test_value_observer_hook(self):
        program = assemble_program(
            """
.func main 0
entry:
    li r1, 3
    add r2, r1, 4
    print r2
    halt
.endfunc
"""
        )
        add = [i for i in program.functions["main"].instructions() if i.op.value == "add"][0]
        profiler = ValueProfiler({add.uid})
        Machine(program).run(value_observer=profiler)
        assert profiler.table(add.uid).entries == {7: 1}


class TestFastDispatch:
    """The compiled-handler interpreter must be indistinguishable from the
    reference decode-every-step loop — down to the individual trace records."""

    @pytest.mark.parametrize("name", ("ijpeg", "li"))
    def test_traces_are_bit_identical_on_workloads(self, name, assert_tiers_agree):
        workload = workload_by_name(name)
        program = workload.build()
        workload.apply_input(program, "ref")
        # Lockstep first: a bit-exactness failure reports the exact first
        # diverging step/uid instead of a summary mismatch.
        assert_tiers_agree(program, tiers=("reference", "fast"))
        machine = Machine(program)
        reference = machine.run(collect_trace=True, fast_dispatch=False)
        fast = machine.run(collect_trace=True, fast_dispatch=True)
        assert fast.instructions == reference.instructions
        assert fast.output == reference.output
        assert fast.block_counts == reference.block_counts
        assert fast.call_counts == reference.call_counts
        assert fast.halted == reference.halted
        assert fast.trace.records == reference.trace.records

    def test_value_observer_equivalence(self):
        program = assemble_program(
            """
.func main 0
entry:
    li r1, 0
loop:
    add r1, r1, 3
    cmplt r2, r1, 12
    bne r2, loop
done:
    print r1
    halt
.endfunc
"""
        )
        add = [i for i in program.functions["main"].instructions() if i.op.value == "add"][0]
        tables = []
        for fast in (False, True):
            profiler = ValueProfiler({add.uid})
            Machine(program).run(value_observer=profiler, fast_dispatch=fast)
            tables.append(profiler.table(add.uid).entries)
        assert tables[0] == tables[1] == {3: 1, 6: 1, 9: 1, 12: 1}

    def test_mov_out_of_range_immediate_matches_reference(self):
        program = assemble_program(
            """
.func main 0
entry:
    li r1, 1
    mov r2, r1
    print r2
    halt
.endfunc
"""
        )
        # Force the edge a transform could produce: a raw unsigned 64-bit
        # bit pattern as a MOV immediate.  The register write normalizes to
        # signed (-1) while the trace records the raw value, in both loops.
        from repro.isa import Imm

        mov = [i for i in program.functions["main"].instructions() if i.op.value == "mov"][0]
        mov.srcs = (Imm(2**64 - 1),)
        machine = Machine(program)
        reference = machine.run(collect_trace=True, fast_dispatch=False)
        fast = machine.run(collect_trace=True, fast_dispatch=True)
        assert reference.output == fast.output == [-1]
        assert reference.trace.records == fast.trace.records

    def test_dead_branch_to_pruned_label_matches_reference(self):
        program = assemble_program(
            """
.func main 0
entry:
    li r1, 1
    beq r1, done
next:
    print r1
    br done
done:
    print r1
    halt
.endfunc
"""
        )
        # Prune the (never-taken) branch's target after validation, as a
        # transform dropping a dead block would; compilation must not choke
        # on it, and execution must match the reference loop.
        beq = [i for i in program.functions["main"].instructions() if i.op.value == "beq"][0]
        beq.target = "ghost"
        machine = Machine(program)
        reference = machine.run(collect_trace=True, fast_dispatch=False)
        fast = machine.run(collect_trace=True, fast_dispatch=True)
        assert fast.output == reference.output == [1, 1]
        assert fast.trace.records == reference.trace.records

        # Taken variant: both loops fail identically (same KeyError key).
        li = [i for i in program.functions["main"].instructions() if i.op.value == "li"][0]
        li.srcs = (type(li.srcs[0])(0),)  # cond == 0 -> beq taken
        machine = Machine(program)
        with pytest.raises(KeyError) as ref_err:
            machine.run(fast_dispatch=False)
        with pytest.raises(KeyError) as fast_err:
            machine.run(fast_dispatch=True)
        assert ref_err.value.args == fast_err.value.args

    def test_instruction_limit_enforced(self):
        program = assemble_program(
            """
.func main 0
entry:
    br entry
.endfunc
"""
        )
        with pytest.raises(SimulationLimitExceeded):
            Machine(program, max_instructions=100).run(fast_dispatch=True)

    def test_environment_opt_out(self, monkeypatch):
        program = assemble_program(
            """
.func main 0
entry:
    halt
.endfunc
"""
        )
        monkeypatch.setenv("REPRO_SIM_DISPATCH", "reference")
        assert Machine(program).fast_dispatch is False
        monkeypatch.delenv("REPRO_SIM_DISPATCH")
        assert Machine(program).fast_dispatch is True
        assert Machine(program, fast_dispatch=False).fast_dispatch is False

    @pytest.mark.slow
    def test_speedup_over_reference_loop(self):
        """The acceptance bar for the rewrite: ≥2× on a trace-collecting run
        (the configuration the headline benchmark exercises)."""
        workload = workload_by_name("go")
        program = workload.build()
        workload.apply_input(program, "ref")
        machine = Machine(program)

        def timed(**kwargs):
            # The cyclic collector fires on allocation volume and its pauses
            # depend on how much unrelated live heap the test session has
            # accumulated; keep it out of the measured region (trace records
            # are plain tuples, nothing here needs cycle collection).
            gc.collect()
            gc.disable()
            try:
                start = time.perf_counter()
                machine.run(collect_trace=True, **kwargs)
                return time.perf_counter() - start
            finally:
                gc.enable()

        def measured_ratio():
            # Interleave the two modes and keep the best of five rounds
            # each, so one background hiccup cannot skew either side.
            reference_seconds = []
            fast_seconds = []
            for _ in range(5):
                reference_seconds.append(timed(fast_dispatch=False))
                fast_seconds.append(timed(fast_dispatch=True))
            return min(reference_seconds) / min(fast_seconds)

        ratio = measured_ratio()
        if ratio < 2.0:
            # One remeasure before failing: a loaded shared runner can
            # depress a single sample set, and this bar guards a property
            # (typical 2.5-3.5x locally), not a scheduler.
            ratio = max(ratio, measured_ratio())
        assert ratio >= 2.0


class TestBlockDispatch:
    """The block-compiled tier must be indistinguishable from the reference
    loop (and the fast tier) — records, counters, outputs, failure modes."""

    def _run_all_tiers(self, program, **kwargs):
        machine = Machine(program)
        return {
            tier: machine.run(collect_trace=True, dispatch=tier, **kwargs)
            for tier in ("reference", "fast", "block")
        }

    @pytest.mark.parametrize("name", ("ijpeg", "li"))
    def test_traces_are_bit_identical_on_workloads(self, name, assert_tiers_agree):
        workload = workload_by_name(name)
        program = workload.build()
        workload.apply_input(program, "ref")
        # Lockstep first: a bit-exactness failure reports the exact first
        # diverging step/uid instead of a summary mismatch.
        assert_tiers_agree(program, tiers=("reference", "block"))
        assert_tiers_agree(program, tiers=("fast", "block"))
        runs = self._run_all_tiers(program)
        reference = runs["reference"]
        for tier in ("fast", "block"):
            other = runs[tier]
            assert other.instructions == reference.instructions, tier
            assert other.output == reference.output, tier
            assert other.block_counts == reference.block_counts, tier
            assert other.call_counts == reference.call_counts, tier
            assert other.halted == reference.halted, tier
            assert other.trace.records == reference.trace.records, tier

    def test_dispatch_tier_resolution(self, monkeypatch):
        program = assemble_program(
            """
.func main 0
entry:
    halt
.endfunc
"""
        )
        monkeypatch.delenv("REPRO_SIM_DISPATCH", raising=False)
        assert Machine(program).dispatch == "block"
        monkeypatch.setenv("REPRO_SIM_DISPATCH", "fast")
        assert Machine(program).dispatch == "fast"
        monkeypatch.setenv("REPRO_SIM_DISPATCH", "reference")
        assert Machine(program).dispatch == "reference"
        monkeypatch.setenv("REPRO_SIM_DISPATCH", "block")
        assert Machine(program).dispatch == "block"
        # Explicit arguments beat the environment; dispatch beats the
        # legacy boolean; unknown tiers fail fast.
        assert Machine(program, dispatch="fast").dispatch == "fast"
        assert Machine(program, fast_dispatch=False).dispatch == "reference"
        assert Machine(program, fast_dispatch=False, dispatch="block").dispatch == "block"
        with pytest.raises(ValueError):
            Machine(program, dispatch="turbo")
        with pytest.raises(ValueError):
            Machine(program).run(dispatch="turbo")

    def test_limit_boundaries_exact_across_tiers(self):
        """SimulationLimitExceeded must fire at the same dynamic
        instruction count in every tier, including limits landing in the
        middle of a basic block (the block tier hoists its limit check to
        block granularity)."""
        program = assemble_program(
            """
.data buf 8 64
.func main 0
entry:
    li r1, 0
    li r2, =buf
loop:
    add r1, r1, 1
    stq r1, 0(r2)
    ldq r3, 0(r2)
    xor r4, r3, 85
    cmplt r5, r1, 3
    bne r5, loop
done:
    print r1
    halt
.endfunc
"""
        )
        machine = Machine(program)
        total = machine.run(dispatch="reference").instructions
        assert total > 10
        for limit in range(1, total + 1):
            bounded = Machine(program, max_instructions=limit)
            outcomes = {}
            for tier in ("reference", "fast", "block"):
                try:
                    bounded.run(dispatch=tier)
                    outcomes[tier] = "completed"
                except SimulationLimitExceeded as error:
                    outcomes[tier] = str(error)
            assert outcomes["fast"] == outcomes["reference"], limit
            assert outcomes["block"] == outcomes["reference"], limit
        assert Machine(program, max_instructions=total).run().halted

    def test_value_observer_falls_back_bit_exact(self):
        """Profiling runs take the fast tier under block dispatch; the
        observed value stream must match the reference loop exactly."""
        program = assemble_program(
            """
.func main 0
entry:
    li r1, 0
loop:
    add r1, r1, 7
    cmplt r2, r1, 21
    bne r2, loop
done:
    print r1
    halt
.endfunc
"""
        )
        add = [i for i in program.functions["main"].instructions() if i.op.value == "add"][0]
        tables = {}
        for tier in ("reference", "block"):
            profiler = ValueProfiler({add.uid})
            machine = Machine(program, dispatch=tier)
            run = machine.run(collect_trace=True, value_observer=profiler)
            tables[tier] = (profiler.table(add.uid).entries, run.output, run.trace.records)
        assert tables["block"][0] == tables["reference"][0] == {7: 1, 14: 1, 21: 1}
        assert tables["block"][1] == tables["reference"][1]
        assert tables["block"][2] == tables["reference"][2]

    def test_computed_return_mid_block_matches_reference(self):
        """A return address nobody's call produced lands mid-block; the
        block tier finishes on its per-instruction landing pad with
        identical results."""
        program = assemble_program(
            """
.func helper 0
entry:
    add ra, ra, 4
    ret
.endfunc
.func main 0
entry:
    li r1, 7
    jsr helper
    add r1, r1, 100
    print r1
    halt
.endfunc
"""
        )
        runs = self._run_all_tiers(program)
        reference = runs["reference"]
        assert reference.output == [7]  # the tampered return skips the add
        for tier in ("fast", "block"):
            assert runs[tier].output == reference.output, tier
            assert runs[tier].instructions == reference.instructions, tier
            assert runs[tier].block_counts == reference.block_counts, tier
            assert runs[tier].trace.records == reference.trace.records, tier

    def test_mov_out_of_range_immediate_matches_reference(self):
        """Raw 64-bit immediates overflow the batched arena extend; the
        block tier's spill path must keep them exact."""
        from repro.isa import Imm

        program = assemble_program(
            """
.func main 0
entry:
    li r1, 1
    mov r2, r1
    add r3, r2, 1
    print r3
    halt
.endfunc
"""
        )
        mov = [i for i in program.functions["main"].instructions() if i.op.value == "mov"][0]
        mov.srcs = (Imm(2**64 - 1),)
        runs = self._run_all_tiers(program)
        assert runs["block"].output == runs["reference"].output == [0]
        assert runs["block"].trace.records == runs["reference"].trace.records
        assert runs["block"].trace.has_overflow_values

    def test_dead_branch_and_dead_call_match_reference(self):
        program = assemble_program(
            """
.func main 0
entry:
    li r1, 0
    beq r1, next
next:
    print r1
    halt
.endfunc
"""
        )
        beq = [i for i in program.functions["main"].instructions() if i.op.value == "beq"][0]
        beq.target = "ghost"
        errors = {}
        for tier in ("reference", "fast", "block"):
            with pytest.raises(KeyError) as excinfo:
                Machine(program).run(dispatch=tier)
            errors[tier] = excinfo.value.args
        assert errors["fast"] == errors["reference"]
        assert errors["block"] == errors["reference"]

        # Dead call: a jsr whose callee was removed must raise the same
        # KeyError in every tier (after the return-address write, before
        # any call counting or emission).
        call_program = assemble_program(
            """
.func helper 0
entry:
    ret
.endfunc
.func main 0
entry:
    li r1, 1
    jsr helper
    print r1
    halt
.endfunc
"""
        )
        jsr = [
            i for i in call_program.functions["main"].instructions() if i.op.value == "jsr"
        ][0]
        jsr.target = "removed"
        call_errors = {}
        for tier in ("reference", "fast", "block"):
            with pytest.raises(KeyError) as excinfo:
                Machine(call_program).run(dispatch=tier)
            call_errors[tier] = excinfo.value.args
        assert call_errors["fast"] == call_errors["reference"] == ("removed",)
        assert call_errors["block"] == call_errors["reference"]

    def test_instruction_limit_enforced(self):
        program = assemble_program(
            """
.func main 0
entry:
    br entry
.endfunc
"""
        )
        with pytest.raises(SimulationLimitExceeded):
            Machine(program, max_instructions=100).run(dispatch="block")
