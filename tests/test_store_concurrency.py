"""Concurrency regression tests for the result store.

Covers the three store races fixed alongside the evaluation service:

* **duplicate work** — two live processes evaluating the same cold
  configuration must run exactly one simulation: the loser of the
  single-flight lock waits and reads the winner's published entry;
* **reaper vs. live writer** — ``reap_stale_tmp`` must never delete a
  ``*.tmp`` file an in-progress ``_publish`` is about to rename, even
  when ``REPRO_STORE_TMP_TTL`` is configured recklessly low;
* **multi-process stress** — several processes hammering one store root
  (with chaos delays injected at the publish point) must converge to one
  entry per configuration, no duplicate simulations, and a clean fsck.

Plus unit coverage for the ``single_flight`` protocol itself (loser
reads winner, stale-lock breaking, deadline takeover) and the trace LRU
eviction byte cap.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import textwrap
import threading
import time

import pytest

from repro.experiments import ExperimentConfig, ExperimentEngine, ResultStore
from repro.experiments.store import Flight
from repro.workloads import Workload

SRC_DIR = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")

TINY_SOURCE = """
int job_size;
int data[16];

int main() {
    int i;
    long acc;
    acc = 0;
    for (i = 0; i < job_size; i = i + 1) {
        acc = acc + data[i & 15];
    }
    print(acc);
    return 0;
}
"""


def make_tiny(name: str = "tiny", source: str = TINY_SOURCE) -> Workload:
    return Workload(
        name=name,
        description="16-element accumulation loop",
        source=source,
        train_data={"job_size": (8,), "data": tuple(range(16))},
        ref_data={"job_size": (40,), "data": tuple(range(100, 116))},
    )


@pytest.fixture
def store(tmp_path, monkeypatch):
    monkeypatch.delenv("REPRO_TRACE_STORE", raising=False)
    return ResultStore(tmp_path / "store")


# The subprocess worker: build the tiny workload, wait for the shared
# go-file (so every contender hits the cold store simultaneously), then
# evaluate the configs named on argv and print one JSON line per config.
_WORKER = textwrap.dedent(
    """
    import json, os, sys, time
    sys.path.insert(0, sys.argv[1])
    from repro.experiments import ExperimentConfig, ExperimentEngine
    from repro.workloads import Workload

    TINY_SOURCE = '''%s'''

    workload = Workload(
        name="tiny",
        description="16-element accumulation loop",
        source=TINY_SOURCE,
        train_data={"job_size": (8,), "data": tuple(range(16))},
        ref_data={"job_size": (40,), "data": tuple(range(100, 116))},
    )
    go_file = sys.argv[2]
    specs = [json.loads(raw) for raw in sys.argv[3:]]
    print("ready", flush=True)
    deadline = time.monotonic() + 30.0
    while not os.path.exists(go_file):
        if time.monotonic() > deadline:
            raise SystemExit("go file never appeared")
        time.sleep(0.005)
    engine = ExperimentEngine(jobs=1)
    for spec in specs:
        config = ExperimentConfig(
            workload="tiny",
            mechanism=spec["mechanism"],
            threshold_nj=spec["threshold_nj"],
            conventional_vrp=spec.get("conventional_vrp", False),
        )
        evaluation = engine.evaluate(config, workload=workload)
        print(
            json.dumps(
                {
                    "key": engine.key_for(config, workload=workload),
                    "energy": evaluation.outcome("baseline").energy.total,
                    "cycles": evaluation.outcome("baseline").cycles,
                    "fresh": evaluation.freshly_computed,
                }
            ),
            flush=True,
        )
    """
) % TINY_SOURCE


def _launch_workers(tmp_path, store_root, specs_per_proc, count, extra_env=None):
    """Start ``count`` synchronized workers; return their completed results."""
    go_file = str(tmp_path / "go")
    probe_dir = str(tmp_path / "probes")
    env = dict(
        os.environ,
        REPRO_RESULT_STORE=str(store_root),
        REPRO_SIM_PROBE_DIR=probe_dir,
        REPRO_JOBS="1",
    )
    env.pop("REPRO_TRACE_STORE", None)
    env.pop("REPRO_CHAOS", None)
    env.update(extra_env or {})
    procs = [
        subprocess.Popen(
            [sys.executable, "-c", _WORKER, SRC_DIR, go_file]
            + [json.dumps(spec) for spec in specs],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        for specs in specs_per_proc[:count]
    ]
    for proc in procs:
        assert proc.stdout.readline().strip() == "ready"
    with open(go_file, "w"):
        pass
    outputs = []
    for proc in procs:
        out, err = proc.communicate(timeout=120)
        assert proc.returncode == 0, f"worker failed:\n{err}"
        outputs.append([json.loads(line) for line in out.strip().splitlines()])
    probes = sorted(os.listdir(probe_dir)) if os.path.isdir(probe_dir) else []
    return outputs, probes


class TestTwoProcessSingleFlight:
    """Satellite 1: the duplicate-work race across live processes."""

    def test_identical_cold_submissions_run_one_simulation(self, tmp_path):
        store_root = tmp_path / "store"
        spec = {"mechanism": "vrp", "threshold_nj": 50.0}
        # Chaos holds the winner inside its publish for 300 ms so the
        # loser demonstrably arrives while the flight is still open and
        # must wait on the lock rather than recompute.
        outputs, probes = _launch_workers(
            tmp_path,
            store_root,
            [[spec], [spec]],
            count=2,
            extra_env={
                "REPRO_CHAOS": "7:store-save=sleep:0.3@1",
                "REPRO_CHAOS_STATE": str(tmp_path / "chaos-state"),
            },
        )
        assert len(probes) == 1, (
            f"expected exactly one live simulation, saw {probes}; outputs={outputs}"
        )
        (first,), (second,) = outputs
        assert first["key"] == second["key"]
        assert first["energy"] == second["energy"]
        assert first["cycles"] == second["cycles"]
        # Exactly one of them computed; the other was served the entry.
        assert sorted([first["fresh"], second["fresh"]]) == [False, True]

        store = ResultStore(store_root)
        assert [entry.key for entry in store.entries()] == [first["key"]]
        assert list(store_root.rglob("*.tmp")) == []
        assert list(store.lock_root.rglob("*.lock")) == []
        assert store.fsck().clean

    def test_loser_reads_winners_entry_in_process(self, store, tmp_path):
        # Compute the summary against a scratch store up front: the flight
        # under test must stay open (publish-free) while the loser arrives.
        workload = make_tiny()
        config = ExperimentConfig(workload="tiny", mechanism="none")
        scratch = ExperimentEngine(store=ResultStore(tmp_path / "scratch"))
        summary = scratch.evaluate(config, workload=workload).summarize()
        key = ExperimentEngine(store=store).key_for(config, workload=workload)

        entered = threading.Event()
        release = threading.Event()
        flights: list[Flight] = []

        def winner():
            with store.single_flight(key) as flight:
                assert flight.owner
                entered.set()
                release.wait(timeout=30)
                store.save(key, summary)

        thread = threading.Thread(target=winner)
        thread.start()
        assert entered.wait(timeout=10)

        def loser():
            with store.single_flight(key) as flight:
                flights.append(flight)

        loser_thread = threading.Thread(target=loser)
        loser_thread.start()
        time.sleep(0.1)  # the loser is now polling the lock
        release.set()
        thread.join(timeout=30)
        loser_thread.join(timeout=30)
        assert len(flights) == 1
        flight = flights[0]
        assert not flight.owner
        assert flight.summary is not None
        assert flight.shared


class TestSingleFlightLocks:
    def test_stale_lock_from_dead_process_is_broken(self, store):
        key = "f" * 64
        lock_path = store.lock_path_for(key)
        lock_path.parent.mkdir(parents=True, exist_ok=True)
        lock_path.write_text(
            json.dumps({"pid": 2**22 + 12345, "host": "nowhere", "key": key})
        )
        old = time.time() - 3600.0
        os.utime(lock_path, (old, old))
        with store.single_flight(key) as flight:
            assert flight.owner
        assert not lock_path.exists()

    def test_deadline_computes_without_usurping_live_lock(self, store):
        key = "e" * 64
        lock_path = store.lock_path_for(key)
        lock_path.parent.mkdir(parents=True, exist_ok=True)
        # A cross-host lock with a fresh mtime: not provably dead, so the
        # caller's own deadline makes it compute anyway — but *without*
        # breaking the (possibly live) owner's lock.
        lock_path.write_text(
            json.dumps({"pid": os.getpid(), "host": "somewhere-else", "key": key})
        )
        start = time.monotonic()
        with store.single_flight(key, poll_s=0.01, timeout_s=0.2) as flight:
            assert flight.owner
        assert time.monotonic() - start < 10.0
        assert lock_path.exists()  # the held lock was never unlinked

    def test_live_same_host_lock_is_never_stale_by_age(self, store, monkeypatch):
        """A live owner computing past the TTL must keep its lock.

        Regression: ``_lock_is_stale`` used to fall through to the TTL
        check even after a successful same-host pid probe, so a long
        computation had its lock broken under it, and its own release
        then unlinked the usurper's lock — cascading takeovers.
        """
        monkeypatch.setenv("REPRO_STORE_LOCK_TTL", "1")
        from repro.experiments.store import _hostname

        key = "d" * 64
        lock_path = store.lock_path_for(key)
        lock_path.parent.mkdir(parents=True, exist_ok=True)
        lock_path.write_text(
            json.dumps({"pid": os.getpid(), "host": _hostname(), "key": key})
        )
        old = time.time() - 3600.0  # far older than any TTL
        os.utime(lock_path, (old, old))
        assert not store._lock_is_stale(lock_path)

    def test_dead_same_host_lock_is_stale_immediately(self, store):
        key = "c" * 64
        from repro.experiments.store import _hostname

        lock_path = store.lock_path_for(key)
        lock_path.parent.mkdir(parents=True, exist_ok=True)
        lock_path.write_text(
            json.dumps({"pid": 2**22 + 12345, "host": _hostname(), "key": key})
        )
        assert store._lock_is_stale(lock_path)  # fresh mtime, provably dead pid

    def test_disabled_store_is_always_owner(self, monkeypatch):
        monkeypatch.setenv("REPRO_RESULT_STORE", "off")
        store = ResultStore()
        with store.single_flight("a" * 64) as flight:
            assert flight.owner
            assert flight.summary is None


class TestReaperVsLiveWriter:
    """Satellite 2: TTL clamp keeps the reaper off live ``*.tmp`` files."""

    def test_ttl_floor_protects_fresh_tmp(self, store, monkeypatch):
        monkeypatch.setenv("REPRO_STORE_TMP_TTL", "0")
        target_dir = store.generation_root / "ab" / "cd"
        target_dir.mkdir(parents=True, exist_ok=True)
        live_tmp = target_dir / "entry.json.worker.tmp"
        live_tmp.write_text("{half-written")
        # Both the env-configured TTL and an explicit max_age_s=0 are
        # clamped to the floor: a seconds-old tmp file survives.
        assert store.reap_stale_tmp() == 0
        assert store.reap_stale_tmp(max_age_s=0.0) == 0
        assert store.fsck().reaped_tmp == 0
        assert live_tmp.exists()

    def test_truly_stale_tmp_is_still_reaped(self, store):
        target_dir = store.generation_root / "ab" / "cd"
        target_dir.mkdir(parents=True, exist_ok=True)
        stale_tmp = target_dir / "entry.json.dead.tmp"
        stale_tmp.write_text("{half-written")
        old = time.time() - 3600.0
        os.utime(stale_tmp, (old, old))
        assert store.reap_stale_tmp(max_age_s=0.0) == 1
        assert not stale_tmp.exists()

    def test_slow_publish_survives_concurrent_reap(self, store, monkeypatch):
        """A paused mid-``_publish`` writer must still be able to rename."""
        monkeypatch.setenv("REPRO_STORE_TMP_TTL", "0")
        final = store.generation_root / "ab" / "cd" / "entry.json"
        final.parent.mkdir(parents=True, exist_ok=True)
        tmp = final.with_name(final.name + ".slow.tmp")
        tmp.write_text('{"ok": true}')
        # The writer is "paused" between tmp-write and rename; a
        # concurrent reaper (worst-case TTL) sweeps the store.
        reaper = threading.Thread(target=store.reap_stale_tmp, args=(0.0,))
        reaper.start()
        reaper.join(timeout=30)
        os.replace(tmp, final)  # must not raise FileNotFoundError
        assert json.loads(final.read_text()) == {"ok": True}


class TestMultiProcessStress:
    """Satellite 4: K processes hammering one root under chaos."""

    def test_stress_converges_to_one_entry_per_config(self, tmp_path):
        store_root = tmp_path / "store"
        specs = [
            {"mechanism": "none", "threshold_nj": 50.0},
            {"mechanism": "vrp", "threshold_nj": 50.0},
            {"mechanism": "vrp", "threshold_nj": 100.0},
        ]
        # Every process evaluates every config, in a different order, so
        # each key is contended by all four processes.
        orders = [
            specs,
            specs[::-1],
            [specs[1], specs[0], specs[2]],
            [specs[2], specs[0], specs[1]],
        ]
        outputs, probes = _launch_workers(
            tmp_path,
            store_root,
            orders,
            count=4,
            extra_env={
                "REPRO_CHAOS": "11:store-save=sleep:0.2@1",
                "REPRO_CHAOS_STATE": str(tmp_path / "chaos-state"),
            },
        )
        # No lost entries, no duplicate simulations.
        assert len(probes) == len(specs), (
            f"duplicate simulations: {probes}; outputs={outputs}"
        )
        by_key: dict[str, set] = {}
        for worker_output in outputs:
            assert len(worker_output) == len(specs)
            for row in worker_output:
                by_key.setdefault(row["key"], set()).add(
                    (row["energy"], row["cycles"])
                )
        assert len(by_key) == len(specs)
        for key, observations in by_key.items():
            assert len(observations) == 1, f"divergent results for {key}"

        store = ResultStore(store_root)
        assert sorted(entry.key for entry in store.entries()) == sorted(by_key)
        assert list(store_root.rglob("*.tmp")) == []
        assert list(store.lock_root.rglob("*.lock")) == []
        report = store.fsck()
        assert report.clean
        assert report.scanned_entries == len(specs)


class TestTraceEviction:
    """LRU eviction keeps the trace store under REPRO_TRACE_STORE_MAX_BYTES."""

    @staticmethod
    def _trace_bytes(store) -> int:
        traces_root = store.root / "traces"
        if not traces_root.is_dir():
            return 0
        return sum(p.stat().st_size for p in traces_root.rglob("*.trace"))

    def _populate(self, store) -> ExperimentEngine:
        engine = ExperimentEngine(store=store)
        # Distinct sources => distinct trace keys => several snapshots.
        for index in range(3):
            source = TINY_SOURCE.replace("i & 15", f"i & {3 + index}")
            workload = make_tiny(name=f"tiny{index}", source=source)
            config = ExperimentConfig(workload=workload.name, mechanism="none")
            engine.evaluate(config, workload=workload, pipeline="materialized")
        return engine

    def test_eviction_enforces_byte_cap(self, store):
        self._populate(store)
        before = self._trace_bytes(store)
        assert before > 0
        sizes = sorted(
            p.stat().st_size for p in (store.root / "traces").rglob("*.trace")
        )
        budget = sizes[-1]  # room for roughly the largest snapshot only
        evicted = store.evict_traces(budget_bytes=budget)
        assert evicted >= 1
        assert self._trace_bytes(store) <= budget
        # Emptied shard directories are compacted away.
        for dirpath, dirnames, filenames in os.walk(store.root / "traces"):
            assert dirnames or filenames, f"empty shard dir left behind: {dirpath}"

    def test_save_trace_auto_evicts_under_env_cap(self, store, monkeypatch):
        engine = self._populate(store)
        sizes = [p.stat().st_size for p in (store.root / "traces").rglob("*.trace")]
        cap = max(sizes) * 2
        monkeypatch.setenv("REPRO_TRACE_STORE_MAX_BYTES", str(cap))
        # New snapshots keep arriving; the store stays under the cap.
        for index in range(3, 6):
            source = TINY_SOURCE.replace("i & 15", f"i & {3 + index}")
            workload = make_tiny(name=f"tiny{index}", source=source)
            config = ExperimentConfig(workload=workload.name, mechanism="none")
            engine.evaluate(config, workload=workload, pipeline="materialized")
            assert self._trace_bytes(store) <= cap

    def test_recently_used_traces_survive(self, store):
        engine = self._populate(store)
        traces = sorted((store.root / "traces").rglob("*.trace"))
        assert len(traces) >= 2
        # Make the first snapshot look cold and the rest hot.
        old = time.time() - 3600.0
        os.utime(traces[0], (old, old))
        total = self._trace_bytes(store)
        victim_size = traces[0].stat().st_size
        store.evict_traces(budget_bytes=total - victim_size)
        assert not traces[0].exists()
        for survivor in traces[1:]:
            assert survivor.exists()
