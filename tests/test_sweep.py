"""Tests for the batched design-space sweep engine and the policy registry.

The load-bearing properties:

* every sweep row is bit-identical to the one-point-at-a-time engine path
  (``engine.evaluate`` with the same machine config) for the same cell,
* a warm-store sweep performs **zero** simulator calls,
* the policy registry on ``hardware/gating`` is the single enumeration
  point for policy names.
"""

from dataclasses import replace

import pytest

from repro.experiments import (
    ExperimentConfig,
    ExperimentEngine,
    POLICY_NAMES,
    ResultStore,
    SweepPoint,
    SweepResult,
    SweepRow,
    SweepSpec,
    default_sweep_configs,
    policy_for,
)
from repro.hardware import gating
from repro.uarch import CacheConfig, MachineConfig
from repro.workloads import Workload

TINY_SOURCE = """
int job_size;
int data[16];

int main() {
    int i;
    long acc;
    acc = 0;
    for (i = 0; i < job_size; i = i + 1) {
        acc = acc + data[i & 15];
    }
    print(acc);
    return 0;
}
"""


def make_tiny() -> Workload:
    return Workload(
        name="tiny",
        description="16-element accumulation loop",
        source=TINY_SOURCE,
        train_data={"job_size": (8,), "data": tuple(range(16))},
        ref_data={"job_size": (40,), "data": tuple(range(100, 116))},
    )


def tiny_configs() -> tuple[tuple[str, MachineConfig], ...]:
    """Three named configs: two sharing the default cache geometry (one
    multi-lane batch) and one with its own shape (singleton group)."""
    base = MachineConfig()
    return (
        ("base", base),
        ("narrow", replace(base, fetch_width=2, issue_width=2, max_in_flight=16)),
        (
            "smallcache",
            replace(
                base,
                icache=CacheConfig(16 * 1024, 2, 32, 1, 6),
                dcache=CacheConfig(16 * 1024, 2, 32, 1, 6),
            ),
        ),
    )


@pytest.fixture
def store(tmp_path, monkeypatch):
    # Sweeps lean on the trace-snapshot layer; shield the suite from a
    # developer's REPRO_TRACE_STORE=off.
    monkeypatch.delenv("REPRO_TRACE_STORE", raising=False)
    return ResultStore(tmp_path / "store")


# ----------------------------------------------------------------------
# The policy registry (hardware/gating)
# ----------------------------------------------------------------------
class TestGatingRegistry:
    def test_registry_is_the_policy_name_source(self):
        assert tuple(gating.registry()) == POLICY_NAMES

    def test_get_returns_shared_instances(self):
        assert gating.get("hw-size") is gating.get("hw-size")
        assert policy_for("hw-size") is gating.get("hw-size")

    def test_cooperative_keys_are_config_names(self):
        """Registry keys are configuration names; the instances' own
        ``.name`` describes the mechanism and may differ."""
        policy = gating.get("sw+hw-significance")
        assert policy.name == "software+hw-significance"

    def test_unknown_name_lists_valid_policies(self):
        with pytest.raises(KeyError) as exc:
            gating.get("nosuch")
        assert "baseline" in str(exc.value)

    def test_registry_copy_is_defensive(self):
        snapshot = gating.registry()
        snapshot["bogus"] = snapshot["baseline"]
        assert "bogus" not in gating.registry()


# ----------------------------------------------------------------------
# SweepSpec
# ----------------------------------------------------------------------
class TestSweepSpec:
    def test_cartesian_defaults(self):
        spec = SweepSpec.cartesian()
        assert len(spec) == 8 * len(POLICY_NAMES) * 8
        assert spec.policies == POLICY_NAMES
        assert [name for name, _ in spec.configs] == [
            name for name, _ in default_sweep_configs()
        ]

    def test_points_are_workload_major(self):
        spec = SweepSpec.cartesian(
            workloads=("li", "go"), configs=tiny_configs(), policies=("baseline",)
        )
        points = list(spec.iter_points())
        assert [point.workload for point in points] == ["li"] * 3 + ["go"] * 3

    def test_explicit_points(self):
        points = (
            SweepPoint(workload="li", config="base", policy="baseline"),
            SweepPoint(workload="li", config="narrow", policy="software", mechanism="vrp"),
        )
        spec = SweepSpec.explicit(points, configs=tiny_configs())
        assert len(spec) == 2
        assert tuple(spec.iter_points()) == points

    def test_duplicate_config_names_rejected(self):
        base = MachineConfig()
        with pytest.raises(ValueError):
            SweepSpec.cartesian(configs=(("x", base), ("x", base)))


# ----------------------------------------------------------------------
# Engine.sweep
# ----------------------------------------------------------------------
class TestEngineSweep:
    def test_rows_bit_exact_vs_per_point_evaluation(self, store):
        """The batched path must reproduce engine.evaluate exactly —
        cycles, total energy and ED² — for every (config, policy) cell."""
        engine = ExperimentEngine(store)
        tiny = make_tiny()
        spec = SweepSpec.cartesian(workloads=("tiny",), configs=tiny_configs())
        rows = list(engine.sweep(spec, workloads={"tiny": tiny}))
        assert len(rows) == 3 * len(POLICY_NAMES)
        config_map = spec.config_map()
        for row in rows:
            evaluation = engine.evaluate(
                ExperimentConfig(workload="tiny", machine_config=config_map[row.config]),
                workload=tiny,
            )
            outcome = evaluation.outcome(row.policy)
            assert row.cycles == outcome.cycles
            assert row.energy_nj == outcome.energy.total
            assert row.ed2 == outcome.ed2
            assert row.instructions == evaluation.total_dynamic_instructions

    def test_warm_store_sweep_replays_without_simulating(self, store, monkeypatch):
        tiny = make_tiny()
        spec = SweepSpec.cartesian(workloads=("tiny",), configs=tiny_configs())
        cold = SweepResult.collect(ExperimentEngine(store).sweep(spec, workloads={"tiny": tiny}))
        assert {row.source for row in cold.rows} == {"computed"}
        assert cold.simulations == 1  # one trace signature, many cells

        # A fresh engine over the same store must resolve the whole
        # matrix from the snapshot layer: zero simulator calls, enforced
        # by making any Machine.run attempt an assertion failure.
        from repro.sim.machine import Machine

        def _forbidden(self, *args, **kwargs):
            raise AssertionError("Machine.run called despite a warm result store")

        monkeypatch.setattr(Machine, "run", _forbidden)
        warm = SweepResult.collect(ExperimentEngine(store).sweep(spec, workloads={"tiny": tiny}))
        assert {row.source for row in warm.rows} == {"replayed"}
        assert warm.simulations == 0
        def _payload(row):
            fields = row.to_json_dict()
            del fields["source"]
            return fields

        assert [_payload(row) for row in warm.rows] == [_payload(row) for row in cold.rows]

    def test_mechanism_signatures_resolve_separate_traces(self, store):
        """Explicit points with different mechanisms score different
        traces (one artifact resolution per signature)."""
        engine = ExperimentEngine(store)
        tiny = make_tiny()
        points = (
            SweepPoint(workload="tiny", config="base", policy="baseline"),
            SweepPoint(workload="tiny", config="base", policy="baseline", mechanism="vrp"),
        )
        spec = SweepSpec.explicit(points, configs=tiny_configs())
        rows = list(engine.sweep(spec, workloads={"tiny": tiny}))
        assert [row.mechanism for row in rows] == ["none", "vrp"]
        result = SweepResult.collect(rows)
        assert result.simulations == 2

    def test_unknown_config_name_raises(self, store):
        engine = ExperimentEngine(store)
        tiny = make_tiny()
        spec = SweepSpec.explicit(
            (SweepPoint(workload="tiny", config="nosuch", policy="baseline"),),
            configs=tiny_configs(),
        )
        with pytest.raises(KeyError) as exc:
            list(engine.sweep(spec, workloads={"tiny": tiny}))
        assert "nosuch" in str(exc.value)


# ----------------------------------------------------------------------
# SweepResult reports (pure functions over rows)
# ----------------------------------------------------------------------
def _row(workload, config, policy, cycles, energy):
    return SweepRow(
        workload=workload,
        config=config,
        policy=policy,
        mechanism="none",
        threshold_nj=50.0,
        conventional_vrp=False,
        cycles=cycles,
        instructions=100,
        energy_nj=energy,
        ed2=energy * cycles * cycles,
        source="replayed",
    )


class TestSweepResultReports:
    def test_ed2_savings_vs_same_config_baseline(self):
        result = SweepResult(
            rows=[
                _row("li", "base", "baseline", 100, 10.0),
                _row("li", "base", "software", 100, 8.0),
                _row("li", "narrow", "baseline", 200, 9.0),
                _row("li", "narrow", "software", 200, 9.0),
            ]
        )
        savings = result.ed2_savings()
        assert savings[("base", "software")]["li"] == pytest.approx(0.2)
        assert savings[("narrow", "software")]["li"] == 0.0
        assert savings[("base", "baseline")]["li"] == 0.0

    def test_ed2_savings_vs_fixed_baseline_config(self):
        result = SweepResult(
            rows=[
                _row("li", "base", "baseline", 100, 10.0),
                _row("li", "narrow", "baseline", 50, 10.0),
            ]
        )
        savings = result.ed2_savings(baseline_config="base")
        # narrow halves the delay: ED² falls by 1 - (50²/100²) = 75%.
        assert savings[("narrow", "baseline")]["li"] == pytest.approx(0.75)

    def test_ed2_savings_requires_baseline_rows(self):
        result = SweepResult(rows=[_row("li", "base", "software", 100, 8.0)])
        with pytest.raises(KeyError):
            result.ed2_savings()

    def test_pareto_frontier_drops_dominated_points(self):
        rows = [
            _row("li", "a", "baseline", 100, 10.0),  # frontier (fastest)
            _row("li", "b", "baseline", 120, 8.0),   # frontier (cheapest)
            _row("li", "c", "baseline", 120, 9.0),   # dominated by b
            _row("li", "d", "baseline", 150, 12.0),  # dominated by a and b
            _row("go", "d", "baseline", 1, 1.0),     # other workload: incomparable
        ]
        result = SweepResult(rows=rows)
        frontier = result.pareto_frontier("li")
        assert [(row.config) for row in frontier] == ["a", "b"]
        # The all-workloads view concatenates per-workload frontiers.
        assert [(row.workload, row.config) for row in result.pareto_frontier()] == [
            ("li", "a"),
            ("li", "b"),
            ("go", "d"),
        ]

    def test_pareto_keeps_ties(self):
        rows = [
            _row("li", "a", "baseline", 100, 10.0),
            _row("li", "b", "baseline", 100, 10.0),  # exact tie: neither dominates
        ]
        assert len(SweepResult(rows=rows).pareto_frontier("li")) == 2


# ----------------------------------------------------------------------
# CLI: the sweep subcommand
# ----------------------------------------------------------------------
class TestSweepCLI:
    @pytest.fixture
    def cli_store(self, tmp_path, monkeypatch):
        from repro.experiments import reset_default_engine

        monkeypatch.delenv("REPRO_TRACE_STORE", raising=False)
        monkeypatch.setenv("REPRO_RESULT_STORE", str(tmp_path / "store"))
        reset_default_engine()
        yield
        reset_default_engine()

    def test_cli_sweep_json(self, cli_store, capsys):
        import json

        from repro.experiments.__main__ import main

        status = main(
            [
                "sweep",
                "--workload",
                "li",
                "--config",
                "table2",
                "--config",
                "window-32",
                "--policy",
                "baseline",
                "--policy",
                "software",
                "--json",
            ]
        )
        assert status == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["rows"]) == 4
        assert payload["simulations"] == 1
        assert {row["config"] for row in payload["rows"]} == {"table2", "window-32"}
        assert len(payload["ed2_savings"]) == 4
        assert payload["pareto"]

    def test_cli_sweep_table_reports(self, cli_store, capsys):
        from repro.experiments.__main__ import main

        status = main(["sweep", "--workload", "li", "--config", "table2"])
        assert status == 0
        out = capsys.readouterr().out
        assert "ED^2 savings vs baseline policy" in out
        assert "Pareto frontier" in out
        assert "points/minute" in out
        assert "cold simulation" in out

    def test_cli_sweep_rejects_unknown_workload(self, cli_store, capsys):
        from repro.experiments.__main__ import main

        assert main(["sweep", "--workload", "nosuch"]) == 2
        assert "unknown workload" in capsys.readouterr().err

    def test_cli_run_json(self, cli_store, capsys):
        import json

        from repro.experiments.__main__ import main

        status = main(["run", "--workload", "li", "--policy", "all", "--json"])
        assert status == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["rows"]) == 1
        row = payload["rows"][0]
        assert row["workload"] == "li"
        assert set(row["energy_nj"]) == set(POLICY_NAMES)
