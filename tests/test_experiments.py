"""Tests for the experiment harness plumbing (kept light: one workload)."""

import json
import os
import subprocess
import sys
import textwrap

import pytest

from repro.experiments import (
    POLICY_NAMES,
    EvaluationSummary,
    WorkloadEvaluation,
    compute_evaluation,
    evaluate_workload,
    format_percent,
    format_table,
    policy_for,
    table1_alu_energy_matrix,
)
from repro.isa import Width
from repro.workloads import workload_by_name


class TestReportFormatting:
    def test_format_percent(self):
        assert format_percent(0.1375) == "13.8%"

    def test_format_table_alignment(self):
        text = format_table(["name", "value"], [["a", 1.0], ["long-name", 2.5]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "long-name" in text
        assert "2.500" in text


class TestRunner:
    def test_policy_names(self):
        for name in ("baseline", "software", "hw-size", "hw-significance", "sw+hw-significance"):
            assert policy_for(name) is policy_for(name)

    def test_unknown_policy_lists_valid_names(self):
        with pytest.raises(KeyError) as excinfo:
            policy_for("hw-compression")
        message = str(excinfo.value)
        assert "hw-compression" in message
        assert "valid policies" in message
        assert "sw+hw-significance" in message

    def test_evaluate_workload_caches_and_reuses_trace(self):
        workload = workload_by_name("ijpeg")
        first = evaluate_workload(workload, mechanism="none")
        second = evaluate_workload(workload, mechanism="none")
        assert first is second
        baseline = first.outcome("baseline")
        hardware = first.outcome("hw-significance")
        assert baseline.timing is hardware.timing
        assert hardware.energy.total < baseline.energy.total

    def test_vrp_narrows_dynamic_widths(self):
        workload = workload_by_name("ijpeg")
        baseline = evaluate_workload(workload, mechanism="none")
        vrp = evaluate_workload(workload, mechanism="vrp")
        base_widths = baseline.dynamic_width_distribution()
        vrp_widths = vrp.dynamic_width_distribution()
        assert vrp_widths[Width.QUAD] <= base_widths[Width.QUAD]
        assert sum(vrp_widths.values()) == vrp.total_dynamic_instructions

    def test_width_distribution_matches_between_outcome_and_evaluation(self):
        # The once copy-pasted aggregation now has a single implementation
        # on Trace; both public entry points must agree exactly.  Computed
        # directly (not through the engine) so a prior in-process
        # evaluate_suite cannot hand back a restored, trace-less object.
        evaluation = compute_evaluation(workload_by_name("ijpeg"), mechanism="none")
        outcome = evaluation.outcome("baseline")
        assert (
            outcome.dynamic_width_distribution(evaluation.trace)
            == evaluation.dynamic_width_distribution()
        )


class TestRestoredOutcomes:
    """A ``from_summary()`` evaluation answers every energy query the live
    evaluation can, without a trace — the point of materializing all
    gating policies in one fused walk."""

    @pytest.fixture(scope="class")
    def live(self):
        return compute_evaluation(workload_by_name("ijpeg"), mechanism="none")

    @pytest.fixture(scope="class")
    def restored(self, live):
        # Round-trip through actual JSON so the comparison covers the wire
        # format, not just in-memory object sharing.
        payload = json.loads(json.dumps(live.summarize().to_json_dict()))
        summary = EvaluationSummary.from_json_dict(payload)
        return WorkloadEvaluation.from_summary(live.workload, summary)

    def test_restored_answers_all_policies_without_a_trace(self, live, restored):
        assert restored.is_restored
        assert restored.trace is None
        for name in POLICY_NAMES:
            outcome = restored.outcome(name)
            assert outcome.energy.by_structure == live.outcome(name).energy.by_structure
            assert outcome.energy.policy == live.outcome(name).energy.policy
            assert outcome.timing.cycles == live.timing.cycles

    def test_restored_unknown_policy_raises_improved_keyerror(self, restored):
        with pytest.raises(KeyError) as excinfo:
            restored.outcome("hw-compression")
        message = str(excinfo.value)
        assert "hw-compression" in message
        assert "not part of the stored summary" in message
        assert "baseline" in message  # the available policies are listed

    def test_live_unknown_policy_raises_improved_keyerror(self, live):
        with pytest.raises(KeyError) as excinfo:
            live.outcome("hw-compression")
        message = str(excinfo.value)
        assert "hw-compression" in message
        assert "valid policies" in message

    def test_savings_agree_between_live_and_restored(self, live, restored):
        live_base = live.outcome("baseline").energy
        restored_base = restored.outcome("baseline").energy
        for name in POLICY_NAMES:
            live_energy = live.outcome(name).energy
            restored_energy = restored.outcome(name).energy
            assert live_energy.savings_vs(live_base) == restored_energy.savings_vs(
                restored_base
            ), name
            assert live_energy.ed2_savings_vs(live_base) == restored_energy.ed2_savings_vs(
                restored_base
            ), name


class TestTable1:
    def test_matrix_shape(self):
        matrix = table1_alu_energy_matrix()
        assert set(matrix) == set(Width.all_widths())
        for row in matrix.values():
            assert set(row) == set(Width.all_widths())


class TestDeprecationShims:
    """The legacy free functions must attribute their DeprecationWarning to
    the *caller's* frame (stacklevel=3: helper → shim → caller).  A wrong
    stacklevel points the warning inside ``repro``, where the CI filter
    ``-W error::DeprecationWarning:repro`` would turn every legitimate
    shim call into a hard error."""

    @staticmethod
    def _shim_warning(record):
        matches = [
            warning
            for warning in record.list
            if issubclass(warning.category, DeprecationWarning)
            and "is deprecated" in str(warning.message)
        ]
        assert matches, "shim did not emit its DeprecationWarning"
        return matches[0]

    def test_evaluate_program_warns_at_caller(self):
        from repro.asm import assemble_program
        from repro.experiments import evaluate_program

        program = assemble_program(
            ".func main 0\nentry:\n    li r1, 1\n    print r1\n    halt\n.endfunc\n"
        )
        with pytest.warns(DeprecationWarning) as record:
            outcome = evaluate_program(program, policy_for("baseline"))
        warning = self._shim_warning(record)
        assert warning.filename == __file__
        assert "evaluate_program" in str(warning.message)
        assert outcome.energy.total > 0

    def test_compute_evaluation_warns_at_caller(self, monkeypatch):
        sentinel = object()
        monkeypatch.setattr(
            "repro.experiments.runner._compute_evaluation", lambda *a, **k: sentinel
        )
        with pytest.warns(DeprecationWarning) as record:
            result = compute_evaluation(workload_by_name("li"))
        warning = self._shim_warning(record)
        assert warning.filename == __file__
        assert "compute_evaluation" in str(warning.message)
        assert result is sentinel

    def test_evaluate_workload_warns_at_caller(self, monkeypatch):
        sentinel = object()

        class _StubEngine:
            def evaluate(self, config, workload=None):
                return sentinel

        monkeypatch.setattr("repro.experiments.engine.default_engine", _StubEngine)
        with pytest.warns(DeprecationWarning) as record:
            result = evaluate_workload(workload_by_name("li"))
        warning = self._shim_warning(record)
        assert warning.filename == __file__
        assert "evaluate_workload" in str(warning.message)
        assert result is sentinel

    def test_evaluate_suite_warns_at_caller(self, monkeypatch):
        from repro.experiments import evaluate_suite

        class _StubEngine:
            def map_suite(self, **kwargs):
                return {}

        monkeypatch.setattr("repro.experiments.engine.default_engine", _StubEngine)
        with pytest.warns(DeprecationWarning) as record:
            assert evaluate_suite() == {}
        warning = self._shim_warning(record)
        assert warning.filename == __file__
        assert "evaluate_suite" in str(warning.message)


class TestStoreCorruptionRecovery:
    """Corrupted on-disk entries must read as misses — logged, evicted,
    and recomputed — never as crashes."""

    @staticmethod
    def _fresh(tmp_path):
        from repro.experiments.engine import ExperimentConfig, ExperimentEngine
        from repro.experiments.store import ResultStore

        store = ResultStore(tmp_path / "store")
        engine = ExperimentEngine(store=store, jobs=1)
        return engine, ExperimentConfig(workload="li"), store

    def test_corrupt_summary_entry_is_evicted(self, tmp_path, caplog):
        engine, config, store = self._fresh(tmp_path)
        engine.evaluate(config)
        key = engine.key_for(config)
        path = store.path_for(key)
        assert path.is_file()
        path.write_text("{ this is not json", encoding="utf-8")
        with caplog.at_level("WARNING", logger="repro.experiments.store"):
            assert store.load(key) is None
        assert not path.exists()
        assert any("evicting corrupt result entry" in line for line in caplog.messages)

    def test_decodable_entry_with_broken_summary_is_evicted(self, tmp_path, caplog):
        engine, config, store = self._fresh(tmp_path)
        engine.evaluate(config)
        key = engine.key_for(config)
        path = store.path_for(key)
        path.write_text(json.dumps({"summary": {"bogus": 1}}), encoding="utf-8")
        with caplog.at_level("WARNING", logger="repro.experiments.store"):
            assert store.load(key) is None
        assert not path.exists()
        assert any("evicting corrupt result entry" in line for line in caplog.messages)

    @pytest.mark.parametrize(
        "cut",
        [
            pytest.param(lambda blob: blob[:16], id="header"),
            pytest.param(lambda blob: blob[: len(blob) // 2], id="middle"),
            pytest.param(lambda blob: blob[: len(blob) - 8], id="tail"),
        ],
    )
    def test_truncated_trace_snapshot_falls_back_to_simulation(
        self, tmp_path, caplog, cut
    ):
        from repro.experiments.engine import _snapshot_key
        from repro.sim.machine import Machine
        from repro.workloads import workload_by_name as by_name

        engine, config, store = self._fresh(tmp_path)
        engine.evaluate(config)
        snapshot = store.trace_path_for(_snapshot_key(config, by_name("li")))
        assert snapshot.is_file()
        # Truncate the snapshot in place: the decoder must reject it, the
        # store must quarantine it, and evaluation must re-simulate.
        blob = snapshot.read_bytes()
        corrupt = cut(blob)
        assert corrupt != blob
        snapshot.write_bytes(corrupt)
        # Drop the summary entry so resolution reaches the snapshot layer.
        store.path_for(engine.key_for(config)).unlink()

        simulations = []
        original_run = Machine.run

        def counting_run(self, *args, **kwargs):
            simulations.append(1)
            return original_run(self, *args, **kwargs)

        engine2, config2, _ = self._fresh(tmp_path)
        Machine.run = counting_run
        try:
            with caplog.at_level("WARNING", logger="repro.experiments.store"):
                evaluation = engine2.evaluate(config2)
        finally:
            Machine.run = original_run
        assert simulations, "corrupt snapshot did not fall back to simulation"
        assert not evaluation.is_restored
        assert any(
            "evicting corrupt trace snapshot" in line
            or "evicting unreplayable trace snapshot" in line
            for line in caplog.messages
        )
        # The recompute replaced the truncated snapshot with a fresh,
        # decodable one at the same path.
        from repro.sim.snapshot import decode_artifact

        assert snapshot.read_bytes() != corrupt
        assert decode_artifact(snapshot.read_bytes()) is not None
        # The corrupt bytes were quarantined, not destroyed: a reason
        # manifest names the original path and the corrupt payload is
        # preserved verbatim for post-mortem analysis.
        quarantined = store.quarantined()
        assert quarantined, "truncated snapshot was not quarantined"
        matches = [
            (path, manifest)
            for path, manifest in quarantined
            if manifest.get("original_path") == str(snapshot)
        ]
        assert matches, f"no quarantine manifest names {snapshot}"
        qpath, manifest = matches[0]
        assert qpath.read_bytes() == corrupt
        assert manifest["reason"]

    def test_garbage_trace_snapshot_reads_as_miss(self, tmp_path, caplog):
        engine, config, store = self._fresh(tmp_path)
        engine.evaluate(config)
        from repro.experiments.engine import _snapshot_key
        from repro.workloads import workload_by_name as by_name

        key = _snapshot_key(config, by_name("li"))
        snapshot = store.trace_path_for(key)
        snapshot.write_bytes(b"\x00garbage\xff" * 64)
        with caplog.at_level("WARNING", logger="repro.experiments.store"):
            assert store.load_trace(key) is None
        assert not snapshot.exists()
        assert any("evicting corrupt trace snapshot" in line for line in caplog.messages)


@pytest.mark.suite
@pytest.mark.slow
def test_second_suite_evaluation_runs_zero_simulations(tmp_path):
    """A fresh process re-running ``evaluate_suite`` is served from the
    on-disk store and never enters ``Machine.run``."""
    import repro

    src_dir = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    store = tmp_path / "store"
    env = dict(os.environ)
    env["REPRO_RESULT_STORE"] = str(store)
    env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")

    warm_script = textwrap.dedent(
        """
        import json
        from repro.experiments import evaluate_suite
        evaluations = evaluate_suite(mechanism="none")
        print(json.dumps({n: e.timing.cycles for n, e in evaluations.items()}))
        """
    )
    warm = subprocess.run(
        [sys.executable, "-c", warm_script], env=env, capture_output=True, text=True, timeout=900
    )
    assert warm.returncode == 0, warm.stderr
    warm_cycles = json.loads(warm.stdout.strip().splitlines()[-1])

    cold_script = textwrap.dedent(
        """
        import json
        from repro.sim.machine import Machine

        def _forbidden(self, *args, **kwargs):
            raise AssertionError("Machine.run called despite a warm result store")

        Machine.run = _forbidden
        from repro.experiments import evaluate_suite
        evaluations = evaluate_suite(mechanism="none")
        assert all(e.is_restored for e in evaluations.values())
        baseline = {n: e.outcome("baseline").energy.total for n, e in evaluations.items()}
        assert all(total > 0 for total in baseline.values())
        print(json.dumps({n: e.timing.cycles for n, e in evaluations.items()}))
        """
    )
    served = subprocess.run(
        [sys.executable, "-c", cold_script], env=env, capture_output=True, text=True, timeout=300
    )
    assert served.returncode == 0, served.stderr
    served_cycles = json.loads(served.stdout.strip().splitlines()[-1])
    assert served_cycles == warm_cycles
