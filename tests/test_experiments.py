"""Tests for the experiment harness plumbing (kept light: one workload)."""

from repro.experiments import (
    evaluate_workload,
    format_percent,
    format_table,
    policy_for,
    table1_alu_energy_matrix,
)
from repro.isa import Width
from repro.workloads import workload_by_name


class TestReportFormatting:
    def test_format_percent(self):
        assert format_percent(0.1375) == "13.8%"

    def test_format_table_alignment(self):
        text = format_table(["name", "value"], [["a", 1.0], ["long-name", 2.5]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "long-name" in text
        assert "2.500" in text


class TestRunner:
    def test_policy_names(self):
        for name in ("baseline", "software", "hw-size", "hw-significance", "sw+hw-significance"):
            assert policy_for(name) is policy_for(name)

    def test_evaluate_workload_caches_and_reuses_trace(self):
        workload = workload_by_name("ijpeg")
        first = evaluate_workload(workload, mechanism="none")
        second = evaluate_workload(workload, mechanism="none")
        assert first is second
        baseline = first.outcome("baseline")
        hardware = first.outcome("hw-significance")
        assert baseline.timing is hardware.timing
        assert hardware.energy.total < baseline.energy.total

    def test_vrp_narrows_dynamic_widths(self):
        workload = workload_by_name("ijpeg")
        baseline = evaluate_workload(workload, mechanism="none")
        vrp = evaluate_workload(workload, mechanism="vrp")
        base_widths = baseline.dynamic_width_distribution()
        vrp_widths = vrp.dynamic_width_distribution()
        assert vrp_widths[Width.QUAD] <= base_widths[Width.QUAD]
        assert sum(vrp_widths.values()) == len(vrp.trace.records)


class TestTable1:
    def test_matrix_shape(self):
        matrix = table1_alu_energy_matrix()
        assert set(matrix) == set(Width.all_widths())
        for row in matrix.values():
            assert set(row) == set(Width.all_widths())
