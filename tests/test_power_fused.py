"""Differential harness for the fused multi-policy energy accountant.

Three layers of defence around ``MultiPolicyEnergyAccountant``:

1. **Property tests** over hypothesis-generated random traces (mixed
   loads/stores/branches/imul, values spanning every width class, records
   with and without results) asserting the fused walk is *exactly* —
   float-for-float — equal to one ``EnergyAccountant`` pass per policy,
   for every policy and every structure.
2. An independently written **reference model** (a verbatim copy of the
   original single-policy accountant, predating the fused core) that the
   fused results must match within floating-point reassociation tolerance.
3. **Real workloads**: the same exact-equality differential over the
   actual suite traces, plus a walk-count probe asserting that a cold
   ``summarize()`` performs exactly one trace walk for energy accounting.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments import POLICY_NAMES, compute_evaluation, policy_for
from repro.experiments.runner import WorkloadEvaluation
from repro.hardware import (
    CooperativeGating,
    GatingPolicy,
    NoGating,
    SignificanceCompression,
    SizeCompression,
    SoftwareGating,
)
from repro.isa import INT64_MAX, INT64_MIN, OpKind, Opcode, Width
from repro.power import STRUCTURES, EnergyAccountant, MultiPolicyEnergyAccountant
from repro.sim import Trace
from repro.sim.trace import StaticEntry, StaticInfo, TraceRecord
from repro.uarch import TimingResult
from repro.workloads import SUITE_NAMES, workload_by_name

_MUL_ENERGY_FACTOR = 3.0


def _all_policies() -> dict[str, GatingPolicy]:
    return {name: policy_for(name) for name in POLICY_NAMES}


# ----------------------------------------------------------------------
# Reference model: the original per-policy accountant, kept verbatim so
# the fused kernel is checked against an independent implementation.
# ----------------------------------------------------------------------
class _ReferenceAccountant:
    def __init__(self, policy: GatingPolicy) -> None:
        self.policy = policy

    def account(self, trace, timing):
        policy = self.policy
        static = trace.static
        self._totals = {name: 0.0 for name in STRUCTURES}

        for record in trace.records:
            entry = static[record.uid]
            source_bytes = [policy.value_bytes(entry, value) for value in record.srcs]
            result_bytes = (
                policy.value_bytes(entry, record.result) if record.result is not None else 0
            )

            self._add("rename", 1, None)
            self._add("rob", 2, result_bytes if record.result is not None else None)
            if source_bytes:
                average = sum(source_bytes) / len(source_bytes)
                self._add("instruction_queue", 2, average)
            else:
                self._add("instruction_queue", 2, None)

            for nbytes in source_bytes:
                self._add("register_file", 1, nbytes)
            if record.result is not None:
                self._add("register_file", 1, result_bytes)
                self._add("rename_buffers", 1, result_bytes)
                self._add("result_bus", 1, result_bytes)

            operand_candidates = source_bytes + (
                [result_bytes] if record.result is not None else []
            )
            fu_bytes = max(operand_candidates) if operand_candidates else 8
            fu_weight = _MUL_ENERGY_FACTOR if entry.functional_unit == "imul" else 1.0
            self._add("alu", fu_weight, fu_bytes)

            if entry.is_load or entry.is_store:
                data_bytes = (
                    result_bytes if entry.is_load else (source_bytes[0] if source_bytes else 8)
                )
                self._add("lsq", 2, data_bytes)
                self._add("dcache_l1", 1, data_bytes)
            if entry.is_branch:
                self._add("branch_predictor", 1, None)

        self._add("icache", timing.icache_accesses, None)
        self._add("dcache_l2", timing.l2_accesses, None)
        self._add("branch_predictor", timing.icache_accesses, None)
        self._add("clock", timing.cycles, None)
        return dict(self._totals)

    def _add(self, name, accesses, active_bytes):
        params = STRUCTURES[name]
        if active_bytes is None:
            activity = 1.0
        else:
            activity = active_bytes / 8.0
        energy = params.energy_per_access * accesses * (
            (1.0 - params.data_fraction) + params.data_fraction * activity
        )
        if params.stores_values and self.policy.tag_bits:
            energy += (
                params.energy_per_access
                * accesses
                * params.data_fraction
                * self.policy.tag_overhead_fraction
            )
        self._totals[name] += energy


# ----------------------------------------------------------------------
# Random-trace strategies
# ----------------------------------------------------------------------
#: Values spanning every significant-byte and size-class boundary.
_BOUNDARY_VALUES = [
    0, 1, -1, 127, 128, -128, -129, 0xFF, 0x100,
    0x7FFF, 0x8000, -0x8000, -0x8001,
    2**31 - 1, 2**31, -(2**31), 2**32, 2**33 - 1, 2**33,
    2**39 - 1, 2**39, 2**40, INT64_MAX, INT64_MIN,
]

_values = st.one_of(
    st.sampled_from(_BOUNDARY_VALUES),
    st.integers(min_value=-256, max_value=256),
    st.integers(min_value=INT64_MIN, max_value=INT64_MAX),
)

_entry_kinds = st.sampled_from(["alu", "imul", "load", "store", "branch"])


@st.composite
def _static_entry(draw, uid: int) -> StaticEntry:
    kind = draw(_entry_kinds)
    width = draw(st.sampled_from(Width.all_widths()))
    is_load = kind == "load"
    is_store = kind == "store"
    memory_width = (
        draw(st.sampled_from(Width.all_widths())) if (is_load or is_store) else None
    )
    num_srcs = draw(st.integers(min_value=0, max_value=3))
    has_dest = draw(st.booleans())
    return StaticEntry(
        uid=uid,
        opcode=Opcode.ADD,
        kind=OpKind.ALU,
        width=width,
        functional_unit="imul" if kind == "imul" else "ialu",
        latency=1,
        energy_class="alu",
        is_load=is_load,
        is_store=is_store,
        is_branch=kind == "branch",
        is_conditional=kind == "branch",
        is_call=False,
        is_return=False,
        is_guard=False,
        memory_width=memory_width,
        num_src_regs=num_srcs,
        has_dest=has_dest,
        src_regs=tuple(range(num_srcs)),
        dest_reg=0 if has_dest else None,
        function="f",
        block="b",
    )


@st.composite
def _trace_and_timing(draw) -> tuple[Trace, TimingResult]:
    n_static = draw(st.integers(min_value=1, max_value=6))
    static = StaticInfo()
    for uid in range(n_static):
        static.add_entry(draw(_static_entry(uid)))

    n_records = draw(st.integers(min_value=0, max_value=40))
    records = []
    for position in range(n_records):
        uid = draw(st.integers(min_value=0, max_value=n_static - 1))
        entry = static[uid]
        srcs = tuple(draw(_values) for _ in range(entry.num_src_regs))
        # ``result`` may be absent even for instructions with a destination:
        # the accountant must key off the record, not the static entry.
        has_result = entry.has_dest and draw(st.booleans())
        result = draw(_values) if has_result else None
        records.append(
            TraceRecord(
                uid=uid,
                address=0x1000 + 4 * position,
                srcs=srcs,
                result=result,
                mem_address=0x8000 if (entry.is_load or entry.is_store) else None,
                taken=draw(st.booleans()) if entry.is_branch else None,
                next_address=0x1000 + 4 * (position + 1),
            )
        )

    timing = TimingResult(
        cycles=draw(st.integers(min_value=1, max_value=100_000)),
        instructions=n_records,
        branch_lookups=draw(st.integers(min_value=0, max_value=10_000)),
        branch_mispredictions=0,
        icache_accesses=draw(st.integers(min_value=0, max_value=10_000)),
        icache_misses=0,
        dcache_accesses=0,
        dcache_misses=0,
        l2_accesses=draw(st.integers(min_value=0, max_value=10_000)),
        l2_misses=0,
        loads=0,
        stores=0,
    )
    return Trace(records=records, static=static), timing


# ----------------------------------------------------------------------
# Property tests
# ----------------------------------------------------------------------
class TestFusedDifferential:
    @settings(max_examples=75, deadline=None)
    @given(_trace_and_timing())
    def test_fused_exactly_equals_per_policy_accountant(self, data):
        """Fused walk ≡ six independent single-policy walks, bit for bit."""
        trace, timing = data
        policies = _all_policies()
        fused = MultiPolicyEnergyAccountant(policies).account(trace, timing)
        assert set(fused) == set(POLICY_NAMES)
        for name, policy in policies.items():
            single = EnergyAccountant(policy).account(trace, timing)
            assert fused[name].by_structure == single.by_structure, name
            assert set(fused[name].by_structure) == set(STRUCTURES)
            assert fused[name].cycles == single.cycles
            assert fused[name].instructions == single.instructions == len(trace.records)
            assert fused[name].policy == policy.name

    @settings(max_examples=75, deadline=None)
    @given(_trace_and_timing())
    def test_fused_matches_reference_model(self, data):
        """Fused walk matches the original implementation (copied above)
        within floating-point reassociation tolerance."""
        trace, timing = data
        policies = _all_policies()
        fused = MultiPolicyEnergyAccountant(policies).account(trace, timing)
        for name, policy in policies.items():
            reference = _ReferenceAccountant(policy).account(trace, timing)
            for structure, expected in reference.items():
                actual = fused[name].by_structure[structure]
                assert math.isclose(actual, expected, rel_tol=1e-9, abs_tol=1e-9), (
                    name,
                    structure,
                    actual,
                    expected,
                )

    @settings(max_examples=25, deadline=None)
    @given(_trace_and_timing())
    def test_opaque_policy_falls_back_to_direct_walk(self, data):
        """A policy with ``width_source=None`` still accounts correctly."""

        class OpaqueSignificance(SignificanceCompression):
            width_source = None

        trace, timing = data
        opaque = OpaqueSignificance()
        fused = MultiPolicyEnergyAccountant([opaque]).account(trace, timing)
        reference = _ReferenceAccountant(SignificanceCompression()).account(trace, timing)
        # The direct path replays the reference arithmetic verbatim, so
        # this comparison is exact, not merely within tolerance.
        assert fused[opaque.name].by_structure == reference

    @settings(max_examples=25, deadline=None)
    @given(_trace_and_timing())
    def test_subclass_without_width_source_stays_correct(self, data):
        """A naive subclass that overrides ``value_bytes`` but never heard
        of ``width_source`` inherits the opaque default and must be
        accounted through the exact direct walk — not silently treated as
        a full-width policy."""

        class Halves(GatingPolicy):
            name = "halves"

            def value_bytes(self, entry, value):
                return 4

        trace, timing = data
        policy = Halves()
        assert policy.width_source is None
        fused = MultiPolicyEnergyAccountant([policy]).account(trace, timing)
        reference = _ReferenceAccountant(policy).account(trace, timing)
        assert fused["halves"].by_structure == reference

    def test_duplicate_policy_names_rejected(self):
        with pytest.raises(ValueError):
            MultiPolicyEnergyAccountant([NoGating(), NoGating()])

    def test_empty_policy_set(self):
        trace = Trace(records=[], static=StaticInfo())
        timing = TimingResult(1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0)
        assert MultiPolicyEnergyAccountant([]).account(trace, timing) == {}

    def test_width_sources_cover_all_stored_policies(self):
        """Every stored policy is recognized by the fused fast path."""
        recognized = {"full", "encoded", "significant", "size_class",
                      "min:significant", "min:size_class"}
        for name, policy in _all_policies().items():
            assert policy.width_source in recognized, name
        assert CooperativeGating(NoGating()).width_source == "encoded"
        assert CooperativeGating(SoftwareGating()).width_source == "encoded"
        assert SizeCompression().width_source == "size_class"


# ----------------------------------------------------------------------
# Real workloads
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def ijpeg_evaluation():
    return compute_evaluation(workload_by_name("ijpeg"), mechanism="none")


def _assert_fused_equals_sequential(trace, timing):
    policies = _all_policies()
    fused = MultiPolicyEnergyAccountant(policies).account(trace, timing)
    for name, policy in policies.items():
        single = EnergyAccountant(policy).account(trace, timing)
        assert fused[name].by_structure == single.by_structure, name


class TestRealWorkloads:
    def test_fused_equals_sequential_on_ijpeg(self, ijpeg_evaluation):
        _assert_fused_equals_sequential(ijpeg_evaluation.trace, ijpeg_evaluation.timing)


@pytest.mark.suite
@pytest.mark.slow
@pytest.mark.parametrize("name", SUITE_NAMES)
def test_fused_equals_sequential_on_suite_workload(name):
    """Exact fused/sequential equivalence over every real suite trace."""
    evaluation = compute_evaluation(workload_by_name(name), mechanism="none")
    _assert_fused_equals_sequential(evaluation.trace, evaluation.timing)


# ----------------------------------------------------------------------
# Walk-count probe
# ----------------------------------------------------------------------
class _CountingRecords(list):
    """List of trace records that counts full iterations (walks)."""

    def __init__(self, records):
        super().__init__(records)
        self.walks = 0

    def __iter__(self):
        self.walks += 1
        return super().__iter__()


def _probed_evaluation(evaluation) -> tuple[WorkloadEvaluation, _CountingRecords]:
    records = _CountingRecords(evaluation.trace.records)
    trace = Trace(records=records, static=evaluation.trace.static)
    fresh = WorkloadEvaluation(
        workload=evaluation.workload,
        program=evaluation.program,
        trace=trace,
        run=evaluation.run,
        timing=evaluation.timing,
    )
    return fresh, records


class TestWalkCounts:
    def test_first_outcome_fills_all_siblings_without_record_walks(self, ijpeg_evaluation):
        """The columnar accountant never re-reads the record stream: the
        single walk is the one that ingested the records into columns."""
        evaluation, records = _probed_evaluation(ijpeg_evaluation)
        assert records.walks == 1  # columnar ingestion
        evaluation.outcome("hw-size")
        assert records.walks == 1
        for name in POLICY_NAMES:
            evaluation.outcome(name)
        assert records.walks == 1  # siblings were cached by the fused walk

    def test_cold_summarize_performs_zero_record_walks(self, ijpeg_evaluation):
        """Energy accounting *and* the four dynamic distributions run off
        the columns (cached combo/uid aggregations), so a cold summarize
        adds no walk beyond the ingestion one."""
        evaluation, records = _probed_evaluation(ijpeg_evaluation)
        summary = evaluation.summarize()
        assert records.walks == 1
        assert set(summary.energies) == set(POLICY_NAMES)
        # Re-summarizing and re-querying outcomes is free.
        evaluation.summarize()
        for name in POLICY_NAMES:
            evaluation.outcome(name)
        assert records.walks == 1

    def test_trace_level_aggregations_are_cached(self, ijpeg_evaluation):
        trace = ijpeg_evaluation.trace
        assert trace.uid_counts() is trace.uid_counts()
        assert trace.shape_counts() is trace.shape_counts()
        assert sum(trace.uid_counts().values()) == len(trace)
        assert sum(trace.shape_counts().values()) == len(trace)
