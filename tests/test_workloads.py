"""Integration tests over the workload suite.

The central soundness property of the whole reproduction is checked here:
VRP and VRS are *semantics preserving* — the transformed binaries must print
exactly what the baseline binaries print, on every workload.
"""

import pytest

from repro.core import VRPConfig, VRSConfig, apply_widths, run_vrp, run_vrs
from repro.sim import Machine
from repro.workloads import SUITE_NAMES, load_suite, workload_by_name


def _reference_output(workload, which="ref"):
    program = workload.build()
    workload.apply_input(program, which)
    return Machine(program).run().output


class TestSuiteDefinition:
    def test_suite_has_the_eight_specint_analogues(self):
        names = [w.name for w in load_suite()]
        assert names == list(SUITE_NAMES)

    def test_inputs_differ_between_train_and_ref(self):
        for workload in load_suite():
            assert workload.train_data != workload.ref_data

    def test_unknown_input_set_rejected(self):
        workload = workload_by_name("compress")
        program = workload.build()
        with pytest.raises(ValueError):
            workload.apply_input(program, "bogus")


@pytest.mark.suite
@pytest.mark.parametrize("name", SUITE_NAMES)
class TestWorkloadExecution:
    def test_runs_and_is_deterministic(self, name):
        workload = workload_by_name(name)
        first = _reference_output(workload)
        second = _reference_output(workload)
        assert first == second
        assert len(first) >= 1

    def test_train_and_ref_produce_different_work(self, name):
        workload = workload_by_name(name)
        program_ref = workload.build()
        workload.apply_input(program_ref, "ref")
        program_train = workload.build()
        workload.apply_input(program_train, "train")
        ref_instructions = Machine(program_ref).run().instructions
        train_instructions = Machine(program_train).run().instructions
        assert ref_instructions > train_instructions


@pytest.mark.suite
@pytest.mark.parametrize("name", SUITE_NAMES)
def test_vrp_preserves_output(name):
    workload = workload_by_name(name)
    expected = _reference_output(workload)
    program = workload.build()
    workload.apply_input(program, "ref")
    result = run_vrp(program, VRPConfig())
    apply_widths(program, result)
    assert Machine(program).run().output == expected
    assert result.narrowed_instructions() > 0


@pytest.mark.slow
@pytest.mark.parametrize("name", ("m88ksim", "vortex", "gcc"))
def test_vrs_preserves_output(name):
    workload = workload_by_name(name)
    expected = _reference_output(workload)
    program = workload.build()
    workload.apply_input(program, "train")
    run_vrs(program, VRSConfig(threshold_nj=50.0))
    workload.apply_input(program, "ref")
    assert Machine(program).run().output == expected
