"""Tests for the timing model, caches, branch predictor, power model, gating."""

from repro.hardware import (
    CooperativeGating,
    NoGating,
    SignificanceCompression,
    SizeCompression,
    SoftwareGating,
)
from repro.minic import compile_source
from repro.power import EnergyAccountant, STRUCTURES
from repro.sim import Machine
from repro.uarch import Cache, CacheConfig, CombinedPredictor, MachineConfig, OutOfOrderModel

_SOURCE = """
int table[64];
int main() {
    int i;
    long total;
    total = 0;
    for (i = 0; i < 64; i = i + 1) { table[i] = (i * 13) & 255; }
    for (i = 0; i < 64; i = i + 1) { total = total + table[i]; }
    print(total);
    return 0;
}
"""


def _trace():
    program = compile_source(_SOURCE)
    run = Machine(program).run(collect_trace=True)
    return run.trace


class TestCaches:
    def test_hits_after_first_access(self):
        cache = Cache(CacheConfig(1024, 2, 32, 1, 6))
        assert cache.access(0x100) is False
        assert cache.access(0x104) is True
        assert cache.miss_rate < 1.0

    def test_lru_eviction(self):
        cache = Cache(CacheConfig(64, 1, 32, 1, 6))  # 2 sets, direct mapped
        assert cache.access(0) is False
        assert cache.access(64) is False  # same set, evicts line 0
        assert cache.access(0) is False   # line 0 was evicted


class TestBranchPredictor:
    def test_learns_a_strongly_biased_branch(self):
        predictor = CombinedPredictor()
        for _ in range(200):
            predictor.update(0x4000, True)
        assert predictor.predict(0x4000) is True
        assert predictor.misprediction_rate < 0.2

    def test_alternating_pattern_uses_history(self):
        predictor = CombinedPredictor()
        outcome = True
        for _ in range(400):
            predictor.update(0x8000, outcome)
            outcome = not outcome
        # gshare should learn the period-2 pattern far better than chance.
        assert predictor.misprediction_rate < 0.5


class TestTimingModel:
    def test_cycles_bounded_by_width_and_instructions(self):
        trace = _trace()
        timing = OutOfOrderModel().run(trace)
        config = MachineConfig()
        assert timing.instructions == len(trace.records)
        assert timing.cycles >= timing.instructions / config.fetch_width
        assert timing.cycles < timing.instructions * 10
        assert 0.0 < timing.ipc <= config.issue_width

    def test_memory_ops_counted(self):
        trace = _trace()
        timing = OutOfOrderModel().run(trace)
        assert timing.loads > 0
        assert timing.stores > 0
        assert timing.dcache_accesses == timing.loads + timing.stores


class TestGatingPolicies:
    def test_policy_byte_counts(self):
        trace = _trace()
        entry = next(iter(trace.static.entries.values()))
        assert NoGating().value_bytes(entry, 3) == entry.width.bytes if entry.memory_width is None else True
        assert SignificanceCompression().value_bytes(entry, 3) == 1
        assert SizeCompression().value_bytes(entry, 0x1_0000_0000) == 5
        cooperative = CooperativeGating(SignificanceCompression())
        assert cooperative.value_bytes(entry, 3) == 1

    def test_tag_overheads(self):
        assert SignificanceCompression().tag_bits == 7
        assert SizeCompression().tag_bits == 2
        assert SoftwareGating().tag_bits == 0


class TestEnergyModel:
    def test_breakdown_covers_all_structures(self):
        trace = _trace()
        timing = OutOfOrderModel().run(trace)
        breakdown = EnergyAccountant(NoGating()).account(trace, timing)
        assert set(breakdown.by_structure) == set(STRUCTURES)
        assert breakdown.total > 0
        assert breakdown.energy_delay_squared() > 0

    def test_hardware_gating_reduces_data_structures_only(self):
        trace = _trace()
        timing = OutOfOrderModel().run(trace)
        baseline = EnergyAccountant(NoGating()).account(trace, timing)
        gated = EnergyAccountant(SignificanceCompression()).account(trace, timing)
        savings = gated.savings_vs(baseline)
        assert savings["register_file"] > 0.0
        assert savings["icache"] == 0.0
        assert savings["processor"] > 0.0

    def test_cooperative_is_at_least_as_good_as_software(self):
        trace = _trace()
        timing = OutOfOrderModel().run(trace)
        software = EnergyAccountant(SoftwareGating()).account(trace, timing)
        cooperative = EnergyAccountant(CooperativeGating(SizeCompression())).account(trace, timing)
        # The cooperative scheme gates at least as many bytes but pays a small
        # tag overhead, so allow a tiny tolerance.
        assert cooperative.total <= software.total * 1.05
