"""Tests for the timing model, caches, branch predictor, power model, gating."""

import pytest

from repro.hardware import (
    CooperativeGating,
    GatingPolicy,
    NoGating,
    SignificanceCompression,
    SizeCompression,
    SoftwareGating,
)
from repro.isa import INT64_MAX, INT64_MIN, OpKind, Opcode, Width
from repro.minic import compile_source
from repro.power import EnergyAccountant, EnergyBreakdown, STRUCTURES
from repro.sim import Machine
from repro.sim.trace import StaticEntry
from repro.uarch import Cache, CacheConfig, CombinedPredictor, MachineConfig, OutOfOrderModel

_SOURCE = """
int table[64];
int main() {
    int i;
    long total;
    total = 0;
    for (i = 0; i < 64; i = i + 1) { table[i] = (i * 13) & 255; }
    for (i = 0; i < 64; i = i + 1) { total = total + table[i]; }
    print(total);
    return 0;
}
"""


def _trace():
    program = compile_source(_SOURCE)
    run = Machine(program).run(collect_trace=True)
    return run.trace


class TestCaches:
    def test_hits_after_first_access(self):
        cache = Cache(CacheConfig(1024, 2, 32, 1, 6))
        assert cache.access(0x100) is False
        assert cache.access(0x104) is True
        assert cache.miss_rate < 1.0

    def test_lru_eviction(self):
        cache = Cache(CacheConfig(64, 1, 32, 1, 6))  # 2 sets, direct mapped
        assert cache.access(0) is False
        assert cache.access(64) is False  # same set, evicts line 0
        assert cache.access(0) is False   # line 0 was evicted


class TestBranchPredictor:
    def test_learns_a_strongly_biased_branch(self):
        predictor = CombinedPredictor()
        for _ in range(200):
            predictor.update(0x4000, True)
        assert predictor.predict(0x4000) is True
        assert predictor.misprediction_rate < 0.2

    def test_alternating_pattern_uses_history(self):
        predictor = CombinedPredictor()
        outcome = True
        for _ in range(400):
            predictor.update(0x8000, outcome)
            outcome = not outcome
        # gshare should learn the period-2 pattern far better than chance.
        assert predictor.misprediction_rate < 0.5


class TestTimingModel:
    def test_cycles_bounded_by_width_and_instructions(self):
        trace = _trace()
        timing = OutOfOrderModel().run(trace)
        config = MachineConfig()
        assert timing.instructions == len(trace.records)
        assert timing.cycles >= timing.instructions / config.fetch_width
        assert timing.cycles < timing.instructions * 10
        assert 0.0 < timing.ipc <= config.issue_width

    def test_memory_ops_counted(self):
        trace = _trace()
        timing = OutOfOrderModel().run(trace)
        assert timing.loads > 0
        assert timing.stores > 0
        assert timing.dcache_accesses == timing.loads + timing.stores


class TestGatingPolicies:
    def test_policy_byte_counts(self):
        trace = _trace()
        entry = next(iter(trace.static))
        assert NoGating().value_bytes(entry, 3) == entry.width.bytes if entry.memory_width is None else True
        assert SignificanceCompression().value_bytes(entry, 3) == 1
        assert SizeCompression().value_bytes(entry, 0x1_0000_0000) == 5
        cooperative = CooperativeGating(SignificanceCompression())
        assert cooperative.value_bytes(entry, 3) == 1

    def test_tag_overheads(self):
        assert SignificanceCompression().tag_bits == 7
        assert SizeCompression().tag_bits == 2
        assert SoftwareGating().tag_bits == 0


def _entry(width=Width.QUAD, memory_width=None) -> StaticEntry:
    """A synthetic static entry with the given encoded widths."""
    return StaticEntry(
        uid=0,
        opcode=Opcode.ADD,
        kind=OpKind.ALU,
        width=width,
        functional_unit="ialu",
        latency=1,
        energy_class="alu",
        is_load=memory_width is not None,
        is_store=False,
        is_branch=False,
        is_conditional=False,
        is_call=False,
        is_return=False,
        is_guard=False,
        memory_width=memory_width,
        num_src_regs=2,
        has_dest=True,
        src_regs=(1, 2),
        dest_reg=3,
        function="f",
        block="b",
    )


class TestGatingPolicyTables:
    """Boundary-value pins for the value-dependent gating policies, so a
    kernel regression in the fused accountant cannot hide behind an
    identical regression in the policies themselves."""

    #: value → (significant bytes, 1/2/5/8 size class)
    BOUNDARY_BYTES = [
        (0, 1, 1),
        (1, 1, 1),
        (-1, 1, 1),
        (127, 1, 1),
        (128, 2, 2),
        (-128, 1, 1),
        (-129, 2, 2),
        (0xFF, 2, 2),
        (0x100, 2, 2),
        (0x7FFF, 2, 2),
        (0x8000, 3, 5),
        (-0x8000, 2, 2),
        (2**31 - 1, 4, 5),
        (2**31, 5, 5),
        (-(2**31), 4, 5),
        (2**39 - 1, 5, 5),
        (2**39, 6, 8),
        (INT64_MAX, 8, 8),
        (INT64_MIN, 8, 8),
    ]

    @pytest.mark.parametrize("value,significant,size_class", BOUNDARY_BYTES)
    def test_significance_compression_value_bytes(self, value, significant, size_class):
        assert SignificanceCompression().value_bytes(_entry(), value) == significant

    @pytest.mark.parametrize("value,significant,size_class", BOUNDARY_BYTES)
    def test_size_compression_value_bytes(self, value, significant, size_class):
        assert SizeCompression().value_bytes(_entry(), value) == size_class

    @pytest.mark.parametrize("value,significant,size_class", BOUNDARY_BYTES)
    def test_cooperative_gating_takes_the_minimum(self, value, significant, size_class):
        wide = _entry(width=Width.QUAD)
        narrow = _entry(width=Width.HALF)
        via_memory = _entry(width=Width.QUAD, memory_width=Width.BYTE)
        assert CooperativeGating(SignificanceCompression()).value_bytes(wide, value) == min(
            8, significant
        )
        assert CooperativeGating(SignificanceCompression()).value_bytes(narrow, value) == min(
            2, significant
        )
        assert CooperativeGating(SizeCompression()).value_bytes(narrow, value) == min(
            2, size_class
        )
        # The memory width overrides the opcode width for memory operations.
        assert CooperativeGating(SignificanceCompression()).value_bytes(
            via_memory, value
        ) == min(1, significant)

    @pytest.mark.parametrize(
        "policy,expected_bits,expected_fraction",
        [
            (NoGating(), 0, 0.0),
            (SoftwareGating(), 0, 0.0),
            (GatingPolicy(), 0, 0.0),
            (SignificanceCompression(), 7, 7 / 64.0),
            (SizeCompression(), 2, 2 / 64.0),
            (CooperativeGating(SignificanceCompression()), 2, 2 / 64.0),
            (CooperativeGating(SizeCompression()), 2, 2 / 64.0),
        ],
    )
    def test_tag_overhead_fraction(self, policy, expected_bits, expected_fraction):
        assert policy.tag_bits == expected_bits
        assert policy.tag_overhead_fraction == expected_fraction

    def test_encoded_policies_ignore_the_value(self):
        narrow = _entry(width=Width.WORD)
        for policy in (NoGating(), SoftwareGating()):
            assert policy.value_bytes(narrow, 0) == 4
            assert policy.value_bytes(narrow, INT64_MAX) == 4
        assert NoGating().value_bytes(_entry(memory_width=Width.HALF), INT64_MAX) == 2


class TestSavingsVs:
    def test_structures_only_in_self_are_reported(self):
        mine = EnergyBreakdown(by_structure={"alu": 2.0, "new_unit": 3.0}, cycles=10)
        base = EnergyBreakdown(by_structure={"alu": 4.0}, cycles=10)
        savings = mine.savings_vs(base)
        # Previously "new_unit" was silently dropped from the result.
        assert set(savings) == {"alu", "new_unit", "processor"}
        assert savings["alu"] == 0.5
        # A structure without baseline energy follows the existing
        # zero-baseline convention: a saving of 0.0, not a KeyError.
        assert savings["new_unit"] == 0.0
        assert savings["processor"] == 1.0 - 5.0 / 4.0

    def test_zero_baseline_structure_keeps_convention(self):
        mine = EnergyBreakdown(by_structure={"alu": 1.0})
        base = EnergyBreakdown(by_structure={"alu": 0.0})
        assert mine.savings_vs(base)["alu"] == 0.0


class TestEnergyModel:
    def test_breakdown_covers_all_structures(self):
        trace = _trace()
        timing = OutOfOrderModel().run(trace)
        breakdown = EnergyAccountant(NoGating()).account(trace, timing)
        assert set(breakdown.by_structure) == set(STRUCTURES)
        assert breakdown.total > 0
        assert breakdown.energy_delay_squared() > 0

    def test_hardware_gating_reduces_data_structures_only(self):
        trace = _trace()
        timing = OutOfOrderModel().run(trace)
        baseline = EnergyAccountant(NoGating()).account(trace, timing)
        gated = EnergyAccountant(SignificanceCompression()).account(trace, timing)
        savings = gated.savings_vs(baseline)
        assert savings["register_file"] > 0.0
        assert savings["icache"] == 0.0
        assert savings["processor"] > 0.0

    def test_cooperative_is_at_least_as_good_as_software(self):
        trace = _trace()
        timing = OutOfOrderModel().run(trace)
        software = EnergyAccountant(SoftwareGating()).account(trace, timing)
        cooperative = EnergyAccountant(CooperativeGating(SizeCompression())).account(trace, timing)
        # The cooperative scheme gates at least as many bytes but pays a small
        # tag overhead, so allow a tiny tolerance.
        assert cooperative.total <= software.total * 1.05
