"""Unit and property tests for the value-range domain and transfer functions."""

from hypothesis import given
from hypothesis import strategies as st

from repro.core import ValueRange, bits_needed_for_mask, forward_transfer, range_for_width
from repro.isa import Imm, Instruction, Opcode, Reg, Width
from repro.isa.semantics import evaluate_operation

small_int = st.integers(min_value=-(2**20), max_value=2**20)


def make_range(a: int, b: int) -> ValueRange:
    return ValueRange(min(a, b), max(a, b))


class TestValueRange:
    def test_union_and_intersect(self):
        a = ValueRange(0, 10)
        b = ValueRange(5, 20)
        assert a.union(b) == ValueRange(0, 20)
        assert a.intersect(b) == ValueRange(5, 10)
        assert a.intersect(ValueRange(100, 200)) is None

    def test_width(self):
        assert ValueRange(0, 100).width() is Width.BYTE
        assert ValueRange(0, 200).width() is Width.HALF
        assert ValueRange(-40000, 0).width() is Width.WORD
        assert ValueRange.full().width() is Width.QUAD

    def test_clamp(self):
        assert ValueRange(0, 10).clamp(Width.BYTE) == ValueRange(0, 10)
        assert ValueRange(0, 300).clamp(Width.BYTE) == range_for_width(Width.BYTE)

    def test_mask_bits(self):
        assert bits_needed_for_mask(0xFF) == 8
        assert bits_needed_for_mask(0x3F) == 6
        assert bits_needed_for_mask(0x1FF) == 9
        assert bits_needed_for_mask(-1) == 64

    @given(small_int, small_int, small_int, small_int)
    def test_union_contains_both(self, a, b, c, d):
        left = make_range(a, b)
        right = make_range(c, d)
        union = left.union(right)
        assert union.contains_range(left)
        assert union.contains_range(right)


def _binary(op: Opcode, width: Width = Width.QUAD) -> Instruction:
    return Instruction(op, Reg(1), (Reg(2), Reg(3)), width=width)


class TestForwardTransferSoundness:
    """The forward transfer must over-approximate the concrete semantics."""

    @given(small_int, small_int, small_int, small_int,
           st.sampled_from([Opcode.ADD, Opcode.SUB, Opcode.MUL, Opcode.AND, Opcode.OR, Opcode.XOR,
                            Opcode.SLL, Opcode.SRL, Opcode.SRA]),
           st.sampled_from(list(Width)))
    def test_concrete_result_within_range(self, a, b, c, d, op, width):
        left = make_range(min(a, b), max(a, b))
        right = make_range(min(c, d), max(c, d))
        inst = _binary(op, width)
        result_range = forward_transfer(inst, [left, right])
        for x in (left.lo, left.hi, (left.lo + left.hi) // 2):
            for y in (right.lo, right.hi):
                concrete = evaluate_operation(op, width, [x, y])
                assert result_range.contains(concrete)

    def test_load_ranges_follow_opcode(self):
        load = Instruction(Opcode.LDB, Reg(1), (Reg(2), Imm(0)))
        assert forward_transfer(load, [ValueRange.full(), ValueRange.constant(0)]) == ValueRange(0, 255)
        load32 = Instruction(Opcode.LDW, Reg(1), (Reg(2), Imm(0)))
        assert forward_transfer(load32, [ValueRange.full(), ValueRange.constant(0)]) == range_for_width(Width.WORD)

    def test_compare_is_boolean(self):
        cmp = _binary(Opcode.CMPLT)
        assert forward_transfer(cmp, [ValueRange.full(), ValueRange.full()]) == ValueRange(0, 1)

    def test_mask_narrows_or_preserves(self):
        mask = Instruction(Opcode.MSKB, Reg(1), (Reg(2),))
        assert forward_transfer(mask, [ValueRange(0, 10)]) == ValueRange(0, 10)
        assert forward_transfer(mask, [ValueRange.full()]) == ValueRange(0, 255)

    def test_and_with_constant_mask(self):
        inst = Instruction(Opcode.AND, Reg(1), (Reg(2), Imm(0xFF)))
        result = forward_transfer(inst, [ValueRange.full(), ValueRange.constant(0xFF)])
        assert result == ValueRange(0, 255)

    def test_cmov_unions_old_and_new(self):
        inst = Instruction(Opcode.CMOVEQ, Reg(1), (Reg(2), Reg(3)))
        result = forward_transfer(
            inst, [ValueRange(0, 1), ValueRange(10, 20)], dest_old=ValueRange(-5, 5)
        )
        assert result == ValueRange(-5, 20)

    def test_narrow_width_clamps_result(self):
        inst = _binary(Opcode.ADD, Width.BYTE)
        result = forward_transfer(inst, [ValueRange(100, 120), ValueRange(100, 120)])
        assert result == range_for_width(Width.BYTE)
