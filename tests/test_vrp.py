"""Tests for value range propagation: ranges, loops, useful bits, widths."""

from repro.core import VRPConfig, apply_widths, run_vrp
from repro.isa import Opcode, Width
from repro.minic import compile_source
from repro.sim import Machine


def _analyse(source: str, config: VRPConfig | None = None):
    program = compile_source(source)
    result = run_vrp(program, config or VRPConfig())
    return program, result


def _instruction(program, function: str, opcode: Opcode, index: int = 0):
    matches = [i for i in program.functions[function].instructions() if i.op is opcode]
    return matches[index]


class TestInitialAndPropagatedRanges:
    def test_constant_assignment(self):
        program, result = _analyse("int main() { int a; a = 42; print(a); return 0; }")
        li = _instruction(program, "main", Opcode.LI)
        analysis = result.analysis_for("main")
        assert analysis.output_range(li).is_constant
        assert analysis.output_range(li).lo == 42

    def test_byte_load_bounds_result(self):
        source = "char buf[8]; int main() { print(buf[3]); return 0; }"
        program, result = _analyse(source)
        load = _instruction(program, "main", Opcode.LDB)
        rng = result.analysis_for("main").output_range(load)
        assert rng.lo == 0 and rng.hi == 255

    def test_loop_trip_count_bounds_iterator(self):
        source = """
        int sink;
        int main() {
            int i;
            for (i = 0; i < 100; i = i + 1) { sink = i; }
            return 0;
        }
        """
        program, result = _analyse(source)
        add = [
            inst
            for inst in program.functions["main"].instructions()
            if inst.op is Opcode.ADD and inst.dest in inst.source_registers()
        ][0]
        rng = result.analysis_for("main").output_range(add)
        # The paper's example: the incremented iterator spans <1, 100>.
        assert rng.lo == 1
        assert rng.hi == 100
        assert result.width_of(add.uid) is Width.BYTE

    def test_branch_condition_refines_range(self):
        source = """
        int sink;
        int main(){
            int a;
            a = sink;
            if (a <= 100) { if (a > 5) { sink = a; } }
            return 0;
        }
        """
        program, result = _analyse(source)
        # The store inside the nested if writes a value known to be in [6, 100].
        store = _instruction(program, "main", Opcode.STW, index=0)
        analysis = result.analysis_for("main")
        value_reg = store.srcs[0]
        rng = analysis.operand_range(store, value_reg)
        assert rng.lo >= 6
        assert rng.hi <= 100

    def test_interprocedural_return_range(self):
        source = """
        int small() { return 7; }
        int main() { print(small() + 1); return 0; }
        """
        program, result = _analyse(source)
        assert result.return_ranges["small"].is_constant
        assert result.return_ranges["small"].lo == 7


class TestUsefulRanges:
    SOURCE = """
    long wide;
    int main() {
        long x;
        x = wide;
        x = x + 12345678;
        x = x * 3;
        print(x & 0xff);
        return 0;
    }
    """

    def test_useful_bits_narrow_chain_feeding_mask(self):
        program, result = _analyse(self.SOURCE)
        add = _instruction(program, "main", Opcode.ADD)
        mul = _instruction(program, "main", Opcode.MUL)
        # Only the low byte of the chain is useful; MUL has no byte variant
        # so it falls back to its narrowest (32-bit) encoding.
        assert result.width_of(add.uid) is Width.BYTE
        assert result.width_of(mul.uid) is Width.WORD

    def test_conventional_vrp_keeps_chain_wide(self):
        program, result = _analyse(self.SOURCE, VRPConfig().conventional())
        add = _instruction(program, "main", Opcode.ADD)
        assert result.width_of(add.uid) is Width.QUAD

    def test_wider_use_elsewhere_blocks_narrowing(self):
        source = """
        long wide;
        int main() {
            long x;
            x = wide + 5;
            print(x & 0xff);
            print(x);
            return 0;
        }
        """
        program, result = _analyse(source)
        add = _instruction(program, "main", Opcode.ADD)
        # x is also printed in full, so the add may not be narrowed.
        assert result.width_of(add.uid) is Width.QUAD


class TestWidthAssignmentAndCorrectness:
    def test_widths_never_widen(self):
        source = "int main() { int a; a = 1000000; print(a + a); return 0; }"
        program, result = _analyse(source)
        for inst in program.instructions():
            assert result.width_of(inst.uid) <= inst.width

    def test_apply_widths_preserves_semantics(self):
        source = """
        char data[64];
        int histogram[16];
        int main() {
            int i;
            long total;
            total = 0;
            for (i = 0; i < 64; i = i + 1) { data[i] = (i * 37) & 255; }
            for (i = 0; i < 64; i = i + 1) {
                histogram[data[i] & 15] = histogram[data[i] & 15] + 1;
                total = total + data[i];
            }
            for (i = 0; i < 16; i = i + 1) { print(histogram[i]); }
            print(total);
            return 0;
        }
        """
        program = compile_source(source)
        baseline = Machine(program).run().output
        result = run_vrp(program)
        changed = apply_widths(program, result)
        assert changed > 0
        assert Machine(program).run().output == baseline

    def test_analysis_reports_narrowed_instructions(self):
        source = "char c[4]; int main() { print(c[0] & 7); return 0; }"
        program, result = _analyse(source)
        assert result.narrowed_instructions() > 0
        distribution = result.static_width_distribution()
        assert sum(distribution.values()) == len(result.widths)
