"""Fault-tolerant evaluation runtime: taxonomy, supervision, chaos, fsck.

Covers the resilience substrate end to end: the ``EvaluationError``
taxonomy and its classifier, the deterministic retry policy, the chaos
harness (``REPRO_CHAOS``), ``supervised_map``'s retry/reap/degradation
stages, the engine's partial-failure semantics (``on_error="keep"``),
the simulator's resource budgets, and the store's crash-consistency
machinery (stale-temp reaping, quarantine, fsck).
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import textwrap
import time

import pytest

from repro.experiments.chaos import (
    ChaosInjectedError,
    chaos_blob,
    chaos_probe,
    parse_chaos_spec,
    reset_chaos,
)
from repro.experiments.engine import ExperimentConfig, ExperimentEngine
from repro.experiments.resilience import (
    DEGRADATION_STAGES,
    CorruptEntry,
    EvaluationError,
    ResourceExhausted,
    RetryPolicy,
    SimulationFault,
    TaskTimeout,
    WorkerCrash,
    classify_failure,
    supervised_map,
)
from repro.experiments.store import ResultStore
from repro.experiments.summary import EvaluationSummary
from repro.experiments.sweep import SweepResult, SweepSpec


@pytest.fixture(autouse=True)
def _clean_chaos(monkeypatch):
    monkeypatch.delenv("REPRO_CHAOS", raising=False)
    monkeypatch.delenv("REPRO_CHAOS_STATE", raising=False)
    monkeypatch.delenv("REPRO_TRACE_STORE", raising=False)
    reset_chaos()
    yield
    reset_chaos()


# ----------------------------------------------------------------------
# Taxonomy and classification
# ----------------------------------------------------------------------
class TestTaxonomy:
    def test_transient_flags(self):
        assert WorkerCrash("x").transient
        assert TaskTimeout("x").transient
        assert CorruptEntry("x").transient
        assert not ResourceExhausted("x").transient
        assert not SimulationFault("x").transient

    def test_classify_is_idempotent(self):
        error = WorkerCrash("already classified")
        assert classify_failure(error) is error

    def test_classify_pool_failures_as_worker_crash(self):
        from concurrent.futures.process import BrokenProcessPool

        for raw in (BrokenProcessPool("pool"), EOFError(), BrokenPipeError()):
            wrapped = classify_failure(raw)
            assert isinstance(wrapped, WorkerCrash)
            assert wrapped.transient
            assert wrapped.__cause__ is raw

    def test_classify_chaos_as_worker_crash(self):
        assert isinstance(classify_failure(ChaosInjectedError("boom")), WorkerCrash)

    def test_classify_limit_as_resource_exhausted(self):
        from repro.sim.machine import SimulationLimitExceeded

        wrapped = classify_failure(SimulationLimitExceeded("limit"))
        assert isinstance(wrapped, ResourceExhausted)
        assert not wrapped.transient

    def test_classify_unknown_as_permanent_fault(self):
        wrapped = classify_failure(ValueError("bad input"))
        assert isinstance(wrapped, SimulationFault)
        assert not wrapped.transient

    def test_describe_names_the_kind(self):
        assert TaskTimeout("late").describe() == "TaskTimeout: late"

    def test_stage_order(self):
        assert DEGRADATION_STAGES == (
            "retry-task",
            "replace-worker",
            "fresh-pool",
            "serial",
        )


class TestRetryPolicy:
    def test_jitter_is_deterministic(self):
        policy = RetryPolicy()
        assert policy.delay_for(2, "task-1") == policy.delay_for(2, "task-1")
        assert policy.delay_for(2, "task-1") != policy.delay_for(2, "task-2")

    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(base_delay_s=0.1, max_delay_s=0.3, jitter=0.0)
        assert policy.delay_for(1) == pytest.approx(0.1)
        assert policy.delay_for(2) == pytest.approx(0.2)
        assert policy.delay_for(5) == pytest.approx(0.3)

    def test_should_retry_respects_transience_and_budget(self):
        policy = RetryPolicy(max_attempts=3)
        assert policy.should_retry(1, WorkerCrash("x"))
        assert policy.should_retry(2, WorkerCrash("x"))
        assert not policy.should_retry(3, WorkerCrash("x"))
        assert not policy.should_retry(1, SimulationFault("x"))


# ----------------------------------------------------------------------
# Chaos harness
# ----------------------------------------------------------------------
class TestChaosSpec:
    def test_parse_full_grammar(self):
        config = parse_chaos_spec(
            "42:worker-task=kill,store-save=truncate:7@2,sweep-group=raise:Label"
        )
        assert config.seed == 42
        kill, truncate, injected = config.rules
        assert (kill.point, kill.action) == ("worker-task", "kill")
        assert (truncate.truncate_to, truncate.occurrence) == (7, 2)
        assert injected.label == "Label"

    @pytest.mark.parametrize(
        "spec",
        [
            "noseed",
            "x:worker-task=kill",
            "1:bogus-point=kill",
            "1:worker-task=explode",
            "1:worker-task=kill@0",
            "1:worker-task=sleep:abc",
            "1:worker-task",
        ],
    )
    def test_bad_specs_fail_loudly(self, spec):
        with pytest.raises(ValueError):
            parse_chaos_spec(spec)

    def test_rules_fire_once_at_their_occurrence(self):
        config = parse_chaos_spec("1:worker-task=raise@2")
        assert config.hit("worker-task") is None
        assert config.hit("worker-task") is not None
        assert config.hit("worker-task") is None

    def test_state_dir_claims_across_configs(self, tmp_path):
        # Two configs sharing seed + state dir model a retried fork worker:
        # the second parse must not re-fire the already-claimed rule.
        first = parse_chaos_spec("9:worker-task=kill", state_dir=str(tmp_path))
        assert first.hit("worker-task") is not None
        second = parse_chaos_spec("9:worker-task=kill", state_dir=str(tmp_path))
        assert second.hit("worker-task") is None

    def test_probe_raises_injected_error(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS", "3:worker-task=raise:Boom")
        reset_chaos()
        with pytest.raises(ChaosInjectedError, match="Boom"):
            chaos_probe("worker-task")
        chaos_probe("worker-task")  # one-shot: second hit is a no-op

    def test_blob_truncation(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS", "4:store-save=truncate:3")
        reset_chaos()
        assert chaos_blob("store-save", b"abcdef") == b"abc"
        assert chaos_blob("store-save", b"abcdef") == b"abcdef"  # one-shot

    def test_unarmed_probe_is_noop(self):
        chaos_probe("worker-task")
        assert chaos_blob("store-save", b"payload") == b"payload"


# ----------------------------------------------------------------------
# supervised_map
# ----------------------------------------------------------------------
def _double(value):
    return value * 2


def _fail_on_three(value):
    if value == 3:
        raise ValueError("three is right out")
    return value


def _flaky(value, marker_dir):
    # Transient failure: raise only the first time each task runs.
    marker = os.path.join(marker_dir, f"ran-{value}")
    if not os.path.exists(marker):
        with open(marker, "w"):
            pass
        raise ChaosInjectedError(f"first attempt of {value}")
    return value * 10


def _die_once(value, marker_dir):
    # SIGKILL the worker on the first run of task 0 only.
    if value == 0:
        marker = os.path.join(marker_dir, "killed")
        try:
            fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            pass
        else:
            os.close(fd)
            os.kill(os.getpid(), signal.SIGKILL)
    return value + 100


def _sleepy(value, seconds):
    time.sleep(seconds)
    return value


class TestSupervisedMap:
    def test_serial_shortcut(self):
        outcomes = supervised_map(_double, [(1,), (2,), (3,)], worker_count=1)
        assert [o.value for o in outcomes] == [2, 4, 6]
        assert all(o.stage == "serial" for o in outcomes)

    def test_permanent_failure_lands_in_outcome_not_raise(self):
        outcomes = supervised_map(_fail_on_three, [(1,), (3,)], worker_count=1)
        assert outcomes[0].ok and outcomes[0].value == 1
        assert not outcomes[1].ok
        assert isinstance(outcomes[1].error, SimulationFault)

    def test_transient_failures_are_retried(self, tmp_path, caplog):
        fast = RetryPolicy(base_delay_s=0.001, max_delay_s=0.01)
        with caplog.at_level("WARNING", logger="repro.experiments.resilience"):
            outcomes = supervised_map(
                _flaky,
                [(value, str(tmp_path)) for value in range(3)],
                worker_count=2,
                retry=fast,
            )
        assert [o.value for o in outcomes] == [0, 10, 20]
        assert all(o.attempts == 2 for o in outcomes)
        assert any("'retry-task'" in line for line in caplog.messages)

    def test_sigkilled_worker_recovers_via_replace_worker(self, tmp_path, caplog):
        fast = RetryPolicy(base_delay_s=0.001, max_delay_s=0.01)
        with caplog.at_level("WARNING", logger="repro.experiments.resilience"):
            outcomes = supervised_map(
                _die_once,
                [(value, str(tmp_path)) for value in range(4)],
                worker_count=2,
                retry=fast,
            )
        assert [o.value for o in outcomes] == [100, 101, 102, 103]
        assert any("'replace-worker'" in line for line in caplog.messages)

    def test_on_result_sees_every_success(self):
        arrived = []
        supervised_map(
            _double,
            [(value,) for value in range(4)],
            worker_count=2,
            on_result=lambda index, value: arrived.append((index, value)),
        )
        assert sorted(arrived) == [(0, 0), (1, 2), (2, 4), (3, 6)]

    def test_deadline_reaps_hung_workers(self, caplog):
        fast = RetryPolicy(max_attempts=1, base_delay_s=0.001, max_delay_s=0.01)
        with caplog.at_level("WARNING", logger="repro.experiments.resilience"):
            outcomes = supervised_map(
                _sleepy,
                [(0, 30.0), (1, 30.0)],
                worker_count=2,
                task_timeout_s=0.5,
                retry=fast,
            )
        assert all(not o.ok for o in outcomes)
        assert all(
            isinstance(o.error, (TaskTimeout, WorkerCrash)) for o in outcomes
        )
        assert any("deadline" in line for line in caplog.messages)


# ----------------------------------------------------------------------
# Engine integration
# ----------------------------------------------------------------------
class TestEngineResilience:
    def test_pool_creation_failure_logs_stage_and_falls_back(
        self, tmp_path, caplog, monkeypatch
    ):
        # Regression for the silent `return None` fallback: pool
        # unavailability must be named in the logs, not swallowed.
        import repro.experiments.resilience as resilience

        def broken_map(*args, **kwargs):
            raise OSError("no process spawning in this sandbox")

        monkeypatch.setattr("repro.experiments.engine.supervised_map", broken_map)
        engine = ExperimentEngine(store=ResultStore(tmp_path / "store"), jobs=2)
        configs = [
            ExperimentConfig(workload="li"),
            ExperimentConfig(workload="li", mechanism="vrp"),
        ]
        with caplog.at_level("WARNING", logger="repro.experiments.engine"):
            evaluations = engine.map(configs)
        assert len(evaluations) == 2
        assert all(e.summary is not None for e in evaluations)
        fallback_lines = [
            line
            for line in caplog.messages
            if "process-pool fan-out unavailable" in line
        ]
        assert fallback_lines, "pool failure fell back silently"
        assert "OSError" in fallback_lines[0]
        assert "'serial'" in fallback_lines[0]

    def test_map_on_error_keep_returns_failure_evaluations(self, tmp_path, caplog):
        engine = ExperimentEngine(store=ResultStore(tmp_path / "store"), jobs=1)
        bad = ExperimentConfig(workload="li", mechanism="not-a-mechanism")
        good = ExperimentConfig(workload="li")
        with caplog.at_level("WARNING", logger="repro.experiments.engine"):
            evaluations = engine.map([bad, good], on_error="keep")
        assert evaluations[0].summary.failed
        assert evaluations[0].summary.failure["kind"] == "SimulationFault"
        assert not evaluations[1].summary.failed
        # The failed point is never memoized or persisted.
        assert engine.store.load(engine.key_for(bad)) is None

    def test_map_on_error_raise_propagates_classified_error(self, tmp_path):
        engine = ExperimentEngine(store=ResultStore(tmp_path / "store"), jobs=1)
        with pytest.raises(EvaluationError):
            engine.map([ExperimentConfig(workload="li", mechanism="not-a-mechanism")])

    def test_evaluate_on_error_keep(self, tmp_path):
        engine = ExperimentEngine(store=ResultStore(tmp_path / "store"), jobs=1)
        bad = ExperimentConfig(workload="li", mechanism="not-a-mechanism")
        evaluation = engine.evaluate(bad, on_error="keep")
        assert evaluation.summary.failed
        with pytest.raises(EvaluationError):
            engine.evaluate(bad)

    def test_failure_summary_round_trips(self):
        summary = EvaluationSummary.from_failure(
            workload="li",
            mechanism="none",
            threshold_nj=50.0,
            conventional_vrp=False,
            kind="WorkerCrash",
            message="killed",
        )
        restored = EvaluationSummary.from_json_dict(summary.to_json_dict())
        assert restored.failed
        assert restored.failure == {"kind": "WorkerCrash", "message": "killed"}
        healthy = EvaluationSummary.from_json_dict(
            {k: v for k, v in summary.to_json_dict().items() if k != "failure"}
        )
        assert not healthy.failed

    def test_chaos_worker_kill_is_deterministic(self, tmp_path, monkeypatch):
        # The acceptance property: a seeded SIGKILL'd worker is retried
        # and the final summaries are bit-identical to an uninjected run.
        configs = [
            ExperimentConfig(workload="li"),
            ExperimentConfig(workload="ijpeg"),
        ]
        baseline_engine = ExperimentEngine(
            store=ResultStore(tmp_path / "baseline"), jobs=2
        )
        baseline = [
            e.summarize().to_json_dict() for e in baseline_engine.map(configs)
        ]

        state = tmp_path / "chaos-state"
        state.mkdir()
        monkeypatch.setenv("REPRO_CHAOS", "1234:worker-task=kill@1")
        monkeypatch.setenv("REPRO_CHAOS_STATE", str(state))
        reset_chaos()
        injected_engine = ExperimentEngine(
            store=ResultStore(tmp_path / "injected"), jobs=2
        )
        injected = [
            e.summarize().to_json_dict() for e in injected_engine.map(configs)
        ]
        assert injected == baseline
        # The SIGKILL really happened: the one-shot marker was claimed.
        assert list(state.iterdir()), "chaos kill never fired"


# ----------------------------------------------------------------------
# Sweep degradation
# ----------------------------------------------------------------------
class TestSweepResilience:
    def test_chaos_group_failure_yields_error_rows(self, tmp_path, monkeypatch):
        spec = SweepSpec.cartesian(
            workloads=["li", "ijpeg"], policies=["baseline", "software"]
        )
        engine = ExperimentEngine(store=ResultStore(tmp_path / "store"), jobs=1)
        monkeypatch.setenv("REPRO_CHAOS", "5:sweep-group=raise:GroupDown@1")
        reset_chaos()
        result = SweepResult.collect(engine.sweep(spec))
        assert len(result) == len(spec)
        failures = result.failures
        assert failures and len(failures) < len(result.rows)
        assert all(row.source == "error" and row.cycles == 0 for row in failures)
        assert all("GroupDown" in row.error for row in failures)
        # Derived reports skip error rows instead of crashing on zeros.
        assert all(not row.failed for row in result.pareto_frontier())
        savings = result.ed2_savings()
        failed_workloads = {row.workload for row in failures}
        for cell in savings.values():
            assert not failed_workloads & set(cell)

    def test_sweep_on_error_raise(self, tmp_path, monkeypatch):
        spec = SweepSpec.cartesian(workloads=["li"], policies=["baseline"])
        engine = ExperimentEngine(store=ResultStore(tmp_path / "store"), jobs=1)
        monkeypatch.setenv("REPRO_CHAOS", "6:sweep-group=raise@1")
        reset_chaos()
        with pytest.raises(EvaluationError):
            list(engine.sweep(spec, on_error="raise"))

    def test_error_rows_serialize(self, tmp_path, monkeypatch):
        spec = SweepSpec.cartesian(workloads=["li"], policies=["baseline"])
        engine = ExperimentEngine(store=ResultStore(tmp_path / "store"), jobs=1)
        monkeypatch.setenv("REPRO_CHAOS", "7:sweep-group=raise@1")
        reset_chaos()
        result = SweepResult.collect(engine.sweep(spec))
        payload = result.to_json_dict()
        assert all("error" in row for row in payload["rows"])
        assert json.loads(json.dumps(payload)) == payload


# ----------------------------------------------------------------------
# Simulator resource budgets
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def li_program():
    from repro.workloads import workload_by_name

    workload = workload_by_name("li")
    program = workload.build()
    workload.apply_input(program, "ref")
    return program


class TestMachineBudgets:
    def test_wall_time_budget_raises(self, li_program):
        from repro.sim.machine import Machine

        with pytest.raises(ResourceExhausted, match="wall-time budget"):
            Machine(li_program, wall_time_s=1e-9).run()

    def test_trace_byte_budget_raises(self, li_program):
        from repro.sim.machine import Machine

        with pytest.raises(ResourceExhausted, match="trace budget"):
            Machine(li_program, max_trace_bytes=64).run(collect_trace=True)

    @pytest.mark.parametrize("run_kwargs", [{"pipeline": "fused"}, {"dispatch": "fast"}])
    def test_wall_time_budget_covers_other_tiers(self, li_program, run_kwargs):
        from repro.sim.machine import Machine

        with pytest.raises(ResourceExhausted):
            Machine(li_program, wall_time_s=1e-9).run(**run_kwargs)

    def test_generous_budgets_change_nothing(self, li_program):
        from repro.sim.machine import Machine

        base = Machine(li_program).run()
        budgeted = Machine(
            li_program, wall_time_s=300.0, max_trace_bytes=1 << 34
        ).run()
        assert budgeted.instructions == base.instructions
        assert budgeted.output == base.output

    def test_env_default_budgets(self, li_program, monkeypatch):
        from repro.sim.machine import Machine

        monkeypatch.setenv("REPRO_SIM_WALL_TIME_S", "1e-9")
        with pytest.raises(ResourceExhausted):
            Machine(li_program).run()

    def test_budget_failure_classifies_as_permanent(self):
        assert not ResourceExhausted("budget").transient


# ----------------------------------------------------------------------
# Store crash consistency
# ----------------------------------------------------------------------
class TestStoreCrashConsistency:
    def _warm(self, root):
        engine = ExperimentEngine(store=ResultStore(root), jobs=1)
        config = ExperimentConfig(workload="li")
        engine.evaluate(config)
        return engine, config, engine.store

    def test_stale_tmp_reaped_at_open(self, tmp_path):
        _, _, store = self._warm(tmp_path / "store")
        orphan = next(iter(store.generation_root.glob("*"))) / "orphan.json.tmp"
        orphan.write_bytes(b"half-written")
        old = time.time() - 7200
        os.utime(orphan, (old, old))
        fresh = orphan.parent / "fresh.json.tmp"
        fresh.write_bytes(b"live writer")
        ResultStore(tmp_path / "store")
        assert not orphan.exists(), "stale temp survived reopen"
        assert fresh.exists(), "young temp of a live writer was reaped"

    def test_quarantine_preserves_bytes_and_reason(self, tmp_path):
        engine, config, store = self._warm(tmp_path / "store")
        key = engine.key_for(config)
        path = store.path_for(key)
        corrupt = b"{ torn write"
        path.write_bytes(corrupt)
        assert store.load(key) is None
        assert not path.exists()
        quarantined = store.quarantined()
        assert len(quarantined) == 1
        qpath, manifest = quarantined[0]
        assert qpath.read_bytes() == corrupt
        assert manifest["original_path"] == str(path)
        assert "reason" in manifest and manifest["reason"]

    def test_fsck_quarantines_every_corruption_class(self, tmp_path, monkeypatch):
        engine, config, store = self._warm(tmp_path / "store")
        # Class 1: invalid JSON in a summary entry.
        entry = store.path_for(engine.key_for(config))
        entry.write_bytes(b"{ not json")
        # Class 2: decodable JSON, undecodable summary.
        sibling = entry.with_name("0" * 64 + ".json")
        sibling.write_text(json.dumps({"summary": {"bogus": 1}}), encoding="utf-8")
        # Class 3: checksum mismatch (valid payload, silently flipped bit).
        engine2 = ExperimentEngine(store=store, jobs=1)
        vrp = ExperimentConfig(workload="li", mechanism="vrp")
        engine2.evaluate(vrp)
        vrp_path = store.path_for(engine2.key_for(vrp))
        payload = json.loads(vrp_path.read_text(encoding="utf-8"))
        payload["summary"]["timing"]["cycles"] += 1
        vrp_path.write_text(json.dumps(payload), encoding="utf-8")
        # Class 4: truncated trace snapshot.
        trace_path = next(iter(store.trace_generation_root.glob("*/*/*.trace")))
        trace_path.write_bytes(trace_path.read_bytes()[:32])
        # Class 5: orphaned temp file.
        orphan = entry.parent / "orphan.json.tmp"
        orphan.write_bytes(b"dead writer")
        old = time.time() - 7200
        os.utime(orphan, (old, old))

        report = store.fsck()
        assert not report.clean
        reasons = " | ".join(reason for _, reason in report.quarantined)
        assert "invalid JSON" in reasons
        assert "undecodable summary" in reasons
        assert "checksum mismatch" in reasons
        assert "undecodable snapshot" in reasons
        assert report.reaped_tmp >= 1
        assert len(store.quarantined()) == len(report.quarantined)
        # Second pass is clean: everything condemned was moved out.
        assert store.fsck().clean

    def test_fsck_no_repair_only_reports(self, tmp_path):
        engine, config, store = self._warm(tmp_path / "store")
        entry = store.path_for(engine.key_for(config))
        entry.write_bytes(b"{ not json")
        report = store.fsck(repair=False)
        assert not report.clean and not report.repaired
        assert entry.exists(), "--no-repair still moved the file"
        assert not store.quarantined()

    def test_fsync_opt_in(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_STORE_FSYNC", "1")
        engine, config, store = self._warm(tmp_path / "store")
        assert store.load(engine.key_for(config)) is not None

    def test_concurrent_writers_race_cleanly(self, tmp_path):
        # Two processes save the same key simultaneously; both must
        # succeed, the survivor must be readable, and no temp debris may
        # remain.
        import repro

        src_dir = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
        store_root = tmp_path / "store"
        script = textwrap.dedent(
            """
            import sys
            from repro.experiments.store import ResultStore
            from repro.experiments.summary import EvaluationSummary
            from repro.experiments.engine import ExperimentConfig, ExperimentEngine

            engine = ExperimentEngine(store=ResultStore(sys.argv[1]), jobs=1)
            config = ExperimentConfig(workload="li")
            evaluation = engine.evaluate(config)
            key = engine.key_for(config)
            store = engine.store
            for _ in range(50):
                store._save(key, evaluation.summarize())
            print(key)
            """
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
        env.pop("REPRO_TRACE_STORE", None)
        procs = [
            subprocess.Popen(
                [sys.executable, "-c", script, str(store_root)],
                stdout=subprocess.PIPE,
                stderr=subprocess.PIPE,
                env=env,
                text=True,
            )
            for _ in range(2)
        ]
        keys = set()
        for proc in procs:
            out, err = proc.communicate(timeout=300)
            assert proc.returncode == 0, err
            keys.add(out.strip())
        assert len(keys) == 1
        (key,) = keys
        store = ResultStore(store_root)
        assert store.load(key) is not None
        debris = list(store_root.glob("**/*.tmp"))
        assert not debris, f"temp debris left behind: {debris}"
        assert store.fsck().clean


# ----------------------------------------------------------------------
# Chaos-driven store faults
# ----------------------------------------------------------------------
class TestChaosStoreFaults:
    def test_truncated_publish_is_caught_by_fsck(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS", "11:store-save=truncate@1")
        reset_chaos()
        engine = ExperimentEngine(store=ResultStore(tmp_path / "store"), jobs=1)
        engine.evaluate(ExperimentConfig(workload="li"))
        monkeypatch.delenv("REPRO_CHAOS")
        reset_chaos()
        report = engine.store.fsck()
        assert not report.clean
        assert any(
            "invalid JSON" in reason or "checksum mismatch" in reason
            for _, reason in report.quarantined
        )
        # After quarantine the engine recomputes transparently.
        fresh = ExperimentEngine(store=ResultStore(tmp_path / "store"), jobs=1)
        evaluation = fresh.evaluate(ExperimentConfig(workload="li"))
        assert evaluation.summary is not None

    def test_truncated_trace_publish_is_caught_by_fsck(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS", "12:store-save-trace=truncate@1")
        reset_chaos()
        engine = ExperimentEngine(store=ResultStore(tmp_path / "store"), jobs=1)
        engine.evaluate(ExperimentConfig(workload="li"))
        monkeypatch.delenv("REPRO_CHAOS")
        reset_chaos()
        report = engine.store.fsck()
        assert any("undecodable snapshot" in reason for _, reason in report.quarantined)
