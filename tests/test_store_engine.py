"""Tests for the persistent result store and the parallel experiment engine."""

import json
import os
import subprocess
import sys
import textwrap

import pytest

from repro.experiments import (
    EvaluationSummary,
    ExperimentConfig,
    ExperimentEngine,
    POLICY_NAMES,
    ResultStore,
    config_key,
)
from repro.uarch import MachineConfig
from repro.workloads import Workload

# A deliberately small mini-C workload so store/engine mechanics can be
# exercised in milliseconds instead of re-simulating a suite benchmark.
TINY_SOURCE = """
int job_size;
int data[16];

int main() {
    int i;
    long acc;
    acc = 0;
    for (i = 0; i < job_size; i = i + 1) {
        acc = acc + data[i & 15];
    }
    print(acc);
    return 0;
}
"""


def make_tiny(source: str = TINY_SOURCE) -> Workload:
    return Workload(
        name="tiny",
        description="16-element accumulation loop",
        source=source,
        train_data={"job_size": (8,), "data": tuple(range(16))},
        ref_data={"job_size": (40,), "data": tuple(range(100, 116))},
    )


@pytest.fixture
def store(tmp_path, monkeypatch):
    # The clear()/snapshot assertions assume the trace-snapshot layer is
    # active; shield the suite from a developer's REPRO_TRACE_STORE=off.
    monkeypatch.delenv("REPRO_TRACE_STORE", raising=False)
    return ResultStore(tmp_path / "store")


class TestConfigKey:
    def test_key_is_stable(self):
        workload = make_tiny()
        assert config_key(workload, "none", 50.0, False) == config_key(
            workload, "none", 50.0, False
        )

    def test_key_perturbation(self):
        """Every ingredient of the key changes the hash."""
        workload = make_tiny()
        base = config_key(workload, "none", 50.0, False)
        perturbed = {
            "mechanism": config_key(workload, "vrp", 50.0, False),
            "threshold": config_key(workload, "vrs", 30.0, False),
            "conventional": config_key(workload, "vrp", 50.0, True),
            "machine": config_key(workload, "none", 50.0, False, MachineConfig(issue_width=8)),
            "source": config_key(
                make_tiny(TINY_SOURCE.replace("i & 15", "i & 7")), "none", 50.0, False
            ),
        }
        keys = [base, *perturbed.values()]
        assert len(set(keys)) == len(keys), perturbed

    def test_input_data_changes_key(self):
        workload = make_tiny()
        modified = make_tiny()
        modified.ref_data = dict(modified.ref_data, job_size=(41,))
        assert workload.content_hash() != modified.content_hash()
        assert config_key(workload, "none", 50.0, False) != config_key(
            modified, "none", 50.0, False
        )


class TestResultStore:
    def test_miss_then_hit_across_engines(self, store):
        workload = make_tiny()
        config = ExperimentConfig(workload="tiny")
        first_engine = ExperimentEngine(store=store, jobs=1)
        live = first_engine.evaluate(config, workload=workload)
        assert not live.is_restored

        # A fresh engine models a fresh process: no memo, only the disk.
        second_engine = ExperimentEngine(store=store, jobs=1)
        restored = second_engine.evaluate(config, workload=workload)
        assert restored.is_restored
        assert restored.timing.cycles == live.timing.cycles
        assert restored.total_dynamic_instructions == live.total_dynamic_instructions
        assert restored.dynamic_width_distribution() == live.dynamic_width_distribution()
        assert restored.counted_width_counts() == live.counted_width_counts()
        assert restored.result_size_histogram() == live.result_size_histogram()
        for policy in POLICY_NAMES:
            assert (
                restored.outcome(policy).energy.by_structure
                == live.outcome(policy).energy.by_structure
            )

    def test_summary_round_trips_through_json(self, store):
        workload = make_tiny()
        engine = ExperimentEngine(store=store, jobs=1)
        live = engine.evaluate(ExperimentConfig(workload="tiny"), workload=workload)
        summary = live.summarize()
        rebuilt = EvaluationSummary.from_json_dict(
            json.loads(json.dumps(summary.to_json_dict()))
        )
        assert rebuilt.to_json_dict() == summary.to_json_dict()

    def test_vrp_statistics_identical_live_and_restored(self, store):
        workload = make_tiny()
        config = ExperimentConfig(workload="tiny", mechanism="vrp")
        live = ExperimentEngine(store=store, jobs=1).evaluate(config, workload=workload)
        restored = ExperimentEngine(store=store, jobs=1).evaluate(config, workload=workload)
        assert restored.is_restored
        # Observational equivalence includes key types: the static width
        # distribution is keyed by int bit counts on both paths.
        assert restored.vrp_statistics() == live.vrp_statistics()

    def test_corrupted_entry_is_recovered(self, store):
        workload = make_tiny()
        config = ExperimentConfig(workload="tiny")
        engine = ExperimentEngine(store=store, jobs=1)
        engine.evaluate(config, workload=workload)
        key = engine.key_for(config, workload)
        path = store.path_for(key)
        assert path.exists()
        path.write_text("{ truncated garbage", encoding="utf-8")

        assert store.load(key) is None
        assert not path.exists()  # the bad entry was evicted

        recovered_engine = ExperimentEngine(store=store, jobs=1)
        recovered = recovered_engine.evaluate(config, workload=workload)
        # The summary was rebuilt — replayed from the binary trace
        # snapshot when one survived (zero simulator steps), recomputed
        # otherwise — and re-persisted either way.
        assert recovered.replayed_from_store or recovered.freshly_computed
        assert path.exists()

    def test_stale_generations_pruned_on_save(self, store):
        stale = store.root / "deadbeef0000" / "ab"
        stale.mkdir(parents=True)
        (stale / "old.json").write_text("{}")
        # Unrelated user data in the same root must never be touched.
        precious = store.root / "my-precious-data"
        precious.mkdir(parents=True)
        (precious / "notes.txt").write_text("keep me")
        engine = ExperimentEngine(store=store, jobs=1)
        engine.evaluate(ExperimentConfig(workload="tiny"), workload=make_tiny())
        assert not (store.root / "deadbeef0000").exists()
        assert (precious / "notes.txt").read_text() == "keep me"
        assert len(store.entries()) == 1
        store.clear()
        assert (precious / "notes.txt").exists()

    def test_entries_and_clear(self, store):
        workload = make_tiny()
        engine = ExperimentEngine(store=store, jobs=1)
        engine.evaluate(ExperimentConfig(workload="tiny"), workload=workload)
        engine.evaluate(ExperimentConfig(workload="tiny", mechanism="vrp"), workload=workload)
        entries = store.entries()
        assert len(entries) == 2
        assert {entry.workload for entry in entries} == {"tiny"}
        assert {entry.mechanism for entry in entries} == {"none", "vrp"}
        # clear() counts summary entries and binary trace snapshots alike:
        # each cold evaluation persisted one of each.
        assert store.clear() == 4
        assert store.entries() == []
        assert not (store.root / "traces").exists() or not any(
            (store.root / "traces").iterdir()
        )

    def test_unwritable_store_does_not_lose_the_result(self, tmp_path):
        # Root is a *file*, so every mkdir/write under it fails with OSError.
        blocked = tmp_path / "blocked"
        blocked.write_text("not a directory")
        engine = ExperimentEngine(store=ResultStore(blocked), jobs=1)
        evaluation = engine.evaluate(ExperimentConfig(workload="tiny"), workload=make_tiny())
        assert evaluation.timing.cycles > 0  # computed fine, persistence skipped

    def test_disabled_store_still_computes(self, monkeypatch):
        monkeypatch.setenv("REPRO_RESULT_STORE", "off")
        disabled = ResultStore()
        assert not disabled.enabled
        assert disabled.entries() == []
        assert disabled.clear() == 0
        engine = ExperimentEngine(store=disabled, jobs=1)
        evaluation = engine.evaluate(ExperimentConfig(workload="tiny"), workload=make_tiny())
        assert not evaluation.is_restored
        assert evaluation.timing.cycles > 0


class TestKeyValidation:
    """Path builders refuse anything that is not a hex content hash, so a
    hostile key (path traversal from the service's result endpoint) can
    never resolve — let alone quarantine — a file outside the store."""

    def test_path_builders_reject_malformed_keys(self, store):
        bad_keys = (
            "../../../../etc/hostname",
            "..",
            "a/b" + "0" * 62,
            "0" * 8,  # too short to be any content hash
            "G" * 64,  # not hex
            ("0" * 63) + "Z",
        )
        for bad in bad_keys:
            with pytest.raises(ValueError):
                store.path_for(bad)
            with pytest.raises(ValueError):
                store.trace_path_for(bad)
            with pytest.raises(ValueError):
                store.lock_path_for(bad)

    def test_real_keys_still_resolve(self, store):
        key = config_key(make_tiny(), "none", 50.0, False)
        assert store.path_for(key).name == f"{key}.json"


class TestLegacyLayoutMigration:
    """Single-level-shard files written by earlier revisions are swept
    into the two-level layout instead of becoming invisible orphans."""

    def test_open_migrates_legacy_entries(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE_STORE", raising=False)
        root = tmp_path / "store"
        store = ResultStore(root)
        workload = make_tiny()
        engine = ExperimentEngine(store=store, jobs=1)
        config = ExperimentConfig(workload="tiny")
        engine.evaluate(config, workload=workload)
        key = engine.key_for(config, workload)
        sharded = store.path_for(key)
        legacy = store.generation_root / key[:2] / f"{key}.json"
        os.replace(sharded, legacy)
        assert store.load(key) is None  # invisible at the legacy depth

        reopened = ResultStore(root)
        assert not legacy.exists()
        assert sharded.exists()
        assert reopened.load(key) is not None
        assert [entry.key for entry in reopened.entries()] == [key]

    def test_fsck_migrates_legacy_traces_and_entries(self, store):
        workload = make_tiny()
        engine = ExperimentEngine(store=store, jobs=1)
        config = ExperimentConfig(workload="tiny")
        engine.evaluate(config, workload=workload, pipeline="materialized")
        key = engine.key_for(config, workload)
        entry = store.path_for(key)
        os.replace(entry, store.generation_root / key[:2] / f"{key}.json")
        traces = list(store.trace_generation_root.glob("*/*/*.trace"))
        assert traces
        trace = traces[0]
        trace_key = trace.stem
        os.replace(
            trace, store.trace_generation_root / trace_key[:2] / f"{trace_key}.trace"
        )

        report = store.fsck()
        assert report.migrated == 2
        assert report.clean
        assert report.scanned_entries == 1
        assert report.scanned_traces >= 1
        assert entry.exists()
        assert trace.exists()


class TestEngine:
    def test_memo_returns_same_object(self, store):
        engine = ExperimentEngine(store=store, jobs=1)
        workload = make_tiny()
        config = ExperimentConfig(workload="tiny")
        assert engine.evaluate(config, workload=workload) is engine.evaluate(
            config, workload=workload
        )

    def test_map_preserves_order_and_mixes_hits(self, store):
        engine = ExperimentEngine(store=store, jobs=1)
        tiny = make_tiny()
        warm = engine.evaluate(ExperimentConfig(workload="tiny"), workload=tiny)
        # 'tiny' is not in the registry, so map() is driven by suite names.
        configs = [
            ExperimentConfig(workload="li"),
            ExperimentConfig(workload="ijpeg"),
        ]
        results = engine.map(configs)
        assert [evaluation.workload.name for evaluation in results] == ["li", "ijpeg"]
        assert warm is engine.evaluate(ExperimentConfig(workload="tiny"), workload=tiny)

    def test_map_deduplicates_identical_configs(self, store):
        engine = ExperimentEngine(store=store, jobs=1)
        results = engine.map([ExperimentConfig(workload="li"), ExperimentConfig(workload="li")])
        assert results[0] is results[1]
        assert len(store.entries()) == 1

    def test_parallel_and_serial_summaries_are_identical(self, tmp_path):
        """Pool-computed evaluations are observationally equal to serial ones.

        Two distinct cold configs are required: with a single config,
        ``map()`` clamps the worker count to 1 and takes the serial
        fallback, never exercising the pool.
        """
        configs = [ExperimentConfig(workload="li"), ExperimentConfig(workload="ijpeg")]

        serial_engine = ExperimentEngine(store=ResultStore(tmp_path / "serial"), jobs=1)
        serial = [serial_engine.evaluate(config) for config in configs]
        assert not any(evaluation.is_restored for evaluation in serial)

        parallel_engine = ExperimentEngine(store=ResultStore(tmp_path / "parallel"), jobs=2)
        parallel = parallel_engine.map(configs, jobs=2)

        for serial_evaluation, parallel_evaluation in zip(serial, parallel):
            assert (
                parallel_evaluation.summarize().to_json_dict()
                == serial_evaluation.summarize().to_json_dict()
            )


def test_fresh_process_is_served_without_simulation(tmp_path):
    """End-to-end zero-rerun check on the tiny workload: a second process
    resolves the same configuration purely from the store."""
    import repro

    src_dir = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env = dict(os.environ)
    env["REPRO_RESULT_STORE"] = str(tmp_path / "store")
    env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")

    prologue = textwrap.dedent(
        f"""
        import json
        from repro.experiments import ExperimentConfig, default_engine
        from repro.workloads import Workload

        workload = Workload(
            name="tiny",
            description="16-element accumulation loop",
            source={TINY_SOURCE!r},
            train_data={{"job_size": (8,), "data": tuple(range(16))}},
            ref_data={{"job_size": (40,), "data": tuple(range(100, 116))}},
        )
        """
    )
    warm_script = prologue + textwrap.dedent(
        """
        evaluation = default_engine().evaluate(ExperimentConfig(workload="tiny"), workload=workload)
        print(json.dumps([evaluation.is_restored, evaluation.timing.cycles]))
        """
    )
    served_script = (
        textwrap.dedent(
            """
        from repro.sim.machine import Machine
        def _forbidden(self, *args, **kwargs):
            raise AssertionError("Machine.run called despite a warm result store")
        Machine.run = _forbidden
        """
        )
        + prologue
        + textwrap.dedent(
            """
        evaluation = default_engine().evaluate(ExperimentConfig(workload="tiny"), workload=workload)
        print(json.dumps([evaluation.is_restored, evaluation.timing.cycles]))
        """
        )
    )

    warm = subprocess.run(
        [sys.executable, "-c", warm_script], env=env, capture_output=True, text=True, timeout=300
    )
    assert warm.returncode == 0, warm.stderr
    warm_restored, warm_cycles = json.loads(warm.stdout.strip().splitlines()[-1])
    assert warm_restored is False

    served = subprocess.run(
        [sys.executable, "-c", served_script], env=env, capture_output=True, text=True, timeout=300
    )
    assert served.returncode == 0, served.stderr
    served_restored, served_cycles = json.loads(served.stdout.strip().splitlines()[-1])
    assert served_restored is True
    assert served_cycles == warm_cycles


# ----------------------------------------------------------------------
# CLI: the profile subcommand
# ----------------------------------------------------------------------
def test_cli_profile_prints_cumulative_top(capsys):
    """`python -m repro.experiments profile` runs one workload under
    cProfile and prints a cumulative-time ranking (the before/after
    evidence future performance PRs cite)."""
    from repro.experiments.__main__ import main

    assert main(["profile", "--workload", "ijpeg", "--top", "5"]) == 0
    out = capsys.readouterr().out
    assert "profile: workload=ijpeg" in out
    assert "dynamic instructions" in out
    assert "cumulative" in out  # pstats ordering header
    assert "compute_evaluation" in out


def test_cli_profile_rejects_unknown_workload(capsys):
    from repro.experiments.__main__ import main

    assert main(["profile", "--workload", "nosuch"]) == 2
    assert "unknown workload" in capsys.readouterr().err
