"""Tests for opcodes, registers and the Instruction container."""

import pytest

from repro.isa import (
    Imm,
    Instruction,
    OpKind,
    Opcode,
    Reg,
    Width,
    ZERO,
    narrowest_available_width,
    op_info,
    parse_register,
)
from repro.isa.semantics import evaluate_operation


class TestRegisters:
    def test_names(self):
        assert Reg(31).name == "zero"
        assert Reg(30).name == "sp"
        assert Reg(7).name == "r7"

    def test_parse_aliases(self):
        assert parse_register("sp") == Reg(30)
        assert parse_register("a0") == Reg(16)
        assert parse_register("r12") == Reg(12)

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_register("x99")

    def test_out_of_range_index(self):
        with pytest.raises(ValueError):
            Reg(32)


class TestOpcodeCatalogue:
    def test_every_opcode_has_info(self):
        for op in Opcode:
            info = op_info(op)
            assert info.functional_unit in ("ialu", "imul", "mem", "branch")

    def test_width_variants_follow_section_4_3(self):
        assert Width.HALF in op_info(Opcode.ADD).width_variants
        assert Width.HALF not in op_info(Opcode.SUB).width_variants
        assert Width.BYTE not in op_info(Opcode.MUL).width_variants

    def test_narrowest_available_width(self):
        assert narrowest_available_width(Opcode.ADD, Width.BYTE) is Width.BYTE
        # SUB has no 16-bit variant: a 16-bit requirement rounds up to 32.
        assert narrowest_available_width(Opcode.SUB, Width.HALF) is Width.WORD
        assert narrowest_available_width(Opcode.MUL, Width.BYTE) is Width.WORD


class TestInstruction:
    def test_defs_and_uses(self):
        inst = Instruction(Opcode.ADD, Reg(1), (Reg(2), Imm(3)))
        assert inst.defs() == (Reg(1),)
        assert inst.uses() == (Reg(2),)

    def test_zero_destination_is_not_a_def(self):
        inst = Instruction(Opcode.ADD, ZERO, (Reg(2), Reg(3)))
        assert inst.defs() == ()

    def test_cmov_reads_its_destination(self):
        inst = Instruction(Opcode.CMOVEQ, Reg(1), (Reg(2), Reg(3)))
        assert Reg(1) in inst.uses()

    def test_store_shape_enforced(self):
        with pytest.raises(ValueError):
            Instruction(Opcode.STQ, Reg(1), (Reg(2), Reg(3), Imm(0)))

    def test_memory_width(self):
        assert Instruction(Opcode.LDB, Reg(1), (Reg(2), Imm(0))).memory_width is Width.BYTE
        assert Instruction(Opcode.STW, None, (Reg(1), Reg(2), Imm(0))).memory_width is Width.WORD

    def test_clone_gets_new_uid_and_origin(self):
        inst = Instruction(Opcode.ADD, Reg(1), (Reg(2), Imm(3)))
        copy = inst.clone()
        assert copy.uid != inst.uid
        assert copy.origin == inst.uid
        grandchild = copy.clone()
        assert grandchild.origin == inst.uid

    def test_str_contains_width_suffix(self):
        inst = Instruction(Opcode.ADD, Reg(1), (Reg(2), Imm(3)), width=Width.BYTE)
        assert "add.8" in str(inst)


class TestSemantics:
    def test_add_wraps_at_width(self):
        assert evaluate_operation(Opcode.ADD, Width.BYTE, [120, 10]) == -126
        assert evaluate_operation(Opcode.ADD, Width.QUAD, [120, 10]) == 130

    def test_logical_and_shift(self):
        assert evaluate_operation(Opcode.AND, Width.QUAD, [0xF0F, 0xFF]) == 0x0F
        assert evaluate_operation(Opcode.SRL, Width.QUAD, [-1, 56]) == 0xFF
        assert evaluate_operation(Opcode.SRA, Width.QUAD, [-8, 1]) == -4

    def test_compares(self):
        assert evaluate_operation(Opcode.CMPLT, Width.QUAD, [-1, 0]) == 1
        assert evaluate_operation(Opcode.CMPULT, Width.QUAD, [-1, 0]) == 0

    def test_masks(self):
        assert evaluate_operation(Opcode.MSKB, Width.QUAD, [-1]) == 255
        assert evaluate_operation(Opcode.SEXTB, Width.QUAD, [255]) == -1

    def test_non_pure_opcodes_return_none(self):
        assert evaluate_operation(Opcode.LDQ, Width.QUAD, [0, 0]) is None
