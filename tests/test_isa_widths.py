"""Unit and property tests for the width/number helpers of the ISA."""

from hypothesis import given
from hypothesis import strategies as st

from repro.isa import (
    INT64_MAX,
    INT64_MIN,
    Width,
    significant_bytes,
    size_class_bytes,
    to_signed,
    to_unsigned,
    width_for_signed_range,
    width_for_value,
    wrap_to_width,
)

int64 = st.integers(min_value=INT64_MIN, max_value=INT64_MAX)


class TestWidth:
    def test_ordering_and_bytes(self):
        assert Width.BYTE < Width.HALF < Width.WORD < Width.QUAD
        assert [w.bytes for w in Width.all_widths()] == [1, 2, 4, 8]

    def test_signed_bounds(self):
        assert Width.BYTE.min_signed() == -128
        assert Width.BYTE.max_signed() == 127
        assert Width.QUAD.max_signed() == INT64_MAX

    def test_next_wider_saturates(self):
        assert Width.BYTE.next_wider() is Width.HALF
        assert Width.QUAD.next_wider() is Width.QUAD


class TestWidthForRange:
    def test_byte_range(self):
        assert width_for_signed_range(-128, 127) is Width.BYTE

    def test_unsigned_byte_needs_half(self):
        # 255 does not fit a signed byte: 2's-complement convention (§2.4).
        assert width_for_signed_range(0, 255) is Width.HALF

    def test_word_and_quad(self):
        assert width_for_value(2**31 - 1) is Width.WORD
        assert width_for_value(2**31) is Width.QUAD

    def test_empty_range_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            width_for_signed_range(3, 2)

    @given(int64)
    def test_value_always_fits_its_width(self, value):
        width = width_for_value(value)
        assert width.contains_signed(value)


class TestWrapAndConversion:
    @given(int64)
    def test_signed_unsigned_roundtrip(self, value):
        assert to_signed(to_unsigned(value)) == value

    @given(int64)
    def test_wrap_to_quad_is_identity(self, value):
        assert wrap_to_width(value, Width.QUAD) == value

    @given(st.integers(min_value=-(10**30), max_value=10**30))
    def test_wrap_stays_in_width(self, value):
        for width in Width.all_widths():
            wrapped = wrap_to_width(value, width)
            assert width.contains_signed(wrapped)

    def test_wrap_examples(self):
        assert wrap_to_width(128, Width.BYTE) == -128
        assert wrap_to_width(-129, Width.BYTE) == 127
        assert wrap_to_width(0xFFFF, Width.HALF) == -1


class TestSignificantBytes:
    def test_small_values(self):
        assert significant_bytes(0) == 1
        assert significant_bytes(127) == 1
        assert significant_bytes(-1) == 1
        assert significant_bytes(128) == 2
        assert significant_bytes(-129) == 2

    def test_wide_values(self):
        assert significant_bytes(2**31) == 5
        assert significant_bytes(2**40) == 6
        assert significant_bytes(INT64_MAX) == 8

    @given(int64)
    def test_sign_extension_recovers_value(self, value):
        nbytes = significant_bytes(value)
        bits = nbytes * 8
        low = value & ((1 << bits) - 1)
        recovered = low - (1 << bits) if low >> (bits - 1) else low
        assert recovered == value

    @given(int64)
    def test_size_class_covers_significant_bytes(self, value):
        assert size_class_bytes(value) >= significant_bytes(value)
        assert size_class_bytes(value) in (1, 2, 5, 8)
