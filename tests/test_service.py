"""Tests for the evaluation service: HTTP API, dedup, drain, CLI purity.

The expensive tests share one module-scoped live server (a real
subprocess of ``python -m repro.experiments serve``) with its own store
root and a simulation probe directory — every live simulator run drops
one marker file, so "N identical submissions cost one simulation" is
asserted by counting files, not by trusting flags.
"""

from __future__ import annotations

import asyncio
import http.client
import json
import os
import signal
import subprocess
import sys
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.service import Job, JobQueue, ServiceClient, ServiceClientError, new_job_id
from repro.service.server import EvaluationService, ServiceError

SRC_DIR = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")


def _make_job(priority: int = 0, dedup: str = "d") -> Job:
    return Job(id=new_job_id(), kind="run", request={}, dedup_key=dedup, priority=priority)


class TestJobQueue:
    def test_priority_order_fifo_within_priority(self):
        async def run_all():
            queue = JobQueue()
            low1 = _make_job(priority=0)
            high = _make_job(priority=5)
            low2 = _make_job(priority=0)
            for job in (low1, high, low2):
                await queue.put(job)
            drained = [await queue.get() for _ in range(3)]
            return (low1, high, low2), drained

        (low1, high, low2), drained = asyncio.run(run_all())
        assert [job.id for job in drained] == [high.id, low1.id, low2.id]

    def test_close_drains_then_returns_none(self):
        async def scenario():
            queue = JobQueue()
            await queue.put(_make_job())
            await queue.close()
            first = await queue.get()
            second = await queue.get()
            with pytest.raises(RuntimeError):
                await queue.put(_make_job())
            return first, second

        first, second = asyncio.run(scenario())
        assert first is not None
        assert second is None

    def test_drain_now_empties_synchronously(self):
        async def scenario():
            queue = JobQueue()
            jobs = [_make_job(priority=i) for i in range(3)]
            for job in jobs:
                await queue.put(job)
            dropped = queue.drain_now()
            await queue.close()
            return jobs, dropped, await queue.get()

        jobs, dropped, leftover = asyncio.run(scenario())
        assert {job.id for job in dropped} == {job.id for job in jobs}
        assert leftover is None


class TestSubmitValidation:
    """Request validation and the draining gate, without a socket."""

    def _submit(self, service: EvaluationService, payload: dict):
        return asyncio.run(service._submit(payload))

    @pytest.fixture
    def service(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULT_STORE", str(tmp_path / "store"))
        return EvaluationService(workers=1)

    def test_unknown_workload_is_400(self, service):
        with pytest.raises(ServiceError) as excinfo:
            self._submit(service, {"kind": "run", "workloads": ["nope"]})
        assert excinfo.value.status == 400

    def test_unknown_policy_is_400(self, service):
        with pytest.raises(ServiceError) as excinfo:
            self._submit(service, {"workloads": ["li"], "policies": ["nope"]})
        assert excinfo.value.status == 400

    def test_unknown_kind_is_400(self, service):
        with pytest.raises(ServiceError) as excinfo:
            self._submit(service, {"kind": "shrug"})
        assert excinfo.value.status == 400

    def test_unknown_sweep_config_is_400(self, service):
        with pytest.raises(ServiceError) as excinfo:
            self._submit(service, {"kind": "sweep", "workloads": ["li"], "configs": ["nope"]})
        assert excinfo.value.status == 400

    def test_draining_is_503(self, service):
        service.draining = True
        with pytest.raises(ServiceError) as excinfo:
            self._submit(service, {"workloads": ["li"]})
        assert excinfo.value.status == 503

    def test_identical_requests_share_a_dedup_key(self, service):
        job_a = service._build_run_job({"workloads": ["li"], "mechanism": "vrp"})
        job_b = service._build_run_job({"workloads": ["li"], "mechanism": "vrp"})
        job_c = service._build_run_job(
            {"workloads": ["li"], "mechanism": "vrp", "threshold_nj": 75.0}
        )
        assert job_a.dedup_key == job_b.dedup_key
        assert job_a.dedup_key != job_c.dedup_key


# ----------------------------------------------------------------------
# Live server fixture
# ----------------------------------------------------------------------
def _boot_server(store_root, probe_dir, workers=2):
    env = dict(
        os.environ,
        PYTHONPATH=SRC_DIR,
        REPRO_RESULT_STORE=str(store_root),
        REPRO_TRACE_STORE="off",
        REPRO_SIM_PROBE_DIR=str(probe_dir),
        REPRO_JOBS="1",
    )
    env.pop("REPRO_CHAOS", None)
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.experiments",
            "serve",
            "--port",
            "0",
            "--workers",
            str(workers),
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )
    ready = json.loads(proc.stdout.readline())
    assert ready["event"] == "ready"
    return proc, ready


@pytest.fixture(scope="module")
def live_server(tmp_path_factory):
    base = tmp_path_factory.mktemp("service")
    probe_dir = base / "probes"
    proc, ready = _boot_server(base / "store", probe_dir)
    client = ServiceClient("127.0.0.1", ready["port"], timeout=120)
    yield {"proc": proc, "client": client, "probes": probe_dir, "ready": ready}
    proc.send_signal(signal.SIGTERM)
    out, _err = proc.communicate(timeout=60)
    assert proc.returncode == 0
    assert json.loads(out.strip().splitlines()[-1])["event"] == "drained"


def _probe_count(probe_dir) -> int:
    return len(os.listdir(probe_dir)) if os.path.isdir(probe_dir) else 0


class TestServiceHTTP:
    def test_healthz_and_stats(self, live_server):
        client = live_server["client"]
        health = client.health()
        assert health["status"] == "ok"
        stats = client.stats()
        assert stats["workers"] == 2
        assert stats["store"]["enabled"] is True

    def test_run_job_end_to_end(self, live_server):
        client = live_server["client"]
        before = _probe_count(live_server["probes"])
        submitted = client.submit(
            {
                "kind": "run",
                "workloads": ["li"],
                "mechanism": "vrp",
                "policies": ["baseline", "hw-size"],
            }
        )
        assert submitted["deduplicated"] is False
        record = client.wait(submitted["job"], timeout_s=240)
        assert record["state"] == "done"
        assert len(record["rows"]) == 1
        row = record["rows"][0]
        assert row["workload"] == "li"
        assert set(row["energy_nj"]) == {"baseline", "hw-size"}
        assert row["cycles"] > 0
        # Exactly one live simulation, and its summary is now addressable.
        assert _probe_count(live_server["probes"]) - before == 1
        result = client.result(row["key"])
        assert result["key"] == row["key"]
        assert result["summary"]["failure"] is None

    def test_hundred_identical_submissions_one_simulation(self, live_server):
        client = live_server["client"]
        before = _probe_count(live_server["probes"])
        payload = {
            "kind": "run",
            "workloads": ["li"],
            "mechanism": "vrs",  # cold: nothing else in this module runs vrs
            "policies": ["baseline"],
        }
        with ThreadPoolExecutor(max_workers=32) as pool:
            responses = list(pool.map(lambda _: client.submit(payload), range(100)))
        job_ids = {response["job"] for response in responses}
        records = [client.wait(job_id, timeout_s=240) for job_id in job_ids]
        for record in records:
            assert record["state"] == "done"
        # All 100 submissions observe identical rows...
        rendered = {json.dumps(record["rows"], sort_keys=True) for record in records}
        assert len(rendered) == 1
        # ...and the whole stampede cost exactly one simulator run.
        assert _probe_count(live_server["probes"]) - before == 1
        # Job-level single-flight did real work: the stampede collapsed
        # onto far fewer jobs than submissions.
        assert len(job_ids) < 100
        assert any(response.get("deduplicated") for response in responses)

    def test_event_stream_is_ndjson_and_terminates(self, live_server):
        client = live_server["client"]
        submitted = client.submit(
            {"kind": "run", "workloads": ["li"], "policies": ["baseline"]}
        )
        events = list(client.events(submitted["job"]))
        kinds = [event["event"] for event in events]
        assert kinds[0] == "queued"
        assert kinds[-1] in ("done", "failed")
        assert all(event["job"] == submitted["job"] for event in events)

    def test_sweep_job(self, live_server):
        client = live_server["client"]
        submitted = client.submit(
            {
                "kind": "sweep",
                "workloads": ["li"],
                "configs": ["table2"],
                "policies": ["baseline"],
            }
        )
        record = client.wait(submitted["job"], timeout_s=240)
        assert record["state"] == "done"
        assert len(record["rows"]) == 1
        row = record["rows"][0]
        assert (row["workload"], row["config"], row["policy"]) == (
            "li",
            "table2",
            "baseline",
        )
        assert row["error"] is None

    def test_unknown_job_is_404(self, live_server):
        with pytest.raises(ServiceClientError) as excinfo:
            live_server["client"].job("no-such-job")
        assert excinfo.value.status == 404

    def test_unknown_result_key_is_404(self, live_server):
        with pytest.raises(ServiceClientError) as excinfo:
            live_server["client"].result("0" * 64)
        assert excinfo.value.status == 404

    def test_malformed_result_key_is_400(self, live_server):
        """Result keys are validated before any filesystem lookup.

        Regression: ``GET /v1/results/../../...`` used to be joined into
        a store path, and a traversal target that failed JSON decoding
        was *quarantined* — moved out of its directory — by an
        unauthenticated request.
        """
        client = live_server["client"]
        for bad in (
            "../../../../etc/hostname",
            "..%2f..%2fetc%2fhostname",
            "0" * 8,  # too short to be a content hash
            "Z" * 64,  # not hex
        ):
            with pytest.raises(ServiceClientError) as excinfo:
                client._request("GET", f"/v1/results/{bad}")
            assert excinfo.value.status == 400, bad

    def test_unknown_path_is_404(self, live_server):
        with pytest.raises(ServiceClientError) as excinfo:
            live_server["client"]._request("GET", "/v2/nope")
        assert excinfo.value.status == 404

    def test_get_on_jobs_collection_is_405(self, live_server):
        with pytest.raises(ServiceClientError) as excinfo:
            live_server["client"]._request("GET", "/v1/jobs")
        assert excinfo.value.status == 405

    def test_invalid_json_body_is_400(self, live_server):
        ready = live_server["ready"]
        conn = http.client.HTTPConnection("127.0.0.1", ready["port"], timeout=30)
        try:
            conn.request(
                "POST",
                "/v1/jobs",
                body=b"{not json",
                headers={"Content-Type": "application/json"},
            )
            response = conn.getresponse()
            assert response.status == 400
            assert "error" in json.loads(response.read())
        finally:
            conn.close()

    def test_validation_error_is_400_over_http(self, live_server):
        with pytest.raises(ServiceClientError) as excinfo:
            live_server["client"].submit({"workloads": ["not-a-benchmark"]})
        assert excinfo.value.status == 400
        assert "not-a-benchmark" in excinfo.value.payload["error"]


class TestJobRetention:
    """Terminal jobs are evicted from the in-memory map (TTL + cap), so a
    long-running service does not retain every row it ever served."""

    @pytest.fixture
    def service(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULT_STORE", str(tmp_path / "store"))
        return EvaluationService(workers=1)

    @staticmethod
    def _terminal_job(finished_ago_s: float) -> Job:
        job = _make_job()
        job.state = "done"
        job.finished = time.time() - finished_ago_s
        return job

    def test_ttl_evicts_old_terminal_jobs_only(self, service):
        service.job_ttl_s = 10.0
        old = self._terminal_job(60.0)
        fresh = self._terminal_job(1.0)
        running = _make_job()
        running.state = "running"
        for job in (old, fresh, running):
            service.jobs[job.id] = job
        assert service._prune_jobs() == 1
        assert old.id not in service.jobs
        assert fresh.id in service.jobs
        assert running.id in service.jobs

    def test_cap_evicts_oldest_finished_first(self, service):
        service.job_ttl_s = 3600.0
        service.job_cap = 2
        oldest = self._terminal_job(30.0)
        middle = self._terminal_job(20.0)
        newest = self._terminal_job(10.0)
        for job in (oldest, middle, newest):
            service.jobs[job.id] = job
        assert service._prune_jobs() == 1
        assert oldest.id not in service.jobs
        assert middle.id in service.jobs
        assert newest.id in service.jobs

    def test_submit_prunes(self, service):
        service.job_ttl_s = 0.0
        done = self._terminal_job(1.0)
        service.jobs[done.id] = done
        asyncio.run(service._submit({"workloads": ["li"], "priority": 0}))
        assert done.id not in service.jobs

    def test_env_overrides(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULT_STORE", str(tmp_path / "store"))
        monkeypatch.setenv("REPRO_SERVICE_JOB_TTL_S", "123")
        monkeypatch.setenv("REPRO_SERVICE_JOB_CAP", "7")
        service = EvaluationService(workers=1)
        assert service.job_ttl_s == 123.0
        assert service.job_cap == 7


class TestDrain:
    def test_sigterm_drains_queued_job_and_exits_zero(self, tmp_path):
        proc, ready = _boot_server(tmp_path / "store", tmp_path / "probes", workers=1)
        client = ServiceClient("127.0.0.1", ready["port"], timeout=60)
        submitted = client.submit(
            {"kind": "run", "workloads": ["li"], "policies": ["baseline"]}
        )
        assert submitted["deduplicated"] is False
        # SIGTERM lands while the job is queued or running: the drain must
        # finish it, publish the result, and exit 0.
        proc.send_signal(signal.SIGTERM)
        out, err = proc.communicate(timeout=120)
        assert proc.returncode == 0, err
        drained = json.loads(out.strip().splitlines()[-1])
        assert drained["event"] == "drained"
        assert drained["completed"] == 1
        assert drained["failed"] == 0
        assert _probe_count(tmp_path / "probes") == 1

    def test_new_submissions_refused_while_draining(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULT_STORE", str(tmp_path / "store"))
        service = EvaluationService(workers=1)
        service.draining = True
        with pytest.raises(ServiceError) as excinfo:
            asyncio.run(service._submit({"workloads": ["li"]}))
        assert excinfo.value.status == 503


# ----------------------------------------------------------------------
# Satellite 3: CLI stdout stays machine-parseable under warnings
# ----------------------------------------------------------------------
class TestCliStdoutPurity:
    """`--json` stdout must parse even when the store emits warnings."""

    @staticmethod
    def _plant_stale_tmp(store_root) -> None:
        """An orphan ``*.tmp`` old enough that opening the store reaps it
        (and logs a warning in the process)."""
        victim_dir = store_root / "deadbeef0000" / "ab" / "cd"
        victim_dir.mkdir(parents=True, exist_ok=True)
        victim = victim_dir / "orphan.json.tmp"
        victim.write_text("{")
        old = time.time() - 7200.0
        os.utime(victim, (old, old))

    def _run_cli(self, args, store_root, extra_env=None):
        env = dict(
            os.environ,
            PYTHONPATH=SRC_DIR,
            REPRO_RESULT_STORE=str(store_root),
            REPRO_TRACE_STORE="off",
            REPRO_JOBS="1",
        )
        env.pop("REPRO_CHAOS", None)
        env.update(extra_env or {})
        return subprocess.run(
            [sys.executable, "-m", "repro.experiments", *args],
            env=env,
            capture_output=True,
            text=True,
            timeout=240,
        )

    def test_run_json_stdout_parses_with_warnings(self, tmp_path):
        store_root = tmp_path / "store"
        self._plant_stale_tmp(store_root)
        result = self._run_cli(
            ["run", "--workload", "li", "--policy", "baseline", "--json"], store_root
        )
        assert result.returncode == 0, result.stderr
        payload = json.loads(result.stdout)  # must be one clean document
        assert payload["rows"][0]["workload"] == "li"
        assert "reaped" in result.stderr  # the warning went to stderr

    def test_sweep_json_stdout_parses_with_warnings(self, tmp_path):
        store_root = tmp_path / "store"
        self._plant_stale_tmp(store_root)
        result = self._run_cli(
            [
                "sweep",
                "--workload",
                "li",
                "--config",
                "table2",
                "--policy",
                "baseline",
                "--json",
            ],
            store_root,
        )
        assert result.returncode == 0, result.stderr
        payload = json.loads(result.stdout)
        assert payload["rows"][0]["config"] == "table2"
        assert "reaped" in result.stderr

    def test_fsck_json_stdout_parses_with_warnings(self, tmp_path):
        store_root = tmp_path / "store"
        self._plant_stale_tmp(store_root)
        # A corrupt entry as well, so fsck logs quarantine warnings.
        entry_dir = store_root / "deadbeef0000" / "12" / "34"
        entry_dir.mkdir(parents=True, exist_ok=True)
        (entry_dir / ("1" * 64 + ".json")).write_text("{corrupt")
        result = self._run_cli(["fsck", "--json"], store_root)
        payload = json.loads(result.stdout)
        assert payload["clean"] in (True, False)
        assert result.stdout.lstrip().startswith("{")
        for line in result.stderr.splitlines():
            assert not line.startswith("{")  # diagnostics only
