"""Tests for the IR: CFG, dominators, loops, def-use chains, validation."""

import pytest

from repro.ir import (
    IRBuilder,
    Program,
    ValidationError,
    build_call_graph,
    build_cfg,
    build_dependence_graph,
    compute_dominators,
    find_loops,
    format_program,
    loop_nesting_depth,
    validate_program,
)
from repro.isa import Opcode, Reg


def _loop_function():
    builder = IRBuilder("main")
    builder.block("entry")
    builder.li(Reg(1), 0)
    builder.block("loop")
    builder.add(Reg(1), Reg(1), 1)
    builder.cmp(Opcode.CMPLT, Reg(2), Reg(1), 100)
    builder.bne(Reg(2), "loop")
    builder.block("exit")
    builder.halt()
    return builder.build()


def _diamond_function():
    builder = IRBuilder("diamond")
    builder.block("entry")
    builder.cmp(Opcode.CMPLT, Reg(1), Reg(16), 5)
    builder.beq(Reg(1), "else")
    builder.block("then")
    builder.li(Reg(2), 1)
    builder.br("join")
    builder.block("else")
    builder.li(Reg(2), 2)
    builder.block("join")
    builder.mov(Reg(0), Reg(2))
    builder.ret()
    return builder.build()


class TestCfg:
    def test_successors_and_predecessors(self):
        function = _loop_function()
        assert function.blocks["entry"].successors == ["loop"]
        assert set(function.blocks["loop"].successors) == {"loop", "exit"}
        assert "loop" in function.blocks["loop"].predecessors

    def test_unconditional_branch_does_not_fall_through(self):
        function = _diamond_function()
        assert function.blocks["then"].successors == ["join"]

    def test_branch_to_unknown_label_rejected(self):
        builder = IRBuilder("bad")
        builder.block("entry")
        builder.br("nowhere")
        with pytest.raises(ValueError):
            build_cfg(builder.function)


class TestDominators:
    def test_entry_dominates_everything(self):
        function = _diamond_function()
        dom = compute_dominators(function)
        for label in function.layout():
            assert dom.dominates("entry", label)

    def test_branch_arms_do_not_dominate_join(self):
        function = _diamond_function()
        dom = compute_dominators(function)
        assert not dom.dominates("then", "join")
        assert dom.idom["join"] == "entry"

    def test_dominated_region(self):
        function = _diamond_function()
        dom = compute_dominators(function)
        assert dom.dominated_region("then") == {"then"}


class TestLoops:
    def test_natural_loop_detected(self):
        function = _loop_function()
        loops = find_loops(function)
        assert len(loops) == 1
        assert loops[0].header == "loop"
        assert loops[0].blocks == {"loop"}

    def test_nesting_depth(self):
        function = _loop_function()
        depth = loop_nesting_depth(function)
        assert depth["loop"] == 1
        assert depth["entry"] == 0


class TestDefUse:
    def test_reaching_definitions_in_loop(self):
        function = _loop_function()
        program = Program()
        program.add_function(function)
        graph = build_dependence_graph(function, program)
        add = function.blocks["loop"].instructions[0]
        defs = graph.reaching_definitions(add, Reg(1))
        kinds = {d.kind for d in defs}
        # Both the initial li and the loop-carried add reach the use.
        assert len(defs) == 2
        assert kinds == {"inst"}

    def test_uses_of_definition(self):
        function = _loop_function()
        program = Program()
        program.add_function(function)
        graph = build_dependence_graph(function, program)
        li = function.blocks["entry"].instructions[0]
        uses = graph.uses_of_instruction(li)
        assert any(reg == Reg(1) for _, reg in uses)


class TestValidationAndPrinting:
    def test_valid_program_passes(self):
        program = Program()
        program.add_function(_loop_function())
        validate_program(program)

    def test_missing_entry_function_rejected(self):
        program = Program(entry="main")
        program.add_function(_diamond_function())
        with pytest.raises(ValidationError):
            validate_program(program)

    def test_format_program_mentions_blocks(self):
        program = Program()
        program.add_function(_loop_function())
        program.add_data("table", 64, initial_values=(1, 2, 3))
        text = format_program(program)
        assert ".func main" in text
        assert "loop:" in text
        assert ".data table" in text


class TestCallGraph:
    def test_bottom_up_order(self):
        program = Program()
        caller = IRBuilder("main")
        caller.block("entry")
        caller.call("helper")
        caller.halt()
        program.add_function(caller.build())
        callee = IRBuilder("helper")
        callee.block("entry")
        callee.ret()
        program.add_function(callee.build())
        graph = build_call_graph(program)
        order = graph.bottom_up_order()
        assert order.index("helper") < order.index("main")
        assert graph.callers_of("helper") == {"main"}
