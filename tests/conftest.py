"""Test-suite isolation for the experiment engine.

The engine persists results to a per-user store by default
(``~/.cache/repro/results``).  Tests must be hermetic — a warm store from a
previous run would hand back *restored* evaluations (no trace, no program)
and silently change what the tests exercise — so the whole session is
pointed at a throwaway store under pytest's tmp directory.  Tests that
specifically exercise store persistence create their own stores.
"""

from __future__ import annotations

import pytest


@pytest.fixture(scope="session", autouse=True)
def _hermetic_result_store(tmp_path_factory):
    """Point the default engine at a fresh store for the whole session."""
    import os

    from repro.experiments import reset_default_engine

    store_root = tmp_path_factory.mktemp("result-store")
    previous = os.environ.get("REPRO_RESULT_STORE")
    os.environ["REPRO_RESULT_STORE"] = str(store_root)
    reset_default_engine()
    yield
    if previous is None:
        os.environ.pop("REPRO_RESULT_STORE", None)
    else:
        os.environ["REPRO_RESULT_STORE"] = previous
    reset_default_engine()
