"""Test-suite isolation for the experiment engine, plus divergence fixtures.

The engine persists results to a per-user store by default
(``~/.cache/repro/results``).  Tests must be hermetic — a warm store from a
previous run would hand back *restored* evaluations (no trace, no program)
and silently change what the tests exercise — so the whole session is
pointed at a throwaway store under pytest's tmp directory.  Tests that
specifically exercise store persistence create their own stores.

The ``assert_tiers_agree`` / ``assert_kernels_agree`` fixtures are the
differential suites' failure path: instead of a summary mismatch after
thousands of instructions, a bit-exactness failure reports the *first*
diverging step with a per-field diff (see ``docs/coexec.md``).
"""

from __future__ import annotations

import pytest


@pytest.fixture
def assert_tiers_agree():
    """Fail with a first-divergence report if two simulator tiers disagree.

    ``assert_tiers_agree(program, tiers=("reference", "block"), ...)``
    co-executes the tiers in lockstep; on divergence the test fails with
    the exact step, instruction uid, basic block and field diff.
    """
    from repro.coexec import first_divergence

    def _assert(program, tiers=("reference", "block"), max_instructions=20_000_000, arguments=None):
        divergence = first_divergence(
            program, tiers=tiers, max_instructions=max_instructions, arguments=arguments
        )
        if divergence is not None:
            pytest.fail(f"simulator tiers diverged:\n{divergence.describe()}")

    return _assert


@pytest.fixture
def assert_kernels_agree():
    """Fail with a bisected first-divergence report if two timing kernels
    (or the per-policy vs fused accountants) disagree over a trace."""
    from repro.coexec import compare_accounting, compare_timing

    def _assert(trace, config=None, kernels=("reference", "compiled"), accounting=False):
        if accounting:
            divergence = compare_accounting(trace, config)
            label = "energy accountants"
        else:
            divergence = compare_timing(trace, config, kernels=kernels)
            label = "timing kernels"
        if divergence is not None:
            pytest.fail(f"{label} diverged:\n{divergence.describe()}")

    return _assert


@pytest.fixture
def assert_fused_agrees():
    """Fail with a bisected first-divergence report if the streaming fused
    pipeline splits from the materialized oracle over one program."""
    from repro.coexec import compare_fused

    def _assert(program, config=None, max_instructions=20_000_000):
        divergence = compare_fused(program, config, max_instructions=max_instructions)
        if divergence is not None:
            pytest.fail(
                f"fused pipeline diverged from the materialized oracle:\n"
                f"{divergence.describe()}"
            )

    return _assert


@pytest.fixture(scope="session", autouse=True)
def _hermetic_result_store(tmp_path_factory):
    """Point the default engine at a fresh store for the whole session."""
    import os

    from repro.experiments import reset_default_engine

    store_root = tmp_path_factory.mktemp("result-store")
    previous = os.environ.get("REPRO_RESULT_STORE")
    os.environ["REPRO_RESULT_STORE"] = str(store_root)
    reset_default_engine()
    yield
    if previous is None:
        os.environ.pop("REPRO_RESULT_STORE", None)
    else:
        os.environ["REPRO_RESULT_STORE"] = previous
    reset_default_engine()
