"""Differential suite for the streaming fused pipeline (``repro.sim.fusedc``).

The fused tier promises *bit-exactness* against the materialized
pipeline: identical :class:`TimingResult`, identical per-policy energy
breakdowns for every registered gating policy, identical width
distribution and shape counts, identical engine summaries — while never
materializing a trace.  Every comparison here shares ONE built program
between both pipelines (uids are process-global, so separately built
programs would have incomparable shape keys), and failures are routed
through :func:`repro.coexec.compare_fused`, which bisects to the exact
first diverging record instead of reporting two end-of-run summaries.
"""

from __future__ import annotations

import dataclasses
import os
from dataclasses import replace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.asm import assemble_program
from repro.coexec import compare_fused
from repro.coexec import kernels as kernels_module
from repro.experiments import ExperimentConfig, ExperimentEngine
from repro.experiments.engine import _resolve_pipeline
from repro.experiments.runner import _compute_evaluation
from repro.experiments.store import ResultStore
from repro.experiments.sweep import SweepResult, SweepSpec, default_sweep_configs
from repro.hardware import gating
from repro.power import MultiPolicyEnergyAccountant
from repro.sim import Machine
from repro.sim.fusedc import (
    PIPELINES,
    FusedOutcome,
    ShapeAggregate,
    default_pipeline,
    fused_program_for,
)
from repro.uarch import MachineConfig, OutOfOrderModel
from repro.workloads import workload_by_name

NARROW = replace(
    MachineConfig(),
    issue_width=2,
    int_alus=1,
    int_muls=1,
    lsq_ports=1,
    fetch_width=2,
    retire_width=2,
    max_in_flight=48,
)


def _assert_fused_exact(program, config=None):
    """Full-surface fused ≡ materialized check over ONE built program.

    Fast path: compare end-of-run results directly.  On any mismatch,
    re-diagnose through the coexec bisector so the failure names the
    first diverging record.
    """
    if config is None:
        config = MachineConfig()
    machine = Machine(program)
    reference = machine.run(collect_trace=True)
    trace = reference.trace
    timing = OutOfOrderModel(config).run(trace)
    fused_run = machine.run(pipeline="fused", machine_config=config)
    fused = fused_run.fused

    exact = (
        fused_run.instructions == reference.instructions
        and fused_run.output == reference.output
        and fused_run.block_counts == reference.block_counts
        and fused_run.call_counts == reference.call_counts
        and fused.timing == timing
        and fused.shapes.shape_counts() == dict(trace.shape_counts())
    )
    if not exact:
        divergence = compare_fused(program, config)
        pytest.fail(
            "fused pipeline diverged from the materialized oracle:\n"
            + (divergence.describe() if divergence is not None else "(not bisectable)")
        )

    # Derived surfaces: widths, uid counts, and all six gating policies.
    assert fused.shapes.uid_counts() == trace.uid_counts()
    assert fused.shapes.width_distribution() == trace.width_distribution()
    assert len(fused.shapes) == len(trace)
    accountant = MultiPolicyEnergyAccountant(gating.registry())
    assert accountant.account(fused.shapes, fused.timing) == accountant.account(trace, timing)
    return fused_run, reference


# ----------------------------------------------------------------------
# Hypothesis-generated programs (same shape zoo as the timing suite)
# ----------------------------------------------------------------------
_ARITH_OPS = ("add", "sub", "mul", "and", "or", "xor", "sll", "srl")
_CMP_OPS = ("cmpeq", "cmplt", "cmple", "cmpult")
_IMMEDIATES = (-129, -1, 0, 1, 7, 127, 255, 4095, 2**31, 2**40 - 3)


@st.composite
def _programs(draw) -> str:
    """Small terminating programs stressing every fused codegen shape.

    Calls/returns (redirects + call counters), ALU/MUL/LSQ traffic (all
    functional-unit rings), dependence chains through one register
    (run-length memo breaks on every width change), stores+loads (dcache
    paths) and data-dependent branches (ghost/live conditional arms).
    """
    body_ops = draw(st.lists(st.integers(min_value=0, max_value=5), min_size=1, max_size=12))
    trip_count = draw(st.integers(min_value=1, max_value=8))
    seed_value = draw(st.sampled_from(_IMMEDIATES))
    lines = [
        ".data buf 64 64",
        ".func helper 1",
        "entry:",
        "    mul v0, a0, 3",
        "    ret",
        ".endfunc",
        ".func main 0",
        "entry:",
        f"    li r1, {seed_value}",
        "    li r2, =buf",
        "    li r3, 0",
        "loop:",
    ]
    for index, choice in enumerate(body_ops):
        dest = f"r{4 + (index % 5)}"
        if choice == 0:
            op = draw(st.sampled_from(_ARITH_OPS))
            imm = draw(st.sampled_from(_IMMEDIATES))
            lines.append(f"    {op} {dest}, r1, {imm}")
        elif choice == 1:
            op = draw(st.sampled_from(_CMP_OPS))
            lines.append(f"    {op} {dest}, r1, r3")
        elif choice == 2:
            lines.append("    mul r1, r1, 3")
            lines.append("    add r1, r1, 1")
        elif choice == 3:
            offset = draw(st.integers(min_value=0, max_value=7)) * 8
            store = draw(st.sampled_from(("stq", "stw", "stb")))
            load = draw(st.sampled_from(("ldq", "ldw", "ldb")))
            lines.append(f"    {store} r1, {offset}(r2)")
            lines.append(f"    {load} {dest}, {offset}(r2)")
        elif choice == 4:
            lines.append("    mov a0, r1")
            lines.append("    jsr helper")
            lines.append(f"    mov {dest}, v0")
        else:
            skip = f"skip{index}"
            lines.append(f"    blt r1, {skip}")
            lines.append(f"fall{index}:")
            lines.append(f"    xor {dest}, r1, 85")
            lines.append(f"{skip}:")
            lines.append("    nop")
    lines += [
        "    add r1, r1, 3",
        "    add r3, r3, 1",
        f"    cmplt r9, r3, {trip_count}",
        "    bne r9, loop",
        "done:",
        "    print r1",
        "    halt",
        ".endfunc",
    ]
    return "\n".join(lines)


class TestGeneratedPrograms:
    @settings(max_examples=25, deadline=None)
    @given(_programs())
    def test_fused_equals_materialized(self, asm):
        _assert_fused_exact(assemble_program(asm))

    @settings(max_examples=10, deadline=None)
    @given(_programs())
    def test_fused_equals_materialized_on_narrow_machine(self, asm):
        """Non-default widths change every ring/allocator literal baked
        into the generated source."""
        _assert_fused_exact(assemble_program(asm), NARROW)


# ----------------------------------------------------------------------
# Suite workloads
# ----------------------------------------------------------------------
class TestSuiteWorkloads:
    @pytest.mark.parametrize("name", ("li", "ijpeg"))
    def test_fused_exact_on_workload(self, name):
        workload = workload_by_name(name)
        program = workload.build()
        workload.apply_input(program, "ref")
        _assert_fused_exact(program)

    @pytest.mark.parametrize("name", ("li",))
    def test_fused_exact_on_workload_narrow(self, name):
        workload = workload_by_name(name)
        program = workload.build()
        workload.apply_input(program, "ref")
        _assert_fused_exact(program, NARROW)

    @pytest.mark.slow
    def test_fused_exact_on_whole_suite(self):
        from repro.workloads import load_suite

        for workload in load_suite():
            program = workload.build()
            workload.apply_input(program, "ref")
            _assert_fused_exact(program)

    def test_engine_summaries_identical(self, tmp_path):
        """The engine's persisted summary is pipeline-independent."""
        config = ExperimentConfig(workload="li")
        fused = ExperimentEngine(store=ResultStore(tmp_path / "a")).compute(
            config, pipeline="fused"
        )
        materialized = ExperimentEngine(store=ResultStore(tmp_path / "b")).compute(
            config, pipeline="materialized"
        )
        assert fused.pipeline == "fused"
        assert materialized.pipeline == "materialized"
        assert (
            fused.summarize().to_json_dict() == materialized.summarize().to_json_dict()
        )


# ----------------------------------------------------------------------
# Memoization
# ----------------------------------------------------------------------
class TestMemoization:
    #: A loop whose body re-executes thousands of times with identical
    #: operand widths: the per-unit run-length memo and the signature→keys
    #: cache should collapse the stream to a handful of distinct entries.
    STEADY_LOOP = """
.func main 0
entry:
    li r1, 1000
    li r2, 0
loop:
    add r2, r2, 7
    and r3, r2, 255
    sub r1, r1, 1
    bne r1, loop
done:
    print r2
    halt
.endfunc
"""

    def test_signature_cache_collapses_repeats(self):
        program = assemble_program(self.STEADY_LOOP)
        machine = Machine(program)
        fused_program = fused_program_for(machine)
        run = machine.run(pipeline="fused")
        distinct = sum(len(cache) for cache in fused_program.key_caches)
        # Thousands of records, but only a handful of distinct
        # width signatures per block.
        assert run.instructions > 4000
        assert 0 < distinct < 64
        _assert_fused_exact(program)

    def test_key_caches_persist_across_runs(self):
        program = assemble_program(self.STEADY_LOOP)
        machine = Machine(program)
        fused_program = fused_program_for(machine)
        first = machine.run(pipeline="fused")
        populated = [dict(cache) for cache in fused_program.key_caches]
        second = machine.run(pipeline="fused")
        assert [dict(cache) for cache in fused_program.key_caches] == populated
        assert first.fused.timing == second.fused.timing
        assert first.fused.shapes.shape_counts() == second.fused.shapes.shape_counts()

    def test_program_cache_translates_uids_across_rebuilds(self):
        """An identical rebuild gets the cached compiled program (uids are
        allocated from a process-global counter, so they differ by a
        uniform offset) and ``expand`` translates the cached shape keys
        into the running build's uid space."""
        first_program = assemble_program(self.STEADY_LOOP)
        second_program = assemble_program(self.STEADY_LOOP)
        first_machine = Machine(first_program)
        second_machine = Machine(second_program)
        assert first_machine.static_info.uid_base != second_machine.static_info.uid_base
        cached = fused_program_for(first_machine)
        reused = fused_program_for(second_machine)
        assert reused is cached
        # The second build's fused run must report keys in ITS uid space,
        # bit-exact against its own materialized oracle.
        _assert_fused_exact(second_program)


# ----------------------------------------------------------------------
# Pipeline plumbing: env knob, engine resolution, validation
# ----------------------------------------------------------------------
class TestPipelinePlumbing:
    def test_default_pipeline_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_PIPELINE", raising=False)
        assert default_pipeline() == "auto"
        monkeypatch.setenv("REPRO_PIPELINE", "fused")
        assert default_pipeline() == "fused"
        monkeypatch.setenv("REPRO_PIPELINE", "materialized")
        assert default_pipeline() == "materialized"
        monkeypatch.setenv("REPRO_PIPELINE", "off")
        assert default_pipeline() == "materialized"
        monkeypatch.setenv("REPRO_PIPELINE", "bogus")
        assert default_pipeline() == "auto"

    def test_resolution_auto_follows_snapshot_layer(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_PIPELINE", raising=False)
        monkeypatch.delenv("REPRO_TRACE_STORE", raising=False)
        store = ResultStore(tmp_path)
        assert _resolve_pipeline("auto", store) == "materialized"
        monkeypatch.setenv("REPRO_TRACE_STORE", "off")
        assert _resolve_pipeline("auto", store) == "fused"
        assert _resolve_pipeline("auto", None) == "fused"
        # Explicit choices win over everything.
        assert _resolve_pipeline("materialized", None) == "materialized"
        monkeypatch.setenv("REPRO_PIPELINE", "materialized")
        assert _resolve_pipeline("fused", store) == "fused"
        with pytest.raises(ValueError):
            _resolve_pipeline("turbo", store)

    def test_env_forces_fused_in_engine(self, tmp_path, monkeypatch):
        """REPRO_PIPELINE=fused streams even when snapshots are enabled."""
        monkeypatch.setenv("REPRO_PIPELINE", "fused")
        engine = ExperimentEngine(store=ResultStore(tmp_path))
        evaluation = engine.evaluate(ExperimentConfig(workload="li"))
        assert evaluation.freshly_computed
        assert evaluation.pipeline == "fused"

    def test_machine_run_validation(self):
        machine = Machine(assemble_program(TestMemoization.STEADY_LOOP))
        with pytest.raises(ValueError, match="unknown pipeline"):
            machine.run(pipeline="turbo")
        with pytest.raises(ValueError, match="never materializes"):
            machine.run(pipeline="fused", collect_trace=True)
        with pytest.raises(ValueError, match="value observers"):
            machine.run(pipeline="fused", value_observer=lambda *a: None)
        with pytest.raises(ValueError, match="machine_config"):
            machine.run(machine_config=MachineConfig())

    def test_shape_aggregate_refuses_record_iteration(self):
        machine = Machine(assemble_program(TestMemoization.STEADY_LOOP))
        run = machine.run(pipeline="fused")
        assert isinstance(run.fused, FusedOutcome)
        assert run.trace is None
        with pytest.raises(TypeError, match="do not materialize trace records"):
            list(run.fused.shapes)

    def test_pipeline_vocabulary(self):
        assert PIPELINES == ("auto", "fused", "materialized")

    def test_fallback_on_non_block_tier(self):
        """Non-block dispatch tiers fall back to the materialized oracle
        but still present the fused result surface, bit-exact."""
        program = assemble_program(TestMemoization.STEADY_LOOP)
        machine = Machine(program)
        streamed = machine.run(pipeline="fused")
        fallback = machine.run(pipeline="fused", dispatch="fast")
        assert fallback.trace is None
        assert fallback.fused.timing == streamed.fused.timing
        assert (
            fallback.fused.shapes.shape_counts() == streamed.fused.shapes.shape_counts()
        )
        assert fallback.output == streamed.output


# ----------------------------------------------------------------------
# Satellite 4 regression: summary-only evaluations never build a trace
# ----------------------------------------------------------------------
class TestNoTraceForSummaryOnly:
    def test_summary_only_evaluation_never_constructs_a_trace(
        self, tmp_path, monkeypatch
    ):
        """With ``REPRO_TRACE_STORE=off`` a cold ``engine.evaluate`` must
        resolve through the fused pipeline — the trace must not even be
        *constructed*, not merely dropped after the fact."""
        monkeypatch.delenv("REPRO_PIPELINE", raising=False)
        monkeypatch.setenv("REPRO_TRACE_STORE", "off")

        def explode(self):
            raise AssertionError("summary-only evaluation materialized a trace")

        monkeypatch.setattr(Machine, "_new_trace", explode)
        engine = ExperimentEngine(store=ResultStore(tmp_path))
        config = ExperimentConfig(workload="li")
        evaluation = engine.evaluate(config)
        assert evaluation.freshly_computed
        assert evaluation.pipeline == "fused"
        # The summary was persisted; a second engine restores it without
        # simulating at all.
        restored = ExperimentEngine(store=ResultStore(tmp_path)).evaluate(config)
        assert not restored.freshly_computed
        assert restored.summarize().to_json_dict() == evaluation.summarize().to_json_dict()

    def test_snapshots_enabled_keeps_materialized_default(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_PIPELINE", raising=False)
        monkeypatch.delenv("REPRO_TRACE_STORE", raising=False)
        engine = ExperimentEngine(store=ResultStore(tmp_path))
        evaluation = engine.evaluate(ExperimentConfig(workload="li"))
        assert evaluation.freshly_computed
        assert evaluation.pipeline == "materialized"


# ----------------------------------------------------------------------
# Sweep integration
# ----------------------------------------------------------------------
class TestSweepPipeline:
    SPEC = SweepSpec.cartesian(
        workloads=("li",),
        configs=default_sweep_configs()[:2],
        policies=("baseline", "hw-significance"),
    )

    def test_fused_sweep_rows_bit_exact(self, tmp_path):
        materialized = SweepResult.collect(
            ExperimentEngine(store=ResultStore(tmp_path / "a")).sweep(
                self.SPEC, pipeline="materialized"
            )
        )
        fused = SweepResult.collect(
            ExperimentEngine(store=ResultStore(tmp_path / "b")).sweep(
                self.SPEC, pipeline="fused"
            )
        )
        assert len(materialized) == len(fused) == len(self.SPEC)
        for left, right in zip(materialized, fused):
            assert left.source == "computed"
            assert right.source == "fused"
            assert dataclasses.replace(left, source="") == dataclasses.replace(
                right, source=""
            )
        assert fused.simulations == materialized.simulations == 1

    def test_warm_snapshot_replays_even_under_fused(self, tmp_path):
        store = ResultStore(tmp_path)
        engine = ExperimentEngine(store=store)
        SweepResult.collect(engine.sweep(self.SPEC, pipeline="materialized"))
        warm = SweepResult.collect(engine.sweep(self.SPEC, pipeline="fused"))
        assert all(row.source == "replayed" for row in warm)
        assert warm.simulations == 0

    def test_auto_streams_single_config_groups(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_PIPELINE", raising=False)
        monkeypatch.setenv("REPRO_TRACE_STORE", "off")
        spec = SweepSpec.cartesian(
            workloads=("li",),
            configs=default_sweep_configs()[:1],
            policies=("baseline",),
        )
        rows = SweepResult.collect(
            ExperimentEngine(store=ResultStore(tmp_path)).sweep(spec)
        )
        assert [row.source for row in rows] == ["fused"]

    def test_unknown_pipeline_rejected(self, tmp_path):
        engine = ExperimentEngine(store=ResultStore(tmp_path))
        with pytest.raises(ValueError, match="unknown pipeline"):
            list(engine.sweep(self.SPEC, pipeline="turbo"))


# ----------------------------------------------------------------------
# The bisector itself
# ----------------------------------------------------------------------
class TestCompareFused:
    def test_agreement_returns_none(self):
        program = assemble_program(TestMemoization.STEADY_LOOP)
        assert compare_fused(program) is None

    def test_fixture_routes_through_bisector(self, assert_fused_agrees):
        assert_fused_agrees(assemble_program(TestMemoization.STEADY_LOOP))

    def test_timing_bisection_finds_exact_record(self, monkeypatch):
        """An oracle kernel broken from record THRESHOLD onwards must be
        pinned to exactly that record by the probe-projection bisection."""
        program = assemble_program(TestMemoization.STEADY_LOOP)
        trace = Machine(program).run(collect_trace=True).trace
        threshold = len(trace) // 2
        real = kernels_module.run_compiled

        def broken(prefix, config=None):
            result = real(prefix, config)
            if len(prefix) > threshold:
                result = dataclasses.replace(result, cycles=result.cycles + 1)
            return result

        monkeypatch.setattr(kernels_module, "run_compiled", broken)
        divergence = compare_fused(program)
        assert divergence is not None
        assert divergence.kind == "fused-timing"
        assert divergence.tiers == ("materialized", "fused")
        assert divergence.step == threshold
        assert divergence.uid == trace[threshold].uid
        assert "cycles" in divergence.fields
