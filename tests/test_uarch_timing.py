"""First-class differential and unit suite for the `uarch` timing model.

The out-of-order model now has two kernel tiers: the reference
scoreboard walk (`OutOfOrderModel.run_reference`, locked against a
verbatim record-list copy by ``tests/test_trace_columnar.py``) and the
compiled kernel (`repro/uarch/tkernel.py`: generated per-config source,
packed static table, ring-buffer slot allocators, inlined caches and
predictor).  This suite locks the compiled tier against the reference
tier **field-for-field on every TimingResult member** — cycles,
predictor counters, cache/L2 counters, loads/stores — over:

1. hypothesis-generated programs (arithmetic, multiplies, memory
   traffic, calls, data-dependent branches) in *both* address modes
   (derived uid→address map and explicit per-record columns),
2. every suite workload (suite/slow tier),
3. non-default machine configurations (narrow widths, non-2-way and
   non-power-of-two caches, tiny predictors) that force the generic
   codegen variants,
4. adversarial probes: forced ring growth, the missing-static-uid
   ``KeyError`` equivalence, and mem-flagged records on non-memory
   instructions (sparse-column cursor alignment).

Plus direct unit tests for the pieces the kernels inline: the combined
branch predictor (selector crossover, history wraparound), the cache
models (set/tag aliasing, LRU boundary eviction, L2 sharing) and the
slot allocators (width-1 serialization, the bounded ``_Slots`` fix).
"""

from __future__ import annotations

from dataclasses import asdict, replace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.asm import assemble_program
from repro.sim import Machine, Trace
from repro.sim.trace import StaticInfo
from repro.uarch import (
    Cache,
    CacheConfig,
    CacheHierarchy,
    CombinedPredictor,
    MachineConfig,
    OutOfOrderModel,
    PredictorConfig,
    TIMING_KERNELS,
    bake_static_table,
)
from repro.uarch import tkernel
from repro.uarch.ooo import _Slots, _default_kernel
from repro.workloads import SUITE_NAMES, workload_by_name


def _assert_kernels_agree(trace, config=None):
    """Compiled ≡ reference on every TimingResult field, both address modes.

    A mismatch is re-diagnosed through the coexec comparator so the
    failure names the first diverging record, not just the end-of-run
    summary fields.
    """
    model = OutOfOrderModel(config)
    reference = asdict(model.run(trace, kernel="reference"))
    if asdict(model.run(trace, kernel="compiled")) != reference:
        from repro.coexec import compare_timing

        divergence = compare_timing(trace, config)
        pytest.fail(f"timing kernels diverged:\n{divergence.describe()}")
    # The record-rebuilt trace carries explicit address columns, forcing
    # the compiled kernel's explicit-address variant.
    rebuilt = Trace(records=list(trace), static=trace.static)
    assert not rebuilt.has_derived_addresses
    if asdict(model.run(rebuilt, kernel="compiled")) != reference:
        from repro.coexec import compare_timing

        divergence = compare_timing(rebuilt, config)
        pytest.fail(f"timing kernels diverged (explicit-address mode):\n{divergence.describe()}")
    return reference


# ----------------------------------------------------------------------
# Hypothesis-generated programs
# ----------------------------------------------------------------------
_ARITH_OPS = ("add", "sub", "mul", "and", "or", "xor", "sll", "srl")
_CMP_OPS = ("cmpeq", "cmplt", "cmple", "cmpult")
_IMMEDIATES = (-129, -1, 0, 1, 7, 127, 255, 4095, 2**31, 2**40 - 3)


@st.composite
def _programs(draw) -> str:
    """Small terminating programs stressing every timing-relevant shape.

    A call-taking helper exercises call/return redirects, the counted
    loop's body mixes ALU/multiplier/LSQ traffic (all three FU
    allocators), long dependence chains through r1, and data-dependent
    forward branches that train and mistrain the predictor.
    """
    body_ops = draw(st.lists(st.integers(min_value=0, max_value=5), min_size=1, max_size=12))
    trip_count = draw(st.integers(min_value=1, max_value=8))
    seed_value = draw(st.sampled_from(_IMMEDIATES))
    lines = [
        ".data buf 64 64",
        ".func helper 1",
        "entry:",
        "    mul v0, a0, 3",
        "    ret",
        ".endfunc",
        ".func main 0",
        "entry:",
        f"    li r1, {seed_value}",
        "    li r2, =buf",
        "    li r3, 0",
        "loop:",
    ]
    for index, choice in enumerate(body_ops):
        dest = f"r{4 + (index % 5)}"
        if choice == 0:
            op = draw(st.sampled_from(_ARITH_OPS))
            imm = draw(st.sampled_from(_IMMEDIATES))
            lines.append(f"    {op} {dest}, r1, {imm}")
        elif choice == 1:
            op = draw(st.sampled_from(_CMP_OPS))
            lines.append(f"    {op} {dest}, r1, r3")
        elif choice == 2:
            # Dependence chain through r1 (producer feeds next reader).
            lines.append("    mul r1, r1, 3")
            lines.append("    add r1, r1, 1")
        elif choice == 3:
            offset = draw(st.integers(min_value=0, max_value=7)) * 8
            store = draw(st.sampled_from(("stq", "stw", "stb")))
            load = draw(st.sampled_from(("ldq", "ldw", "ldb")))
            lines.append(f"    {store} r1, {offset}(r2)")
            lines.append(f"    {load} {dest}, {offset}(r2)")
        elif choice == 4:
            lines.append("    mov a0, r1")
            lines.append("    jsr helper")
            lines.append(f"    mov {dest}, v0")
        else:
            skip = f"skip{index}"
            lines.append(f"    blt r1, {skip}")
            lines.append(f"fall{index}:")
            lines.append(f"    xor {dest}, r1, 85")
            lines.append(f"{skip}:")
            lines.append("    nop")
    lines += [
        "    add r1, r1, 3",
        "    add r3, r3, 1",
        f"    cmplt r9, r3, {trip_count}",
        "    bne r9, loop",
        "done:",
        "    print r1",
        "    halt",
        ".endfunc",
    ]
    return "\n".join(lines)


def _machine_trace(asm: str):
    return Machine(assemble_program(asm)).run(collect_trace=True).trace


class TestGeneratedPrograms:
    @settings(max_examples=25, deadline=None)
    @given(_programs())
    def test_compiled_equals_reference(self, asm):
        trace = _machine_trace(asm)
        assert trace.has_derived_addresses
        _assert_kernels_agree(trace)

    @settings(max_examples=10, deadline=None)
    @given(_programs())
    def test_compiled_equals_reference_on_narrow_machine(self, asm):
        """Non-default widths change every allocator's contention."""
        config = replace(
            MachineConfig(),
            fetch_width=2,
            issue_width=2,
            retire_width=1,
            int_alus=1,
            lsq_ports=1,
            frontend_depth=1,
            max_in_flight=8,
        )
        _assert_kernels_agree(_machine_trace(asm), config)


# ----------------------------------------------------------------------
# Non-default configurations: force the generic codegen variants
# ----------------------------------------------------------------------
_SMOKE_ASM = """
.data buf 64 64
.func main 0
entry:
    li r1, 7
    li r2, =buf
    li r3, 0
loop:
    mul r4, r1, 5
    stq r4, 0(r2)
    ldq r5, 0(r2)
    add r1, r5, 1
    add r3, r3, 1
    cmplt r9, r3, 50
    bne r9, loop
done:
    print r1
    halt
.endfunc
"""


class TestConfigurationVariants:
    def test_non_two_way_and_non_pow2_caches(self):
        """Direct-mapped + 4-way L1s with 3-set geometry: the generic
        list-based cache variant and the true-division index math."""
        config = replace(
            MachineConfig(),
            icache=CacheConfig(
                size_bytes=3 * 32, associativity=1, line_bytes=32,
                hit_cycles=1, miss_penalty_cycles=6,
            ),
            dcache=CacheConfig(
                size_bytes=4 * 3 * 32, associativity=4, line_bytes=32,
                hit_cycles=2, miss_penalty_cycles=9,
            ),
        )
        _assert_kernels_agree(_machine_trace(_SMOKE_ASM), config)

    def test_l2_line_not_multiple_of_l1_disables_derived_mode(self):
        """A 48B L2 line over 32B L1 lines cannot reconstruct the L2
        line from the fetch line; the kernel must fall back to the
        explicit-address walk and stay bit-exact."""
        config = replace(
            MachineConfig(),
            l2cache=CacheConfig(
                size_bytes=4 * 16 * 48, associativity=4, line_bytes=48,
                hit_cycles=6, miss_penalty_cycles=18,
            ),
        )
        assert not tkernel._derived_mode_supported(config)
        _assert_kernels_agree(_machine_trace(_SMOKE_ASM), config)

    def test_tiny_predictor_tables(self):
        """Small power-of-two tables exercise key aliasing heavily."""
        config = replace(
            MachineConfig(),
            predictor=PredictorConfig(
                gshare_entries=16, history_bits=3,
                bimodal_entries=8, selector_entries=4,
            ),
        )
        _assert_kernels_agree(_machine_trace(_SMOKE_ASM), config)


# ----------------------------------------------------------------------
# Real workloads
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def ijpeg_trace():
    workload = workload_by_name("ijpeg")
    program = workload.build()
    workload.apply_input(program, "ref")
    return Machine(program).run(collect_trace=True).trace


class TestRealWorkloads:
    def test_ijpeg_compiled_equals_reference(self, ijpeg_trace):
        reference = _assert_kernels_agree(ijpeg_trace)
        # Sanity: the workload actually exercises every subsystem.
        assert reference["branch_mispredictions"] > 0
        assert reference["icache_misses"] > 0
        assert reference["dcache_misses"] > 0
        assert reference["l2_accesses"] > 0
        assert reference["loads"] > 0 and reference["stores"] > 0

    def test_machine_traces_take_the_derived_address_mode(self, ijpeg_trace):
        assert ijpeg_trace.has_derived_addresses
        assert ijpeg_trace.address_map is not None
        OutOfOrderModel().run(ijpeg_trace, kernel="compiled")
        modes = tkernel._STATIC_OF_CACHE.get(ijpeg_trace.static)
        assert modes is not None
        assert any(key[0] == "derived" for key in modes)


@pytest.mark.suite
@pytest.mark.slow
@pytest.mark.parametrize("name", SUITE_NAMES)
def test_suite_workload_compiled_equals_reference(name):
    workload = workload_by_name(name)
    program = workload.build()
    workload.apply_input(program, "ref")
    trace = Machine(program).run(collect_trace=True).trace
    _assert_kernels_agree(trace)


# ----------------------------------------------------------------------
# Multi-config batched kernel (run_compiled_many)
# ----------------------------------------------------------------------
def _lane_config_pool() -> tuple:
    """Machine-config variants spanning every batching regime.

    Entries 0-8 share the default cache/predictor geometry (one shape
    group, covering cycle-valued variation: widths, window — including a
    non-power-of-two one — frontend depth, penalties, FU counts, memory
    latency, a zero fetch-bump icache).  Entries 9-10 open further shape
    groups (different icache geometry; 4-way L1s + a small predictor).
    Entry 11 has a 48B L2 line over 32B L1 lines, which disables the
    derived-address mode and forces that lane onto an explicit-address
    group.  ``None`` is the default-config spelling.
    """
    base = MachineConfig()
    return (
        None,
        base,
        replace(base, fetch_width=2, issue_width=2, retire_width=1),
        replace(base, max_in_flight=8, frontend_depth=1),
        replace(base, max_in_flight=48),
        replace(base, frontend_depth=0, mispredict_redirect_penalty=0),
        replace(base, int_alus=1, int_muls=2, lsq_ports=1),
        replace(base, icache=replace(base.icache, miss_penalty_cycles=0)),
        replace(base, memory_first_chunk_cycles=40, memory_interchunk_cycles=8),
        replace(
            base,
            icache=CacheConfig(
                size_bytes=32 * 1024, associativity=2, line_bytes=32,
                hit_cycles=1, miss_penalty_cycles=6,
            ),
        ),
        replace(
            base,
            icache=CacheConfig(
                size_bytes=64 * 1024, associativity=4, line_bytes=32,
                hit_cycles=1, miss_penalty_cycles=6,
            ),
            dcache=CacheConfig(
                size_bytes=64 * 1024, associativity=4, line_bytes=32,
                hit_cycles=2, miss_penalty_cycles=9,
            ),
            predictor=PredictorConfig(
                gshare_entries=4096, history_bits=10,
                bimodal_entries=512, selector_entries=256,
            ),
        ),
        replace(
            base,
            l2cache=CacheConfig(
                size_bytes=4 * 16 * 48, associativity=4, line_bytes=48,
                hit_cycles=6, miss_penalty_cycles=18,
            ),
        ),
    )


class TestMultiConfigKernel:
    """``run_compiled_many`` must be a pure batching of single runs."""

    @settings(max_examples=12, deadline=None)
    @given(
        _programs(),
        st.lists(st.integers(min_value=0, max_value=11), min_size=1, max_size=6),
    )
    def test_batch_matches_singles_and_reference(self, asm, picks):
        """Field-for-field bit-exact vs N independent compiled AND
        reference runs, for arbitrary config mixes (shared shapes,
        duplicate lanes, mixed derived/explicit address modes)."""
        trace = _machine_trace(asm)
        pool = _lane_config_pool()
        configs = [pool[index] for index in picks]
        batched = tkernel.run_compiled_many(trace, configs)
        assert len(batched) == len(configs)
        for lane, config in zip(batched, configs):
            model = OutOfOrderModel(config)
            assert asdict(lane) == asdict(model.run(trace, kernel="compiled"))
            assert asdict(lane) == asdict(model.run_reference(trace))

    def test_explicit_address_trace_batch(self):
        """A record-rebuilt trace (no derived addresses) routes every
        lane through the explicit-address variant and stays bit-exact."""
        trace = _machine_trace(_SMOKE_ASM)
        rebuilt = Trace(records=list(trace), static=trace.static)
        assert not rebuilt.has_derived_addresses
        configs = [None, replace(MachineConfig(), fetch_width=2, max_in_flight=16)]
        batched = tkernel.run_compiled_many(rebuilt, configs)
        for lane, config in zip(batched, configs):
            assert asdict(lane) == asdict(tkernel.run_compiled(rebuilt, config))

    def test_duplicate_lanes_share_work_but_not_objects(self):
        base = MachineConfig()
        trace = _machine_trace(_SMOKE_ASM)
        batched = tkernel.run_compiled_many(trace, [base, base, None])
        assert batched[0] == batched[1] == batched[2]
        # Fresh result objects per requested position: mutating one must
        # not alias another.
        assert batched[0] is not batched[1]

    def test_max_lanes_chunking_is_invisible(self):
        """Chunking a shape group (including down to singleton chunks,
        the run_compiled fallback) never changes any field."""
        base = MachineConfig()
        configs = [replace(base, max_in_flight=window) for window in (16, 32, 48, 64, 128)]
        trace = _machine_trace(_SMOKE_ASM)
        full = tkernel.run_compiled_many(trace, configs)
        for max_lanes in (1, 2, 8):
            chunked = tkernel.run_compiled_many(trace, configs, max_lanes=max_lanes)
            assert [asdict(result) for result in chunked] == [
                asdict(result) for result in full
            ]

    def test_empty_batch(self):
        assert tkernel.run_compiled_many(_machine_trace(_SMOKE_ASM), []) == []

    def test_missing_static_uid_raises_keyerror(self):
        """Same contract as the single-config kernels: unknown uid is a
        KeyError naming the uid, not a wrong-entry walk."""
        trace = _machine_trace(_SMOKE_ASM)
        records = list(trace)
        bogus_uid = trace.static.uid_base + len(trace.static.entries) + 7
        records[3] = records[3]._replace(uid=bogus_uid)
        broken = Trace(records=records, static=trace.static)
        with pytest.raises(KeyError) as exc:
            tkernel.run_compiled_many(broken, [None])
        assert exc.value.args[0] == bogus_uid


@pytest.mark.suite
@pytest.mark.slow
@pytest.mark.parametrize("name", SUITE_NAMES)
def test_suite_workload_multi_config_batch(name):
    """The sweep's default 8-config axis, batched vs single runs on every
    suite workload, with the reference oracle on one lane per shape group."""
    from repro.experiments.sweep import default_sweep_configs

    workload = workload_by_name(name)
    program = workload.build()
    workload.apply_input(program, "ref")
    trace = Machine(program).run(collect_trace=True).trace
    configs = [config for _, config in default_sweep_configs()]
    batched = tkernel.run_compiled_many(trace, configs)
    for lane, config in zip(batched, configs):
        assert asdict(lane) == asdict(tkernel.run_compiled(trace, config))
    # Reference spot-checks: lane 0 (the shared default-geometry group)
    # and lane 5 ("l1-16k", the singleton shape group).
    for index in (0, 5):
        reference = OutOfOrderModel(configs[index]).run_reference(trace)
        assert asdict(batched[index]) == asdict(reference)


# ----------------------------------------------------------------------
# Adversarial probes
# ----------------------------------------------------------------------
class TestAdversarialProbes:
    def test_missing_static_uid_raises_keyerror_in_both_kernels(self):
        """A record without a static entry must raise KeyError (with the
        uid) from both kernels, never wrap-index to a wrong entry."""
        trace = _machine_trace(_SMOKE_ASM)
        records = list(trace)
        bogus_uid = trace.static.uid_base + len(trace.static.entries) + 7
        records[3] = records[3]._replace(uid=bogus_uid)
        broken = Trace(records=records, static=trace.static)
        model = OutOfOrderModel()
        for kernel in TIMING_KERNELS:
            with pytest.raises(KeyError) as exc:
                model.run(broken, kernel=kernel)
            assert exc.value.args[0] == bogus_uid

    def test_forced_ring_growth_stays_bit_exact(self, monkeypatch):
        """An 8-entry ring collides constantly; growth must preserve
        exact equivalence with the dict allocator."""
        trace = _machine_trace(_SMOKE_ASM)
        reference = asdict(OutOfOrderModel().run(trace, kernel="reference"))
        monkeypatch.setattr(tkernel, "_RING_BITS", 3)
        monkeypatch.setattr(tkernel, "_WALK_CACHE", {})
        assert asdict(OutOfOrderModel().run(trace, kernel="compiled")) == reference

    def test_mem_flag_on_non_memory_record_keeps_cursor_aligned(self):
        """A hand-built ALU record carrying a mem address must consume
        one sparse-column slot in both kernels (cursor alignment)."""
        trace = _machine_trace(_SMOKE_ASM)
        records = list(trace)
        # Attach an address to the first non-memory, non-branch record
        # that precedes a real load/store, then verify both kernels
        # still agree (the load's address must not shift).
        for index, record in enumerate(records):
            entry = trace.static[record.uid]
            if not (entry.is_load or entry.is_store or entry.is_branch
                    or entry.is_call or entry.is_return):
                records[index] = record._replace(mem_address=0x1230)
                break
        weird = Trace(records=records, static=trace.static)
        model = OutOfOrderModel()
        assert asdict(model.run(weird, kernel="compiled")) == asdict(
            model.run(weird, kernel="reference")
        )

    def test_negative_instruction_addresses_stay_bit_exact(self):
        """Hand-built traces may carry negative addresses; negative
        fetch-line tags must not alias the empty-way sentinel of the
        compiled kernel's flat 2-way tag lists (regression: a tag of -1
        counted as a hit against an uninitialized way)."""
        trace = _machine_trace(_SMOKE_ASM)
        records = [r._replace(address=r.address - (1 << 20)) for r in trace]
        shifted = Trace(records=records, static=trace.static)
        model = OutOfOrderModel()
        assert asdict(model.run(shifted, kernel="compiled")) == asdict(
            model.run(shifted, kernel="reference")
        )

    def test_in_place_entry_replacement_rebakes_the_table(self):
        """StaticInfo.add_entry over an existing uid changes no shape
        observable; the version counter must still invalidate the baked
        table so the kernels keep agreeing (regression: stale table)."""
        trace = _machine_trace(_SMOKE_ASM)
        static = trace.static
        model = OutOfOrderModel()
        before = asdict(model.run(trace, kernel="compiled"))
        hot_uid = max(trace.uid_counts(), key=trace.uid_counts().get)
        version = static.version
        static.add_entry(replace(static[hot_uid], latency=9))
        assert static.version > version
        after_reference = asdict(model.run(trace, kernel="reference"))
        after_compiled = asdict(model.run(trace, kernel="compiled"))
        assert after_compiled == after_reference
        assert after_compiled["cycles"] != before["cycles"]

    def test_empty_trace(self):
        trace = Trace(records=[], static=StaticInfo())
        model = OutOfOrderModel()
        for kernel in TIMING_KERNELS:
            timing = model.run(trace, kernel=kernel)
            assert timing.cycles == 1
            assert timing.instructions == 0


# ----------------------------------------------------------------------
# Kernel selection
# ----------------------------------------------------------------------
class TestKernelSelection:
    def test_env_vocabulary(self, monkeypatch):
        monkeypatch.delenv("REPRO_TIMING_KERNEL", raising=False)
        assert _default_kernel() == "compiled"
        for value in ("reference", "REF", "slow", "off", "0", "none"):
            monkeypatch.setenv("REPRO_TIMING_KERNEL", value)
            assert _default_kernel() == "reference"
        for value in ("compiled", "", "anything-else"):
            monkeypatch.setenv("REPRO_TIMING_KERNEL", value)
            assert _default_kernel() == "compiled"

    def test_env_selects_kernel_end_to_end(self, monkeypatch):
        trace = _machine_trace(_SMOKE_ASM)
        calls = []
        real = tkernel.run_compiled
        monkeypatch.setattr(
            tkernel, "run_compiled", lambda *a, **k: calls.append(1) or real(*a, **k)
        )
        monkeypatch.setenv("REPRO_TIMING_KERNEL", "reference")
        OutOfOrderModel().run(trace)
        assert not calls
        monkeypatch.setenv("REPRO_TIMING_KERNEL", "compiled")
        OutOfOrderModel().run(trace)
        assert len(calls) == 1

    def test_explicit_kernel_beats_env(self, monkeypatch):
        trace = _machine_trace(_SMOKE_ASM)
        calls = []
        real = tkernel.run_compiled
        monkeypatch.setattr(
            tkernel, "run_compiled", lambda *a, **k: calls.append(1) or real(*a, **k)
        )
        monkeypatch.setenv("REPRO_TIMING_KERNEL", "reference")
        OutOfOrderModel(kernel="compiled").run(trace)
        assert len(calls) == 1
        OutOfOrderModel().run(trace, kernel="compiled")
        assert len(calls) == 2

    def test_unknown_kernel_rejected(self):
        with pytest.raises(ValueError):
            OutOfOrderModel(kernel="bogus")
        with pytest.raises(ValueError):
            OutOfOrderModel().run(Trace(records=[], static=StaticInfo()), kernel="bogus")


# ----------------------------------------------------------------------
# Packed static table
# ----------------------------------------------------------------------
class TestStaticTable:
    def test_columns_match_entries(self, ijpeg_trace):
        static = ijpeg_trace.static
        table = bake_static_table(static)
        srcs = table.src_tuples()
        for index, entry in enumerate(static.entries):
            if entry is None:
                continue
            assert table.latency[index] == entry.latency
            expected_fu = {"imul": tkernel.FU_IMUL, "mem": tkernel.FU_MEM}.get(
                entry.functional_unit, tkernel.FU_ALU
            )
            assert table.fu_class[index] == expected_fu
            cls = table.class_bits[index]
            assert bool(cls & tkernel.CLS_LOAD) == entry.is_load
            assert bool(cls & tkernel.CLS_STORE) == entry.is_store
            assert bool(cls & tkernel.CLS_BRANCH) == entry.is_branch
            assert bool(cls & tkernel.CLS_CONDITIONAL) == entry.is_conditional
            assert bool(cls & tkernel.CLS_CALL_RETURN) == (
                entry.is_call or entry.is_return
            )
            expected_dest = (
                -1
                if entry.dest_reg is None or entry.dest_reg == 31
                else entry.dest_reg
            )
            assert table.dest_reg[index] == expected_dest
            assert srcs[index] == entry.src_regs

    def test_hot_word_fuses_the_columns(self, ijpeg_trace):
        table = bake_static_table(ijpeg_trace.static)
        for index in range(len(table.hot_word)):
            hot = table.hot_word[index]
            assert hot & tkernel.HOT_LATENCY_MASK == table.latency[index]
            fu = table.fu_class[index]
            assert bool(hot & tkernel.HOT_IMUL) == (fu == tkernel.FU_IMUL)
            assert bool(hot & tkernel.HOT_MEM) == (fu == tkernel.FU_MEM)
            assert (hot >> 10) & 0x1F == table.class_bits[index]
            assert (hot >> tkernel.HOT_DEST_SHIFT) == table.dest_reg[index] + 1

    def test_unpackable_entries_rejected(self, ijpeg_trace):
        source = next(iter(ijpeg_trace.static))
        info = StaticInfo()
        info.add_entry(replace(source, uid=1, latency=4096))
        with pytest.raises(ValueError, match="latency"):
            bake_static_table(info)
        info = StaticInfo()
        info.add_entry(replace(source, uid=1, src_regs=tuple(range(8))))
        with pytest.raises(ValueError, match="source registers"):
            bake_static_table(info)

    def test_table_cached_per_static_and_invalidated_on_growth(self, ijpeg_trace):
        source = next(iter(ijpeg_trace.static))
        info = StaticInfo()
        info.add_entry(replace(source, uid=50))
        first = tkernel._table_for(info)
        assert tkernel._table_for(info) is first
        # Mutating the static info must rotate the stamp and rebake.
        info.add_entry(replace(source, uid=53))
        second = tkernel._table_for(info)
        assert second is not first
        assert second.stamp != first.stamp


# ----------------------------------------------------------------------
# Branch predictor units
# ----------------------------------------------------------------------
class TestCombinedPredictorUnits:
    def test_selector_crossover(self):
        """The selector must migrate toward whichever component predicts
        a history-dependent alternating branch correctly (gshare), and
        the misprediction rate must collapse once it has."""
        predictor = CombinedPredictor()
        outcome = True
        for _ in range(512):
            predictor.update(0x9000, outcome)
            outcome = not outcome
        warm_mispredictions = predictor.mispredictions
        for _ in range(512):
            predictor.update(0x9000, outcome)
            outcome = not outcome
        late = predictor.mispredictions - warm_mispredictions
        assert late < 16  # gshare, via the selector, nails the pattern
        assert predictor.misprediction_rate < 0.5

    def test_history_wraparound(self):
        """With 2 history bits, the history register must stay masked,
        and patterns longer than the history must keep aliasing."""
        config = PredictorConfig(
            gshare_entries=8, history_bits=2, bimodal_entries=4, selector_entries=4
        )
        predictor = CombinedPredictor(config)
        for step in range(64):
            predictor.update(0x40, step % 3 == 0)
            assert 0 <= predictor._history < 4
        assert predictor.lookups == 64

    def test_prediction_before_update_is_weakly_not_taken(self):
        predictor = CombinedPredictor()
        assert predictor.predict(0x1234) is False
        assert predictor.misprediction_rate == 0.0

    def test_minimum_table_sizes_validated(self):
        with pytest.raises(ValueError):
            PredictorConfig(gshare_entries=0)
        with pytest.raises(ValueError):
            PredictorConfig(history_bits=-1)


# ----------------------------------------------------------------------
# Cache units
# ----------------------------------------------------------------------
class TestCacheUnits:
    def test_set_and_tag_aliasing(self):
        """Addresses one set-stride apart alias the same set with
        different tags; addresses one line apart do not conflict."""
        config = CacheConfig(
            size_bytes=4 * 32, associativity=1, line_bytes=32,
            hit_cycles=1, miss_penalty_cycles=6,
        )  # 4 sets, direct-mapped: set stride 128
        cache = Cache(config)
        assert cache.access(0x000) is False
        assert cache.access(0x080) is False  # same set, new tag: evicts
        assert cache.access(0x000) is False  # original line was evicted
        assert cache.access(0x020) is False  # different set: no conflict
        assert cache.access(0x020) is True

    def test_lru_eviction_at_the_boundary(self):
        """In a 2-way set the least-recently *used* way is evicted, and
        a hit refreshes recency."""
        config = CacheConfig(
            size_bytes=2 * 32, associativity=2, line_bytes=32,
            hit_cycles=1, miss_penalty_cycles=6,
        )  # one set, two ways
        cache = Cache(config)
        cache.access(0 * 32)
        cache.access(1 * 32)
        cache.access(0 * 32)  # refresh line 0: line 1 becomes LRU
        assert cache.access(2 * 32) is False  # evicts line 1
        assert cache.access(0 * 32) is True
        assert cache.access(1 * 32) is False

    def test_l2_shared_between_instruction_and_data_paths(self):
        config = MachineConfig()
        l2 = Cache(config.l2cache, name="l2")
        icache = CacheHierarchy(config.icache, l2, memory_latency=22)
        dcache = CacheHierarchy(config.dcache, l2, memory_latency=22)
        address = 0x4000
        miss = icache.access(address)
        assert miss > config.icache.hit_cycles
        assert l2.accesses == 1 and l2.misses == 1
        # The data path missing L1 on the same line must now hit in L2.
        hit_via_l2 = dcache.access(address)
        assert l2.accesses == 2 and l2.misses == 1
        assert hit_via_l2 == (
            config.dcache.hit_cycles + config.dcache.miss_penalty_cycles
        )

    def test_bad_geometry_rejected_at_construction(self):
        with pytest.raises(ValueError):
            CacheConfig(size_bytes=16, associativity=1, line_bytes=32,
                        hit_cycles=1, miss_penalty_cycles=6)
        with pytest.raises(ValueError):
            CacheConfig(size_bytes=1024, associativity=0, line_bytes=32,
                        hit_cycles=1, miss_penalty_cycles=6)


# ----------------------------------------------------------------------
# Slot allocators
# ----------------------------------------------------------------------
class TestSlotAllocators:
    def test_width_one_serializes(self):
        slots = _Slots(1)
        assert [slots.allocate(5) for _ in range(4)] == [5, 6, 7, 8]

    def test_width_n_packs_then_overflows(self):
        slots = _Slots(3)
        assert [slots.allocate(2) for _ in range(5)] == [2, 2, 2, 3, 3]

    def test_release_below_keeps_dict_bounded_without_changing_results(self):
        """The regression probe for the unbounded ``_used`` dict: under
        a monotone floor the pruned allocator must return exactly the
        same cycles as an unpruned twin while holding a bounded dict."""
        pruned = _Slots(2)
        unpruned = _Slots(2)
        for cycle in range(0, 200_000, 2):
            for _ in range(3):  # overflows each cycle into the next
                assert pruned.allocate(cycle) == unpruned.allocate(cycle)
            pruned.release_below(cycle - 64)
        assert len(unpruned._used) > _Slots.PRUNE_THRESHOLD
        assert len(pruned._used) <= _Slots.PRUNE_THRESHOLD + 64

    def test_reference_walk_prunes_slot_dicts_on_long_traces(self, monkeypatch):
        """End to end: with a tiny prune threshold, the reference walk's
        allocators must stay small across a long trace."""
        observed = []
        original = _Slots.release_below

        def spying(self, floor):
            original(self, floor)
            observed.append(len(self._used))

        monkeypatch.setattr(_Slots, "PRUNE_THRESHOLD", 64)
        monkeypatch.setattr(_Slots, "release_below", spying)
        trace = _machine_trace(_SMOKE_ASM)
        OutOfOrderModel().run(trace, kernel="reference")
        assert observed, "the walk never released exhausted cycles"
        assert max(observed) <= 64 + 128


def test_ring_allocator_growth_rehashes_live_entries():
    cycle_at, count = [-1] * 8, [0] * 8
    # Live tenants at cycles 100..103 (slots 4..7), stale one at cycle 3.
    for cycle in (100, 101, 102, 103):
        cycle_at[cycle & 7] = cycle
        count[cycle & 7] = 2
    cycle_at[3], count[3] = 3, 9
    new_cycle_at, new_count, mask = tkernel._grow_ring(cycle_at, count, 100, 40)
    assert mask >= 63  # grew until the span fits
    for cycle in (100, 101, 102, 103):
        assert new_cycle_at[cycle & mask] == cycle
        assert new_count[cycle & mask] == 2
    assert all(c != 3 for c in new_cycle_at)  # the stale tenant is gone
