"""Block-compiler contracts beyond trace equivalence.

Three properties the differential harness cannot see:

1. **Compiled-program reuse** — a second ``run()`` on the same ``Machine``
   performs *zero* handler/block compilation, in both compiled tiers
   (the acceptance probe for the recompile-every-run fix).
2. **Deterministic generation** — the generated source is a pure function
   of the program, so it can serve as a debugging artifact and the
   simulator code fingerprint covers it through ``sim/blockc.py``.
3. **Snapshot hygiene** — mutating the block compiler's source rotates
   the simulator-side fingerprint, so stored binary trace snapshots are
   re-simulated rather than replayed after a semantics change.
"""

from __future__ import annotations

from pathlib import Path

from repro.asm import assemble_program
from repro.sim import Machine
from repro.sim import blockc
from repro.sim.blockc import compile_blocks

_LOOP_ASM = """
.data buf 8 64
.func helper 1
entry:
    add v0, a0, a0
    ret
.endfunc
.func main 0
entry:
    li r1, 0
    li r2, =buf
loop:
    add r1, r1, 1
    stq r1, 0(r2)
    ldq r3, 0(r2)
    mov a0, r3
    jsr helper
    cmplt r4, r1, 5
    bne r4, loop
done:
    print v0
    halt
.endfunc
"""


class TestCompiledProgramReuse:
    def test_second_run_performs_zero_compilation(self, monkeypatch):
        """The acceptance probe: repeated runs only *bind* per-run state —
        no instruction makers are rebuilt, no block program is recompiled,
        for either compiled tier or trace flavour."""
        import repro.sim.machine as machine_module

        program = assemble_program(_LOOP_ASM)
        machine = Machine(program)

        calls = {"makers": 0, "blocks": 0}
        real_maker = Machine._instruction_maker
        real_compile = machine_module.compile_blocks

        def counting_maker(self, *args, **kwargs):
            calls["makers"] += 1
            return real_maker(self, *args, **kwargs)

        def counting_compile(*args, **kwargs):
            calls["blocks"] += 1
            return real_compile(*args, **kwargs)

        monkeypatch.setattr(Machine, "_instruction_maker", counting_maker)
        monkeypatch.setattr(machine_module, "compile_blocks", counting_compile)

        first = {
            (tier, trace): machine.run(collect_trace=trace, dispatch=tier)
            for tier in ("block", "fast")
            for trace in (True, False)
        }
        assert calls["makers"] == len(machine._flat)
        assert calls["blocks"] == 2  # one block program per trace flavour

        calls["makers"] = calls["blocks"] = 0
        for (tier, trace), cold in first.items():
            warm = machine.run(collect_trace=trace, dispatch=tier)
            assert warm.output == cold.output
            assert warm.instructions == cold.instructions
            assert warm.block_counts == cold.block_counts
            if trace:
                assert warm.trace.records == cold.trace.records
        assert calls == {"makers": 0, "blocks": 0}, "second run must not compile"

    def test_repeated_runs_share_one_block_program(self):
        machine = Machine(assemble_program(_LOOP_ASM))
        machine.run(collect_trace=True, dispatch="block")
        program_object = machine._block_programs[True]
        machine.run(collect_trace=True, dispatch="block")
        assert machine._block_programs[True] is program_object


class TestGeneratedSource:
    def test_generation_is_deterministic(self):
        program = assemble_program(_LOOP_ASM)
        first = compile_blocks(Machine(program), collect_trace=True)
        second = compile_blocks(Machine(program), collect_trace=True)
        assert first.source == second.source
        assert first.lengths == second.lengths
        assert first.entry_points == second.entry_points

    def test_units_cover_blocks_and_call_return_sites(self):
        program = assemble_program(_LOOP_ASM)
        machine = Machine(program)
        compiled = compile_blocks(machine, collect_trace=False)
        # Every basic-block start is an entry point...
        for start in machine._block_start.values():
            if start < len(machine._flat):
                assert start in compiled.entry_points
        # ...and so is the instruction after every call.
        for pc, (_, _, inst) in enumerate(machine._flat):
            if inst.is_call and pc + 1 < len(machine._flat):
                assert pc + 1 in compiled.entry_points
        # Unit lengths tile the whole program.
        assert sum(compiled.lengths) == len(machine._flat)


class TestSnapshotFingerprint:
    def test_fingerprint_covers_block_compiler_source(self):
        from repro.experiments.store import _sim_source_paths

        paths = {path.name for path in _sim_source_paths()}
        assert "blockc.py" in paths
        assert "machine.py" in paths
        assert "trace.py" in paths

    def _mutated_blockc(self, monkeypatch):
        """Patch Path.read_bytes so only sim/blockc.py appears edited."""
        target = Path(blockc.__file__).resolve()
        real_read = Path.read_bytes

        def fake_read(path):
            data = real_read(path)
            if Path(path).resolve() == target:
                data += b"\n# semantics changed\n"
            return data

        monkeypatch.setattr(Path, "read_bytes", fake_read)

    def _clear_fingerprint_caches(self):
        from repro.experiments import store as store_module

        store_module._sim_fingerprint.cache_clear()
        store_module._code_fingerprint.cache_clear()
        store_module._trace_material.cache_clear()
        store_module._config_material.cache_clear()

    def test_mutating_block_compiler_rotates_sim_fingerprint(self, monkeypatch):
        from repro.experiments import store as store_module

        try:
            self._clear_fingerprint_caches()
            base = store_module._sim_fingerprint()
            self._mutated_blockc(monkeypatch)
            self._clear_fingerprint_caches()
            assert store_module._sim_fingerprint() != base
        finally:
            monkeypatch.undo()
            self._clear_fingerprint_caches()

    def test_mutated_compiler_never_replays_stale_snapshots(
        self, tmp_path, monkeypatch
    ):
        """End to end: after a block-compiler edit, the engine re-simulates
        instead of replaying the previous generation's trace snapshot."""
        from repro.experiments.engine import ExperimentConfig, ExperimentEngine
        from repro.experiments.store import ResultStore

        monkeypatch.setenv("REPRO_RESULT_STORE", str(tmp_path))
        monkeypatch.delenv("REPRO_TRACE_STORE", raising=False)

        calls = {"count": 0}
        original_run = Machine.run

        def counting_run(self, *args, **kwargs):
            calls["count"] += 1
            return original_run(self, *args, **kwargs)

        monkeypatch.setattr(Machine, "run", counting_run)

        config = ExperimentConfig(workload="ijpeg")
        try:
            self._clear_fingerprint_caches()
            ExperimentEngine(store=ResultStore(tmp_path), jobs=1).evaluate(config)
            assert calls["count"] > 0

            self._mutated_blockc(monkeypatch)
            self._clear_fingerprint_caches()
            calls["count"] = 0
            warm = ExperimentEngine(store=ResultStore(tmp_path), jobs=1).evaluate(config)
            assert calls["count"] > 0, "stale snapshot must not be replayed"
            assert not warm.replayed_from_store
        finally:
            monkeypatch.undo()
            self._clear_fingerprint_caches()
