"""Tests for VRS: energy model, candidates, specialization transform, folding."""

from repro.core import (
    ALU_ENERGY_SAVINGS_NJ,
    EnergyModel,
    GuardCost,
    VRSConfig,
    ValueRange,
    alu_energy_saving_nj,
    fold_constants_in_region,
    run_vrs,
    specialize_candidate,
)
from repro.ir import IRBuilder, Program, validate_function
from repro.isa import Instruction, Opcode, Reg, Width
from repro.minic import compile_source
from repro.sim import Machine, ValueProfiler, ValueTable


class TestEnergyModel:
    def test_table1_is_antisymmetric_and_consistent(self):
        for dest, row in ALU_ENERGY_SAVINGS_NJ.items():
            for source, value in row.items():
                assert value == -ALU_ENERGY_SAVINGS_NJ[source][dest]
        assert alu_energy_saving_nj(Width.QUAD, Width.BYTE) == 6.0
        # Narrowing in two steps equals narrowing in one.
        assert (
            alu_energy_saving_nj(Width.QUAD, Width.WORD)
            + alu_energy_saving_nj(Width.WORD, Width.BYTE)
            == alu_energy_saving_nj(Width.QUAD, Width.BYTE)
        )

    def test_guard_costs_follow_section_3_2(self):
        guard = GuardCost()
        zero_test = guard.test_cost_nj(ValueRange.constant(0))
        single_value = guard.test_cost_nj(ValueRange.constant(5))
        full_range = guard.test_cost_nj(ValueRange(1, 8))
        assert zero_test < single_value < full_range
        assert guard.test_instruction_count(ValueRange.constant(0)) == 1
        assert guard.test_instruction_count(ValueRange(1, 8)) == 4

    def test_no_saving_when_width_grows(self):
        model = EnergyModel()
        inst = Instruction(Opcode.ADD, Reg(1), (Reg(2), Reg(3)))
        assert model.instruction_saving_nj(inst, Width.BYTE, Width.QUAD) == 0.0
        assert model.instruction_saving_nj(inst, Width.QUAD, Width.BYTE) > 0.0


class TestValueProfiler:
    def test_table_tracks_dominant_value(self):
        table = ValueTable(capacity=4)
        for _ in range(90):
            table.observe(7)
        for value in range(10):
            table.observe(value + 100)
        dominant = table.dominant_value()
        assert dominant[0] == 7
        assert dominant[1] > 0.8
        assert table.total == 100

    def test_range_frequency_is_conservative(self):
        table = ValueTable(capacity=2, clean_interval=1000)
        for value in (1, 2, 3, 4, 5, 6):
            table.observe(value)
        # Only two values fit the table; the rest count as "outside".
        assert table.range_frequency(1, 6) <= 1.0
        assert table.covered <= table.total

    def test_profiler_only_observes_watched_uids(self):
        profiler = ValueProfiler({42})
        profiler.observe(42, 5)
        assert profiler.table(42).total == 1
        assert profiler.table(99) is None


def _straightline_function():
    builder = IRBuilder("f")
    builder.block("entry")
    builder.load(Opcode.LDW, Reg(1), Reg(16), 0)
    builder.add(Reg(2), Reg(1), 10)
    builder.mul(Reg(3), Reg(2), 3)
    builder.store(Opcode.STW, Reg(3), Reg(16), 8)
    builder.ret()
    return builder.build()


class TestSpecializationTransform:
    def test_range_guard_and_clone_created(self):
        function = _straightline_function()
        load = next(i for i in function.instructions() if i.op is Opcode.LDW)
        record = specialize_candidate(function, load.uid, ValueRange(0, 15))
        assert record is not None
        assert len(record.guard_uids) == 4  # two compares, an AND, a branch
        assert record.cloned_instructions > 0
        validate_function(function)

    def test_single_value_guard_is_shorter(self):
        function = _straightline_function()
        load = next(i for i in function.instructions() if i.op is Opcode.LDW)
        record = specialize_candidate(function, load.uid, ValueRange.constant(0))
        assert len(record.guard_uids) == 1  # zero test is a lone branch
        validate_function(function)

    def test_specialization_preserves_behaviour(self):
        source = """
        int modes[64];
        long acc;
        int main() {
            int i;
            int m;
            acc = 0;
            for (i = 0; i < 64; i = i + 1) {
                m = modes[i];
                if (m == 1) { acc = acc + i; } else { acc = acc + m * i; }
            }
            print(acc);
            return 0;
        }
        """
        program = compile_source(source)
        values = tuple(1 if i % 7 else 3 for i in range(64))
        program.data_objects["modes"].initial_values = values
        baseline = Machine(program).run().output

        specialized_program = compile_source(source)
        specialized_program.data_objects["modes"].initial_values = values
        result = run_vrs(specialized_program, VRSConfig(threshold_nj=1.0))
        assert Machine(specialized_program).run().output == baseline
        assert result.points_profiled >= result.points_specialized


class TestConstantFolding:
    def test_fold_constants_and_resolve_branch(self):
        builder = IRBuilder("g")
        builder.block("entry")
        builder.li(Reg(1), 0)
        builder.block("region")
        builder.add(Reg(2), Reg(1), 5)
        builder.cmp(Opcode.CMPEQ, Reg(3), Reg(2), 5)
        builder.beq(Reg(3), "dead")
        builder.block("live")
        builder.print_(Reg(2))
        builder.br("exit")
        builder.block("dead")
        builder.print_(Reg(1))
        builder.block("exit")
        builder.halt()
        function = builder.build()

        stats = fold_constants_in_region(
            function,
            region_labels={"region", "live", "dead"},
            entry_label="region",
            seed={Reg(1): 0},
        )
        assert stats.folded_to_constant >= 2
        assert stats.branches_resolved == 1
        # The "dead" block became unreachable and was removed.
        assert "dead" in stats.blocks_removed
        program = Program(entry="g")
        program.add_function(function)
        assert Machine(program).run().output == [5]


class TestVrsPipeline:
    def test_skewed_mode_variable_gets_specialized(self):
        source = """
        int modes[256];
        int table[64];
        long acc;
        long work(int mode, int i) {
            long r;
            if (mode == 0) { r = table[i & 63] + i; }
            else { r = (table[i & 63] * mode) + (i & mode); }
            return r;
        }
        int main() {
            int i;
            acc = 0;
            for (i = 0; i < 256; i = i + 1) {
                acc = acc + work(modes[i], i);
            }
            print(acc);
            return 0;
        }
        """
        program = compile_source(source)
        program.data_objects["modes"].initial_values = tuple(
            0 if i % 11 else 5 for i in range(256)
        )
        program.data_objects["table"].initial_values = tuple((i * 3) & 63 for i in range(64))
        baseline_program = compile_source(source)
        baseline_program.data_objects["modes"].initial_values = program.data_objects[
            "modes"
        ].initial_values
        baseline_program.data_objects["table"].initial_values = program.data_objects[
            "table"
        ].initial_values
        baseline = Machine(baseline_program).run().output

        result = run_vrs(program, VRSConfig(threshold_nj=5.0))
        assert result.points_profiled > 0
        assert Machine(program).run().output == baseline
        # Figure 4/5 bookkeeping stays consistent.
        assert result.points_specialized == len(result.records)
        assert result.static_specialized_instructions >= 0
