"""Tests for the assembler: parsing, symbol resolution, round-tripping."""

import pytest

from repro.asm import AsmSyntaxError, assemble_program, tokenize_line
from repro.ir import format_program
from repro.isa import Opcode, Width
from repro.sim import Machine

_PROGRAM = """
.data table 32 32 5 6 7 8
.func main 0
entry:
    li r1, =table
    ldw r2, 0(r1)
    ldw r3, 4(r1)
    add.32 r4, r2, r3
    print r4
    halt
.endfunc
"""


class TestLexer:
    def test_tokenize_instruction(self):
        tokens = tokenize_line("  add r1, r2, 3  ; comment")
        assert [t.text for t in tokens] == ["add", "r1", ",", "r2", ",", "3"]

    def test_symbol_reference(self):
        tokens = tokenize_line("li r1, =table")
        assert tokens[-1].kind == "symbol"
        assert tokens[-1].text == "table"

    def test_hex_and_negative_numbers(self):
        tokens = tokenize_line("and r1, r2, 0xff")
        assert tokens[-1].value == 255
        tokens = tokenize_line("add r1, r2, -7")
        assert tokens[-1].value == -7

    def test_bad_character(self):
        with pytest.raises(AsmSyntaxError):
            tokenize_line("add r1, r2, $3")


class TestAssembler:
    def test_assemble_and_run(self):
        program = assemble_program(_PROGRAM)
        result = Machine(program).run()
        assert result.output == [11]

    def test_width_suffix(self):
        program = assemble_program(_PROGRAM)
        add = [i for i in program.functions["main"].instructions() if i.op is Opcode.ADD]
        assert add[0].width is Width.WORD

    def test_symbol_resolves_to_data_address(self):
        program = assemble_program(_PROGRAM)
        li = next(iter(program.functions["main"].instructions()))
        assert li.srcs[0].value == program.symbol_address("table")

    def test_memory_operand_forms(self):
        text = """
.func main 0
entry:
    ldq r1, 8(sp)
    ldq r2, sp, 16
    stq r1, 0(sp)
    halt
.endfunc
"""
        program = assemble_program(text)
        instructions = list(program.functions["main"].instructions())
        assert instructions[0].srcs[1].value == 8
        assert instructions[1].srcs[1].value == 16

    def test_unknown_mnemonic(self):
        with pytest.raises(AsmSyntaxError):
            assemble_program(".func main 0\nentry:\n    frobnicate r1\n    halt\n.endfunc")

    def test_missing_endfunc(self):
        with pytest.raises(AsmSyntaxError):
            assemble_program(".func main 0\nentry:\n    halt\n")

    def test_branch_to_unknown_label(self):
        with pytest.raises(Exception):
            assemble_program(".func main 0\nentry:\n    br nowhere\n    halt\n.endfunc")


class TestRoundTrip:
    def test_print_then_reassemble_preserves_behaviour(self):
        program = assemble_program(_PROGRAM)
        text = format_program(program)
        reassembled = assemble_program(text)
        assert Machine(reassembled).run().output == Machine(program).run().output
