"""Differential harness for the columnar trace engine.

Locks the columnar :class:`~repro.sim.trace.Trace` and its columnar
consumers against **verbatim record-list references** — copies of the
walkers as they existed when the trace was a ``list[TraceRecord]`` — in
the style of ``tests/test_power_fused.py``:

1. **Emission**: all three interpreter tiers (reference, fast-dispatch,
   block-compiled) must produce identical records through the shared
   columnar append encoding, and a trace rebuilt from its own record view
   must be indistinguishable from the machine-emitted original.
2. **Kernels, bit-exact**: cycle counts (reference timing walk), energy
   shape counts (reference per-record fold), energy breakdowns for all
   six gating policies, all four summary distributions and the width
   distribution must match the record-list references exactly — integer
   results bit-for-bit, float accumulations float-for-float (both sides
   share the canonical sorted-shape kernel).
3. **Coverage**: hypothesis-generated programs (random arithmetic,
   logic, memory traffic, loops, calls) plus every real suite workload.
4. **Snapshots**: a trace survives the binary snapshot round trip
   exactly, and an analysis-only re-run replays from the snapshot store
   with **zero** simulator calls while producing a bit-identical summary.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import asdict, replace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.asm import assemble_program
from repro.experiments import POLICY_NAMES, policy_for
from repro.experiments.summary import COUNTED_KINDS, aggregate_trace
from repro.isa import OpKind, Width, significant_bytes
from repro.isa.opcodes import OPERATION_TYPE
from repro.power import MultiPolicyEnergyAccountant
from repro.sim import Machine, Trace
from repro.sim.snapshot import SimulationArtifact, decode_artifact, encode_artifact
from repro.sim.trace import StaticInfo
from repro.uarch import MachineConfig, OutOfOrderModel, TimingResult
from repro.uarch.branch_predictor import CombinedPredictor
from repro.uarch.caches import Cache, CacheHierarchy
from repro.workloads import SUITE_NAMES, workload_by_name


# ----------------------------------------------------------------------
# Verbatim record-list references
# ----------------------------------------------------------------------
class _RefSlots:
    """Verbatim copy of the timing model's per-cycle slot allocator."""

    def __init__(self, width):
        self.width = width
        self._used = {}

    def allocate(self, earliest):
        cycle = earliest
        used = self._used
        while used.get(cycle, 0) >= self.width:
            cycle += 1
        used[cycle] = used.get(cycle, 0) + 1
        return cycle


def _reference_timing(records, static, config=None) -> TimingResult:
    """The record-list timing walk, verbatim from the pre-columnar model."""
    config = config or MachineConfig()
    l2 = Cache(config.l2cache, name="l2")
    memory_latency = config.memory_first_chunk_cycles + 3 * config.memory_interchunk_cycles
    icache = CacheHierarchy(config.icache, l2, memory_latency)
    dcache = CacheHierarchy(config.dcache, l2, memory_latency)
    predictor = CombinedPredictor(config.predictor)

    issue_slots = _RefSlots(config.issue_width)
    retire_slots = _RefSlots(config.retire_width)
    alu_slots = _RefSlots(config.int_alus)
    mul_slots = _RefSlots(config.int_muls)
    lsq_slots = _RefSlots(config.lsq_ports)

    reg_ready = {}
    window_commits = [0] * config.max_in_flight
    window_index = 0
    fetch_cycle = 0
    fetched_in_cycle = 0
    current_fetch_line = -1
    redirect_cycle = 0
    last_commit = 0
    loads = stores = 0
    line_bytes = config.icache.line_bytes
    frontend = config.frontend_depth

    for record in records:
        entry = static[record.uid]

        earliest_fetch = max(fetch_cycle, redirect_cycle)
        if earliest_fetch > fetch_cycle:
            fetch_cycle = earliest_fetch
            fetched_in_cycle = 0
        line = record.address // line_bytes
        if line != current_fetch_line:
            current_fetch_line = line
            latency = icache.access(record.address)
            if latency > config.icache.hit_cycles:
                fetch_cycle += latency - config.icache.hit_cycles
                fetched_in_cycle = 0
        if fetched_in_cycle >= config.fetch_width:
            fetch_cycle += 1
            fetched_in_cycle = 0
        fetch = fetch_cycle
        fetched_in_cycle += 1

        dispatch = fetch + frontend
        window_slot_free = window_commits[window_index]
        if window_slot_free > dispatch:
            dispatch = window_slot_free

        ready = dispatch
        for reg_index in entry.src_regs:
            producer_complete = reg_ready.get(reg_index, 0)
            if producer_complete > ready:
                ready = producer_complete
        issue = issue_slots.allocate(ready)
        if entry.functional_unit == "imul":
            issue = mul_slots.allocate(issue)
        elif entry.functional_unit == "mem":
            issue = lsq_slots.allocate(issue)
        else:
            issue = alu_slots.allocate(issue)

        latency = entry.latency
        if entry.is_load or entry.is_store:
            if entry.is_load:
                loads += 1
            else:
                stores += 1
            if record.mem_address is not None:
                latency = dcache.access(record.mem_address)
                if entry.is_store:
                    latency = 1
        complete = issue + latency

        commit = retire_slots.allocate(max(complete, last_commit))
        last_commit = commit
        window_commits[window_index] = commit
        window_index = (window_index + 1) % config.max_in_flight

        if entry.dest_reg is not None and entry.dest_reg != 31:
            reg_ready[entry.dest_reg] = complete

        if entry.is_branch and record.taken is not None:
            if entry.is_conditional:
                correct = predictor.update(record.address, record.taken)
                if not correct:
                    redirect_cycle = complete + config.mispredict_redirect_penalty
                    current_fetch_line = -1
        elif (entry.is_call or entry.is_return) and record.taken:
            redirect_cycle = max(redirect_cycle, fetch + 1)
            current_fetch_line = -1

    cycles = max(last_commit, fetch_cycle) + 1
    return TimingResult(
        cycles=cycles,
        instructions=len(records),
        branch_lookups=predictor.lookups,
        branch_mispredictions=predictor.mispredictions,
        icache_accesses=icache.l1.accesses,
        icache_misses=icache.l1.misses,
        dcache_accesses=dcache.l1.accesses,
        dcache_misses=dcache.l1.misses,
        l2_accesses=l2.accesses,
        l2_misses=l2.misses,
        loads=loads,
        stores=stores,
    )


def _reference_shape_counts(records):
    """The fused accountant's per-record shape fold, verbatim (PR 2)."""
    sig_cache = {}
    sig_get = sig_cache.get
    counts = {}
    counts_get = counts.get
    for record in records:
        srcs = record.srcs
        if srcs:
            sig_list = []
            for value in srcs:
                sig = sig_get(value)
                if sig is None:
                    sig = significant_bytes(value)
                    sig_cache[value] = sig
                sig_list.append(sig)
            sigs = tuple(sig_list)
        else:
            sigs = ()
        result = record.result
        if result is None:
            rsig = -1
        else:
            rsig = sig_get(result)
            if rsig is None:
                rsig = significant_bytes(result)
                sig_cache[result] = rsig
        key = (record.uid, sigs, rsig)
        counts[key] = counts_get(key, 0) + 1
    return counts


def _reference_aggregate(records, static):
    """The summary aggregation's fused record walk, verbatim (seed)."""
    width_distribution = {w: 0 for w in Width.all_widths()}
    counted = {w: 0 for w in Width.all_widths()}
    sizes = {size: 0 for size in range(1, 9)}
    per_type = {}
    for record in records:
        entry = static[record.uid]
        kind = entry.kind
        width = entry.memory_width if entry.memory_width is not None else entry.width
        width_distribution[width] += 1
        if kind in COUNTED_KINDS:
            counted[width] += 1
            if kind not in (OpKind.LOAD, OpKind.STORE, OpKind.MOVE):
                op_type = OPERATION_TYPE[entry.opcode]
                widths = per_type.setdefault(op_type, {w: 0 for w in Width.all_widths()})
                widths[entry.width] += 1
        if record.result is not None:
            sizes[significant_bytes(record.result)] += 1
    return width_distribution, counted, sizes, per_type


def _canonical_shapes(legacy_counts):
    """Legacy (record-order, tuple-sig) shape counts → canonical form."""
    return sorted(
        ((uid, bytes(sigs), rsig), count) for (uid, sigs, rsig), count in legacy_counts.items()
    )


def _all_policies():
    return {name: policy_for(name) for name in POLICY_NAMES}


# ----------------------------------------------------------------------
# Hypothesis-generated programs
# ----------------------------------------------------------------------
_ARITH_OPS = ("add", "sub", "mul", "and", "or", "xor", "sll", "srl")
_CMP_OPS = ("cmpeq", "cmplt", "cmple", "cmpult")
_WIDTH_SUFFIXES = ("", ".8", ".16", ".32")
_IMMEDIATES = (-129, -1, 0, 1, 7, 127, 128, 255, 4095, 2**31, 2**40 - 3)


@st.composite
def _programs(draw) -> str:
    """Small terminating programs mixing every trace-record shape.

    Structure: a data segment, an argument-doubling helper (exercises
    call/return records), a counted loop whose body is a random mix of
    arithmetic, comparisons, cmov, sign extension, memory traffic and a
    data-dependent forward branch.
    """
    body_ops = draw(st.lists(st.integers(min_value=0, max_value=6), min_size=1, max_size=10))
    trip_count = draw(st.integers(min_value=1, max_value=6))
    seed_value = draw(st.sampled_from(_IMMEDIATES))
    lines = [
        ".data buf 64 64",
        ".func helper 1",
        "entry:",
        "    add v0, a0, a0",
        "    ret",
        ".endfunc",
        ".func main 0",
        "entry:",
        f"    li r1, {seed_value}",
        "    li r2, =buf",
        "    li r3, 0",
        "loop:",
    ]
    for index, choice in enumerate(body_ops):  # r4..r8 rotate as destinations
        dest = f"r{4 + (index % 5)}"
        if choice == 0:
            op = draw(st.sampled_from(_ARITH_OPS)) + draw(st.sampled_from(_WIDTH_SUFFIXES))
            imm = draw(st.sampled_from(_IMMEDIATES))
            lines.append(f"    {op} {dest}, r1, {imm}")
        elif choice == 1:
            op = draw(st.sampled_from(_CMP_OPS))
            lines.append(f"    {op} {dest}, r1, r3")
        elif choice == 2:
            cmov = draw(st.sampled_from(("cmoveq", "cmovne")))
            lines.append(f"    {cmov} {dest}, r3, r1")
        elif choice == 3:
            ext = draw(st.sampled_from(("sextb", "sextw", "mskb", "mskw")))
            lines.append(f"    {ext} {dest}, r1")
        elif choice == 4:
            offset = draw(st.integers(min_value=0, max_value=7)) * 8
            store = draw(st.sampled_from(("stq", "stw", "stb")))
            load = draw(st.sampled_from(("ldq", "ldw", "ldb")))
            lines.append(f"    {store} r1, {offset}(r2)")
            lines.append(f"    {load} {dest}, {offset}(r2)")
        elif choice == 5:
            lines.append("    mov a0, r1")
            lines.append("    jsr helper")
            lines.append(f"    mov {dest}, v0")
        else:
            skip = f"skip{index}"
            lines.append(f"    blt r1, {skip}")
            lines.append(f"fall{index}:")
            lines.append(f"    xor {dest}, r1, 85")
            lines.append(f"{skip}:")
            lines.append("    nop")
    lines += [
        "    add r1, r1, 3",
        "    add r3, r3, 1",
        f"    cmplt r9, r3, {trip_count}",
        "    bne r9, loop",
        "done:",
        "    print r1",
        "    print r3",
        "    halt",
        ".endfunc",
    ]
    return "\n".join(lines)


# ----------------------------------------------------------------------
# The differential check
# ----------------------------------------------------------------------
def _assert_columnar_equals_reference(trace: Trace, instructions: int, output: list[int]):
    """Every columnar consumer ≡ its verbatim record-list reference."""
    records = list(trace)
    static = trace.static

    # Record-view contract: indexing, slicing, equality, round trip.
    assert len(trace.records) == len(records)
    if records:
        assert trace[0] == records[0]
        assert trace[-1] == records[-1]
        assert trace.records[: min(3, len(records))] == records[: min(3, len(records))]
    assert trace.records == records
    rebuilt = Trace(records=records, static=static)
    assert rebuilt.records == records
    assert len(rebuilt) == len(trace)

    # uid_counts ≡ a full record walk.
    assert trace.uid_counts() == Counter(record.uid for record in records)

    # Timing: bit-exact against the verbatim record walk, on both the
    # machine-emitted trace and the record-rebuilt one.
    reference_timing = _reference_timing(records, static)
    assert asdict(OutOfOrderModel().run(trace)) == asdict(reference_timing)
    assert asdict(OutOfOrderModel().run(rebuilt)) == asdict(reference_timing)

    # Energy shape counts: bit-exact against the verbatim per-record fold.
    canonical = _canonical_shapes(_reference_shape_counts(records))
    assert MultiPolicyEnergyAccountant._shape_counts(trace) == canonical
    assert MultiPolicyEnergyAccountant._shape_counts(rebuilt) == canonical

    # Energy breakdowns: float-for-float identical for all six policies
    # regardless of trace storage.
    policies = _all_policies()
    fused = MultiPolicyEnergyAccountant(policies).account(trace, reference_timing)
    fused_rebuilt = MultiPolicyEnergyAccountant(policies).account(rebuilt, reference_timing)
    assert set(fused) == set(POLICY_NAMES)
    for name in POLICY_NAMES:
        assert fused[name].by_structure == fused_rebuilt[name].by_structure, name

    # Summary distributions and the width distribution: exact.
    reference_aggregates = _reference_aggregate(records, static)
    assert aggregate_trace(trace) == reference_aggregates
    assert aggregate_trace(rebuilt) == reference_aggregates
    assert trace.width_distribution() == reference_aggregates[0]

    # Binary snapshot round trip: records, kernels and metadata survive.
    artifact = SimulationArtifact(trace=trace, instructions=instructions, output=list(output))
    restored = decode_artifact(encode_artifact(artifact))
    assert restored.instructions == instructions
    assert restored.output == list(output)
    assert restored.trace.records == records
    assert MultiPolicyEnergyAccountant._shape_counts(restored.trace) == canonical
    assert asdict(OutOfOrderModel().run(restored.trace)) == asdict(reference_timing)


def _run_differential(asm: str):
    program = assemble_program(asm)
    machine = Machine(program)
    reference = machine.run(collect_trace=True, dispatch="reference")
    # All three interpreter tiers share one emission encoding; their
    # traces, outputs and counters must be indistinguishable.
    for tier in ("fast", "block"):
        run = machine.run(collect_trace=True, dispatch=tier)
        assert run.output == reference.output, tier
        assert run.instructions == reference.instructions, tier
        assert run.block_counts == reference.block_counts, tier
        assert run.call_counts == reference.call_counts, tier
        assert run.trace.records == reference.trace.records, tier
    _assert_columnar_equals_reference(run.trace, run.instructions, run.output)


class TestGeneratedPrograms:
    @settings(max_examples=25, deadline=None)
    @given(_programs())
    def test_columnar_equals_record_list_reference(self, asm):
        _run_differential(asm)


# ----------------------------------------------------------------------
# Real workloads
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def ijpeg_run():
    workload = workload_by_name("ijpeg")
    program = workload.build()
    workload.apply_input(program, "ref")
    return Machine(program).run(collect_trace=True)


class TestRealWorkloads:
    def test_ijpeg_columnar_equals_reference(self, ijpeg_run):
        _assert_columnar_equals_reference(
            ijpeg_run.trace, ijpeg_run.instructions, ijpeg_run.output
        )

    def test_ijpeg_memory_footprint_beats_record_list(self, ijpeg_run):
        """The point of the columnar layout: bytes per record must be far
        below a NamedTuple record's footprint (~150+ bytes)."""
        trace = ijpeg_run.trace
        assert trace.memory_bytes() / len(trace) < 64


@pytest.mark.suite
@pytest.mark.slow
@pytest.mark.parametrize("name", SUITE_NAMES)
def test_suite_workload_columnar_equals_reference(name):
    """Every suite workload, under all three dispatch tiers: bit-exact
    traces, outputs and counters, and every columnar consumer equal to its
    record-list reference."""
    workload = workload_by_name(name)
    program = workload.build()
    workload.apply_input(program, "ref")
    machine = Machine(program)
    reference = machine.run(collect_trace=True, dispatch="reference")
    for tier in ("fast", "block"):
        run = machine.run(collect_trace=True, dispatch=tier)
        assert run.output == reference.output, tier
        assert run.instructions == reference.instructions, tier
        assert run.block_counts == reference.block_counts, tier
        assert run.call_counts == reference.call_counts, tier
        assert run.trace.records == reference.trace.records, tier
    _assert_columnar_equals_reference(run.trace, run.instructions, run.output)


# ----------------------------------------------------------------------
# Overflow values (beyond int64) stay exact through the slow paths
# ----------------------------------------------------------------------
class TestOverflowValues:
    def _overflow_trace(self):
        program = assemble_program(
            """
.func main 0
entry:
    li r1, 1
    mov r2, r1
    add r3, r2, 1
    print r3
    halt
.endfunc
"""
        )
        from repro.isa import Imm

        mov = [i for i in program.functions["main"].instructions() if i.op.value == "mov"][0]
        mov.srcs = (Imm(2**64 - 1),)  # raw unsigned bit pattern
        return Machine(program).run(collect_trace=True)

    def test_exact_view_and_reference_equality(self):
        run = self._overflow_trace()
        trace = run.trace
        assert trace.has_overflow_values
        records = list(trace)
        mov_record = records[1]
        assert mov_record.srcs == (2**64 - 1,)
        assert mov_record.result == 2**64 - 1
        # Kernels take the exact per-record fallback and still match the
        # verbatim references bit-for-bit.
        _assert_columnar_equals_reference(trace, run.instructions, run.output)

    def test_overflow_survives_record_round_trip_and_snapshot(self):
        run = self._overflow_trace()
        records = list(run.trace)
        rebuilt = Trace(records=records, static=run.trace.static)
        assert rebuilt.has_overflow_values
        assert rebuilt.records == records
        restored = decode_artifact(
            encode_artifact(
                SimulationArtifact(
                    trace=run.trace, instructions=run.instructions, output=run.output
                )
            )
        )
        assert restored.trace.records == records


# ----------------------------------------------------------------------
# Dense static table
# ----------------------------------------------------------------------
class TestDenseStaticInfo:
    def test_dense_layout_with_offset_and_holes(self, ijpeg_run):
        static = ijpeg_run.trace.static
        # Real programs allocate uids from a global counter: the dense
        # table is indexed relative to uid_base.
        assert len(static.entries) >= len(static) > 0
        for entry in static:
            assert static[entry.uid] is entry
            assert entry.uid in static
        with pytest.raises(KeyError):
            static[static.uid_base - 1]
        assert (static.uid_base - 1) not in static

    def test_out_of_order_and_sparse_insertion(self, ijpeg_run):
        source = [entry for entry in ijpeg_run.trace.static][:3]
        assert len(source) == 3
        info = StaticInfo()
        # Insert out of order with a gap; lookups must stay exact.
        info.add_entry(replace(source[1], uid=105))
        info.add_entry(replace(source[0], uid=100))
        info.add_entry(replace(source[2], uid=103))
        assert info.uid_base == 100
        assert len(info) == 3
        assert info[105].opcode == source[1].opcode
        assert info[100].opcode == source[0].opcode
        assert 101 not in info
        with pytest.raises(KeyError):
            info[101]


# ----------------------------------------------------------------------
# Replay from the snapshot store: zero simulator calls
# ----------------------------------------------------------------------
class TestSnapshotReplay:
    @pytest.fixture
    def engine_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULT_STORE", str(tmp_path))
        monkeypatch.delenv("REPRO_TRACE_STORE", raising=False)
        from repro.experiments.engine import ExperimentEngine
        from repro.experiments.store import ResultStore

        return ExperimentEngine(store=ResultStore(tmp_path), jobs=1)

    def _counting_machine_run(self, monkeypatch):
        calls = {"count": 0}
        original = Machine.run

        def counting(self, *args, **kwargs):
            calls["count"] += 1
            return original(self, *args, **kwargs)

        monkeypatch.setattr(Machine, "run", counting)
        return calls

    def test_analysis_only_rerun_is_simulation_free(self, engine_env, monkeypatch, tmp_path):
        """An analysis-only change (here: a rotated analysis-code
        fingerprint) must be served by replaying the stored trace
        snapshot — zero ``Machine.run`` calls — with a summary that is
        bit-identical to the cold one."""
        from repro.experiments import store as store_module
        from repro.experiments.engine import ExperimentConfig, ExperimentEngine
        from repro.experiments.store import ResultStore

        config = ExperimentConfig(workload="ijpeg")
        calls = self._counting_machine_run(monkeypatch)
        cold = engine_env.evaluate(config)
        assert calls["count"] > 0
        assert cold.freshly_computed
        cold_summary = cold.summarize().to_json_dict()

        # Rotate the full code fingerprint (as editing power/uarch code
        # would) while the simulator-side fingerprint stays put.
        monkeypatch.setattr(store_module, "_code_fingerprint", lambda: "f" * 64)
        store_module._config_material.cache_clear()

        calls["count"] = 0
        warm = ExperimentEngine(store=ResultStore(tmp_path), jobs=1).evaluate(config)
        assert calls["count"] == 0, "analysis-only re-run must not simulate"
        assert warm.replayed_from_store
        assert warm.is_restored
        assert warm.summarize().to_json_dict() == cold_summary
        store_module._config_material.cache_clear()

    def test_machine_config_change_replays_without_simulation(
        self, engine_env, monkeypatch, tmp_path
    ):
        """A different timing-model configuration keys a different summary
        but the same trace snapshot: timing is re-run, the simulator is
        not."""
        from repro.experiments.engine import ExperimentConfig, ExperimentEngine
        from repro.experiments.store import ResultStore

        calls = self._counting_machine_run(monkeypatch)
        engine_env.evaluate(ExperimentConfig(workload="ijpeg"))
        assert calls["count"] > 0

        calls["count"] = 0
        modified = replace(MachineConfig(), fetch_width=2, issue_width=2)
        warm = ExperimentEngine(store=ResultStore(tmp_path), jobs=1).evaluate(
            ExperimentConfig(workload="ijpeg", machine_config=modified)
        )
        assert calls["count"] == 0
        assert warm.replayed_from_store
        # The replayed evaluation really used the modified machine model.
        baseline = engine_env.evaluate(ExperimentConfig(workload="ijpeg"))
        assert warm.timing.cycles > baseline.timing.cycles

    def test_snapshot_layer_can_be_disabled(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULT_STORE", str(tmp_path))
        monkeypatch.setenv("REPRO_TRACE_STORE", "off")
        from repro.experiments.engine import ExperimentConfig, ExperimentEngine
        from repro.experiments.store import ResultStore

        store = ResultStore(tmp_path)
        assert store.enabled and not store.trace_enabled
        engine = ExperimentEngine(store=store, jobs=1)
        engine.evaluate(ExperimentConfig(workload="ijpeg"))
        assert not (tmp_path / "traces").exists()
