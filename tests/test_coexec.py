"""Lockstep co-execution, fault localization, kernel bisection, shrinking.

The harness under test is correctness *tooling*, so these tests work
backwards: seed a known single-instruction semantic fault into the block
tier (or a known off-by-one into a timing kernel) and assert the tooling
localizes it to the exact first dynamic step and static instruction —
then that the shrunk reproducer replays to the same divergence.
"""

from __future__ import annotations

import dataclasses
import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.asm import assemble_program
from repro.coexec import (
    Divergence,
    Fault,
    Lockstep,
    compare_accounting,
    compare_timing,
    eligible_faults,
    first_divergence,
    replay_reproducer,
    resolve_fault_uid,
    shrink_source,
    write_reproducer,
)
from repro.coexec import kernels as kernels_module
from repro.experiments.__main__ import main as experiments_main
from repro.sim.machine import Machine
from repro.uarch import MachineConfig

# ----------------------------------------------------------------------
# Hypothesis program family: small terminating programs with a helper
# call, a counted loop, arithmetic/compare/memory traffic and forward
# branches — the same textual family the assembler accepts everywhere.
# ----------------------------------------------------------------------
_ARITH_OPS = ("add", "sub", "mul", "and", "or", "xor", "sll", "srl")
_CMP_OPS = ("cmpeq", "cmplt", "cmple", "cmpult")
_IMMEDIATES = (-129, -1, 0, 1, 7, 127, 255, 4095, 2**31, 2**40 - 3)


@st.composite
def _programs(draw) -> str:
    body_ops = draw(st.lists(st.integers(min_value=0, max_value=4), min_size=1, max_size=10))
    trip_count = draw(st.integers(min_value=1, max_value=6))
    seed_value = draw(st.sampled_from(_IMMEDIATES))
    lines = [
        ".data buf 64 64",
        ".func helper 1",
        "entry:",
        "    mul v0, a0, 3",
        "    ret",
        ".endfunc",
        ".func main 0",
        "entry:",
        f"    li r1, {seed_value}",
        "    li r2, =buf",
        "    li r3, 0",
        "loop:",
    ]
    for index, choice in enumerate(body_ops):
        dest = f"r{4 + (index % 5)}"
        if choice == 0:
            op = draw(st.sampled_from(_ARITH_OPS))
            imm = draw(st.sampled_from(_IMMEDIATES))
            lines.append(f"    {op} {dest}, r1, {imm}")
        elif choice == 1:
            op = draw(st.sampled_from(_CMP_OPS))
            lines.append(f"    {op} {dest}, r1, r3")
        elif choice == 2:
            lines.append("    mul r1, r1, 3")
            lines.append("    add r1, r1, 1")
        elif choice == 3:
            lines.append("    stq r1, 0(r2)")
            lines.append(f"    ldq {dest}, 0(r2)")
        else:
            lines.append("    mov a0, r1")
            lines.append("    jsr helper")
            lines.append(f"    mov {dest}, v0")
    lines += [
        "    add r1, r1, 3",
        "    add r3, r3, 1",
        f"    cmplt r9, r3, {trip_count}",
        "    bne r9, loop",
        "done:",
        "    print r1",
        "    halt",
        ".endfunc",
    ]
    return "\n".join(lines)


_TINY_ASM = """
.func main 0
entry:
    li r1, 5
    li r2, 0
loop:
    add r2, r2, r1
    sub r1, r1, 1
    bne r1, loop
done:
    print r2
    halt
.endfunc
"""

_TIER_PAIRS = (("reference", "fast"), ("reference", "block"), ("fast", "block"))


# ----------------------------------------------------------------------
# Lockstep agreement
# ----------------------------------------------------------------------
class TestLockstepAgreement:
    @pytest.mark.parametrize("tiers", _TIER_PAIRS)
    def test_tiers_agree_on_tiny_program(self, tiers):
        assert first_divergence(assemble_program(_TINY_ASM), tiers=tiers) is None

    @settings(max_examples=15, deadline=None)
    @given(_programs())
    def test_tiers_agree_on_generated_programs(self, asm):
        program = assemble_program(asm)
        for tiers in _TIER_PAIRS:
            assert first_divergence(program, tiers=tiers, max_instructions=100_000) is None

    @pytest.mark.parametrize("tiers", _TIER_PAIRS)
    def test_equal_limit_errors_count_as_agreement(self, tiers):
        """Both tiers failing identically (SimulationLimitExceeded with the
        same message) is agreement, even though the block tier's hoisted
        limit check legitimately truncates its trace differently."""
        program = assemble_program(_TINY_ASM)
        assert first_divergence(program, tiers=tiers, max_instructions=7) is None

    def test_rejects_unknown_tiers_and_bad_fault_sites(self):
        program = assemble_program(_TINY_ASM)
        with pytest.raises(ValueError):
            Lockstep(program, tiers=("reference", "turbo"))
        with pytest.raises(ValueError):
            # A fault requires the block tier on the mutated side.
            Lockstep(program, tiers=("reference", "fast"), fault=Fault("main", "loop", 0))
        with pytest.raises(ValueError):
            Lockstep(
                program,
                tiers=("reference", "block"),
                fault=Fault("main", "nosuchblock", 0),
            )


# ----------------------------------------------------------------------
# Seeded-fault localization
# ----------------------------------------------------------------------
def _first_execution_step(program, uid) -> int:
    trace = Machine(program).run(collect_trace=True).trace
    for index, record in enumerate(trace):
        if record.uid == uid:
            return index
    raise AssertionError("fault site never executed")


class TestSeededFaultLocalization:
    def test_tiny_program_exact_step_and_uid(self):
        program = assemble_program(_TINY_ASM)
        fault = Fault("main", "loop", 0)
        uid = resolve_fault_uid(fault, program)
        divergence = first_divergence(program, tiers=("reference", "block"), fault=fault)
        assert divergence is not None
        assert divergence.kind == "record"
        assert divergence.uid == uid
        assert divergence.step == _first_execution_step(program, uid)
        assert divergence.block == ("main", "loop")
        assert "result" in divergence.fields

    @settings(max_examples=10, deadline=None)
    @given(_programs(), st.integers(min_value=0, max_value=10_000))
    def test_every_seeded_divergence_is_localized(self, asm, pick):
        """A flip-low-bit mutation always changes the mutated result, so
        the divergence must land exactly on the first dynamic execution
        of the mutated instruction — never earlier, never later."""
        program = assemble_program(asm)
        executed = set(Machine(program).run(collect_trace=True).trace.uid_counts())
        faults = eligible_faults(program, executed_uids=executed)
        if not faults:
            return  # a degenerate draw with no mutable executed site
        fault = faults[pick % len(faults)]
        uid = resolve_fault_uid(fault, program)
        divergence = first_divergence(
            program, tiers=("reference", "block"), max_instructions=100_000, fault=fault
        )
        assert divergence is not None
        assert divergence.kind == "record"
        assert divergence.uid == uid
        assert divergence.step == _first_execution_step(program, uid)

    def test_eligible_faults_resolve_and_filter(self):
        program = assemble_program(_TINY_ASM)
        faults = eligible_faults(program)
        # add, sub in loop; li/print/branches are not mutable.
        assert [fault.spec() for fault in faults] == ["main:loop:0", "main:loop:1"]
        for fault in faults:
            assert resolve_fault_uid(fault, program) is not None
        assert resolve_fault_uid(Fault("main", "loop", 2), program) is None  # bne
        assert resolve_fault_uid(Fault("main", "done", 0), program) is None  # print
        assert eligible_faults(program, executed_uids=()) == []

    def test_divergence_json_round_trip(self):
        program = assemble_program(_TINY_ASM)
        divergence = first_divergence(
            program, tiers=("reference", "block"), fault=Fault("main", "loop", 0)
        )
        payload = json.loads(json.dumps(divergence.to_json_dict()))
        restored = Divergence.from_json_dict(payload)
        assert restored.signature() == divergence.signature()
        assert restored.describe() == divergence.describe()


# ----------------------------------------------------------------------
# Kernel comparators
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def small_trace():
    asm = """
.data buf 64 64
.func main 0
entry:
    li r1, 7
    li r2, =buf
    li r3, 0
loop:
    mul r4, r1, 5
    stq r4, 0(r2)
    ldq r5, 0(r2)
    add r1, r5, 1
    add r3, r3, 1
    cmplt r9, r3, 40
    bne r9, loop
done:
    print r1
    halt
.endfunc
"""
    return Machine(assemble_program(asm)).run(collect_trace=True).trace


class TestKernelComparators:
    @pytest.mark.parametrize(
        "pair",
        (("reference", "compiled"), ("reference", "compiled-lane"), ("compiled", "compiled-lane")),
    )
    def test_timing_kernels_agree(self, small_trace, pair):
        assert compare_timing(small_trace, kernels=pair) is None

    def test_accounting_agrees(self, small_trace):
        assert compare_accounting(small_trace) is None

    def test_timing_bisection_finds_exact_record(self, small_trace, monkeypatch):
        """A kernel broken from record THRESHOLD onwards must be pinned
        to exactly that record by the prefix bisection."""
        threshold = len(small_trace) // 2
        real = kernels_module.run_compiled

        def broken(trace, config=None):
            result = real(trace, config)
            if len(trace) > threshold:
                result = dataclasses.replace(result, cycles=result.cycles + 1)
            return result

        monkeypatch.setattr(kernels_module, "run_compiled", broken)
        divergence = compare_timing(small_trace, MachineConfig())
        assert divergence is not None
        assert divergence.kind == "timing"
        assert divergence.step == threshold
        assert divergence.uid == small_trace[threshold].uid
        assert "cycles" in divergence.fields

    def test_accounting_bisection_finds_exact_record(self, small_trace, monkeypatch):
        threshold = len(small_trace) // 3
        real = kernels_module.MultiPolicyEnergyAccountant

        class Broken(real):
            def account(self, trace, timing):
                results = super().account(trace, timing)
                if len(trace) > threshold:
                    for breakdown in results.values():
                        name = next(iter(breakdown.by_structure), None)
                        if name is not None:
                            breakdown.by_structure[name] += 1.0
                return results

        monkeypatch.setattr(kernels_module, "MultiPolicyEnergyAccountant", Broken)
        divergence = compare_accounting(small_trace)
        assert divergence is not None
        assert divergence.kind == "energy"
        assert divergence.step == threshold
        assert divergence.tiers == ("per-policy", "fused")

    def test_unknown_kernel_rejected(self, small_trace):
        with pytest.raises(ValueError):
            compare_timing(small_trace, kernels=("reference", "turbo"))


# ----------------------------------------------------------------------
# Shrinker + reproducer
# ----------------------------------------------------------------------
def _fault_check(fault, tiers=("reference", "block"), max_instructions=50_000):
    def check(source):
        try:
            program = assemble_program(source)
        except Exception:
            return None
        if resolve_fault_uid(fault, program) is None:
            return None
        try:
            return Lockstep(
                program, tiers=tiers, max_instructions=max_instructions, fault=fault
            ).run()
        except Exception:
            return None

    return check


class TestShrinker:
    def test_shrunk_reproducer_replays_to_same_divergence(self, tmp_path):
        fault = Fault("main", "loop", 0)
        check = _fault_check(fault)
        source, divergence, checks = shrink_source(_TINY_ASM, check, max_checks=300)
        assert checks <= 300
        # The reduced program must still be a strict subsequence of the
        # original's lines, still assemble, and still diverge.
        assert len(source.splitlines()) <= len(_TINY_ASM.strip().splitlines())
        assert divergence.kind == "record"
        directory = write_reproducer(
            source,
            divergence,
            tiers=("reference", "block"),
            max_instructions=50_000,
            fault=fault,
            root=tmp_path,
        )
        assert (directory / "repro.json").is_file()
        assert (directory / "program.asm").read_text() == source
        replayed, recorded = replay_reproducer(directory)
        assert recorded.signature() == divergence.signature()
        assert replayed is not None
        assert replayed.signature() == recorded.signature()

    def test_shrink_requires_a_diverging_start(self):
        with pytest.raises(ValueError):
            shrink_source(_TINY_ASM, lambda source: None)

    def test_reproducer_rejects_unknown_version(self, tmp_path):
        fault = Fault("main", "loop", 0)
        divergence = first_divergence(
            assemble_program(_TINY_ASM), tiers=("reference", "block"), fault=fault
        )
        directory = write_reproducer(
            _TINY_ASM,
            divergence,
            tiers=("reference", "block"),
            max_instructions=50_000,
            fault=fault,
            root=tmp_path,
        )
        payload = json.loads((directory / "repro.json").read_text())
        payload["version"] = 999
        (directory / "repro.json").write_text(json.dumps(payload))
        with pytest.raises(ValueError):
            replay_reproducer(directory)


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestDivergeCLI:
    @pytest.fixture
    def tiny_program_file(self, tmp_path):
        path = tmp_path / "tiny.asm"
        path.write_text(_TINY_ASM)
        return path

    def test_agreement_exits_zero(self, tiny_program_file, capsys):
        status = experiments_main(["diverge", "--program", str(tiny_program_file)])
        assert status == 0
        assert "no divergence" in capsys.readouterr().out

    def test_injected_fault_shrinks_and_replays(self, tiny_program_file, tmp_path, capsys):
        out_dir = tmp_path / "repro"
        status = experiments_main(
            [
                "diverge",
                "--program",
                str(tiny_program_file),
                "--inject",
                "main:loop:0",
                "--shrink",
                "--out",
                str(out_dir),
            ]
        )
        assert status == 1
        output = capsys.readouterr().out
        assert "record divergence" in output
        assert (out_dir / "repro.json").is_file()
        status = experiments_main(["diverge", "--replay", str(out_dir)])
        assert status == 0
        assert "replays faithfully" in capsys.readouterr().out

    def test_auto_inject_json(self, tiny_program_file, capsys):
        status = experiments_main(
            ["diverge", "--program", str(tiny_program_file), "--inject", "auto", "--json"]
        )
        assert status == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["divergence"]["kind"] == "record"
        assert payload["fault"]

    def test_timing_and_energy_modes(self, tiny_program_file, capsys):
        for mode in ("timing", "energy"):
            status = experiments_main(
                ["diverge", "--program", str(tiny_program_file), "--mode", mode]
            )
            assert status == 0
        assert "no divergence" in capsys.readouterr().out

    def test_bad_fault_site_exits_two(self, tiny_program_file, capsys):
        status = experiments_main(
            ["diverge", "--program", str(tiny_program_file), "--inject", "main:loop:99"]
        )
        assert status == 2
        assert "not found or not mutable" in capsys.readouterr().err
