"""Value Range Specialization on an interpreter-style workload.

The m88ksim-analogue workload carries a processor-mode flag that is almost
always zero.  This example shows the full VRS pipeline on it: profiling on
the train input, candidate selection, region cloning behind range guards,
and the effect on the reference run.

Run with::

    python examples/specialize_interpreter.py
"""

from repro.core import VRSConfig, run_vrs
from repro.experiments import evaluate_program, policy_for
from repro.sim import Machine
from repro.workloads import workload_by_name


def main() -> None:
    workload = workload_by_name("m88ksim")

    # Reference behaviour of the untouched binary.
    baseline_program = workload.build()
    workload.apply_input(baseline_program, "ref")
    baseline = evaluate_program(baseline_program, policy_for("baseline"))
    print(f"baseline: {baseline.timing.instructions} instructions, "
          f"{baseline.timing.cycles} cycles, ED2 {baseline.ed2:.3e}")

    # Profile on the *train* input and specialize.
    program = workload.build()
    workload.apply_input(program, "train")
    result = run_vrs(program, VRSConfig(threshold_nj=50.0))
    print(f"profiled {result.points_profiled} candidate points, "
          f"specialized {result.points_specialized}, "
          f"{result.points_no_benefit} had no benefit, "
          f"{result.points_dependent} were covered by another point")
    print(f"static instructions: +{result.static_specialized_instructions} specialized copies, "
          f"-{result.static_eliminated_instructions} eliminated by constant propagation")

    # Evaluate the specialized binary on the *reference* input.
    workload.apply_input(program, "ref")
    specialized = evaluate_program(program, policy_for("software"))
    assert specialized.run.output == Machine(baseline_program).run().output
    energy_saving = 1 - specialized.energy.total / baseline.energy.total
    ed2_saving = 1 - specialized.ed2 / baseline.ed2
    print(f"with VRS: {specialized.timing.instructions} instructions, "
          f"{specialized.timing.cycles} cycles")
    print(f"energy saving {energy_saving * 100:.1f}%, energy-delay^2 saving {ed2_saving * 100:.1f}%")

    for record in result.records:
        print(f"  specialized {record.function}: register range {record.value_range}, "
              f"{record.cloned_instructions} cloned instructions, "
              f"{record.fold_stats.instructions_removed} removed")


if __name__ == "__main__":
    main()
