"""Compare software, hardware and cooperative operand gating (§4.6/4.7).

Reproduces, for a single workload, the comparison behind Figure 15: the
energy-delay² savings of VRP/VRS (software), significance/size compression
(hardware) and their combinations.

Run with::

    python examples/hardware_vs_software.py [workload]
"""

import sys

from repro.experiments import evaluate_workload, format_percent, format_table
from repro.workloads import SUITE_NAMES, workload_by_name


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "vortex"
    if name not in SUITE_NAMES:
        raise SystemExit(f"unknown workload {name!r}; pick one of {', '.join(SUITE_NAMES)}")
    workload = workload_by_name(name)

    baseline = evaluate_workload(workload, mechanism="none").outcome("baseline")

    configurations = [
        ("VRP (software)", "vrp", "software"),
        ("VRS 50nJ (software)", "vrs", "software"),
        ("size compression (hardware)", "none", "hw-size"),
        ("significance compression (hardware)", "none", "hw-significance"),
        ("VRP + significance compression", "vrp", "sw+hw-significance"),
        ("VRS 50nJ + significance compression", "vrs", "sw+hw-significance"),
    ]

    rows = []
    for label, mechanism, policy in configurations:
        outcome = evaluate_workload(workload, mechanism=mechanism).outcome(policy)
        rows.append(
            [
                label,
                outcome.timing.cycles,
                format_percent(1 - outcome.energy.total / baseline.energy.total),
                format_percent(1 - outcome.ed2 / baseline.ed2),
            ]
        )

    print(
        format_table(
            ["configuration", "cycles", "energy saving", "ED^2 saving"],
            rows,
            title=f"Operand gating on the {name!r} workload "
            f"(baseline: {baseline.timing.cycles} cycles)",
        )
    )


if __name__ == "__main__":
    main()
