"""Quickstart: compile a small program, run VRP, and measure the energy effect.

Run with::

    python examples/quickstart.py
"""

from repro.core import VRPConfig, apply_widths, run_vrp
from repro.experiments import evaluate_program, policy_for
from repro.ir import format_program
from repro.minic import compile_source

SOURCE = """
char message[64];
int histogram[16];

int classify(int byte) {
    return (byte * 13) & 15;
}

int main() {
    int i;
    long checksum;
    checksum = 0;
    for (i = 0; i < 64; i = i + 1) {
        message[i] = (i * 37) & 255;
    }
    for (i = 0; i < 64; i = i + 1) {
        histogram[classify(message[i])] = histogram[classify(message[i])] + 1;
        checksum = checksum + message[i];
    }
    print(checksum);
    return 0;
}
"""


def main() -> None:
    # 1. Compile the mini-C program to the Alpha-like binary IR.
    program = compile_source(SOURCE)
    print("=== Generated code (before VRP) ===")
    print(format_program(program))

    # 2. Baseline simulation: no operand gating.
    baseline = evaluate_program(program, policy_for("baseline"))
    print(f"baseline: {baseline.timing.instructions} instructions, "
          f"{baseline.timing.cycles} cycles, energy {baseline.energy.total:.1f}")

    # 3. Run value range propagation and re-encode the opcodes.
    result = run_vrp(program, VRPConfig())
    changed = apply_widths(program, result)
    print(f"VRP re-encoded {changed} instructions "
          f"({result.narrowed_instructions()} narrowed) in {result.analysis_seconds * 1000:.1f} ms")

    # 4. Simulate again with software operand gating.
    gated = evaluate_program(program, policy_for("software"))
    print(f"with VRP: energy {gated.energy.total:.1f} "
          f"({(1 - gated.energy.total / baseline.energy.total) * 100:.1f}% saved), "
          f"output unchanged: {gated.run.output == baseline.run.output}")

    print("=== Re-encoded code (after VRP) ===")
    print(format_program(program))


if __name__ == "__main__":
    main()
