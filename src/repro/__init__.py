"""repro — reproduction of "Software-Controlled Operand-Gating" (CGO 2004).

The package provides, end to end, the pieces the paper's evaluation needs:

* :mod:`repro.isa` — an Alpha-like 64-bit ISA with width-annotated opcodes.
* :mod:`repro.ir` — a binary-level IR (CFG, dominators, loops, def-use).
* :mod:`repro.asm` / :mod:`repro.minic` — an assembler and a small C-like
  front end used to author the workload suite.
* :mod:`repro.core` — the paper's contribution: Value Range Propagation
  (VRP) and Value Range Specialization (VRS).
* :mod:`repro.sim` — a functional simulator with basic-block and value
  profiling.
* :mod:`repro.uarch` / :mod:`repro.power` — a trace-driven out-of-order
  timing model and a Wattch-like per-structure energy model with operand
  gating.
* :mod:`repro.hardware` — the hardware significance/size compression
  schemes used as comparison points and in the cooperative mode.
* :mod:`repro.workloads` — a synthetic SpecInt95-analogue suite.
* :mod:`repro.experiments` — regenerates every table and figure of the
  paper's evaluation section.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
