"""Hardware operand-gating schemes (the comparison points of §4.6/4.7)."""

from .gating import (
    CooperativeGating,
    GatingPolicy,
    NoGating,
    SignificanceCompression,
    SizeCompression,
    SoftwareGating,
    encoded_bytes,
)

__all__ = [
    "CooperativeGating",
    "GatingPolicy",
    "NoGating",
    "SignificanceCompression",
    "SizeCompression",
    "SoftwareGating",
    "encoded_bytes",
]
