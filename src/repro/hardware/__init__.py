"""Hardware operand-gating schemes (the comparison points of §4.6/4.7).

``gating.registry()`` / ``gating.get(name)`` are the public policy
registry: the canonical mapping from configuration names ("baseline",
"software", "hw-significance", ...) to policy instances that the
experiments layer, the CLI's ``--policy all`` and the sweep policy axis
all enumerate.
"""

from . import gating
from .gating import (
    CooperativeGating,
    GatingPolicy,
    NoGating,
    SignificanceCompression,
    SizeCompression,
    SoftwareGating,
    encoded_bytes,
)

__all__ = [
    "CooperativeGating",
    "GatingPolicy",
    "NoGating",
    "SignificanceCompression",
    "SizeCompression",
    "SoftwareGating",
    "encoded_bytes",
    "gating",
]
