"""Operand-gating policies: how many bytes each dynamic value activates.

The power model asks a :class:`GatingPolicy` how many of the 8 bytes of a
datapath item (source operand, result, stored value) actually switch.  The
four policies reproduce the configurations evaluated by the paper:

* :class:`NoGating` — the baseline machine: every value is as wide as the
  opcode the compiler emitted (mostly 32/64 bits).
* :class:`SoftwareGating` — the VRP/VRS machine: the opcode's (re-encoded)
  width is what the datapath activates; this is the pure software scheme.
* :class:`SignificanceCompression` — the hardware scheme of [9]: seven tag
  bits per 64-bit word record the number of significant bytes, so each value
  activates exactly its significant bytes (plus the tag overhead).
* :class:`SizeCompression` — the cheaper hardware scheme: two tag bits
  select a 1/2/5/8-byte size class.
* :class:`CooperativeGating` — software and hardware combined (§4.7): each
  value activates the minimum of what the opcode says and what the tags say.
"""

from __future__ import annotations

from ..isa import Width, significant_bytes, size_class_bytes
from ..sim import StaticEntry

__all__ = [
    "GatingPolicy",
    "NoGating",
    "SoftwareGating",
    "SignificanceCompression",
    "SizeCompression",
    "CooperativeGating",
    "encoded_bytes",
    "registry",
    "get",
]


class GatingPolicy:
    """Base class: by default every value activates all 8 bytes."""

    name = "baseline"
    #: Extra tag bits stored alongside every 64-bit value (energy overhead).
    tag_bits = 0
    #: Declares what :meth:`value_bytes` depends on, so the fused
    #: multi-policy accountant (:mod:`repro.power.model`) can precompute the
    #: per-value widths of many policies from one shared trace walk:
    #:
    #: * ``None`` — opaque (the safe default): the accountant calls
    #:   :meth:`value_bytes` per dynamic value,
    #: * ``"full"`` — constant 8 bytes,
    #: * ``"encoded"`` — the instruction's encoded width only (entry-static),
    #: * ``"significant"`` — ``significant_bytes(value)``,
    #: * ``"size_class"`` — ``size_class_bytes(value)``,
    #: * ``"min:significant"`` / ``"min:size_class"`` — the minimum of the
    #:   encoded width and the hardware tag width.
    #:
    #: The default is ``None`` rather than ``"full"`` precisely so that a
    #: subclass overriding :meth:`value_bytes` without declaring its width
    #: source stays *correct* (it merely skips the fused fast path); only
    #: declare a recognized source when :meth:`value_bytes` matches it.
    width_source: str | None = None

    def value_bytes(self, entry: StaticEntry, value: int) -> int:
        """Active bytes for one dynamic value produced/consumed by ``entry``."""
        del entry, value
        return 8

    # Convenience wrappers -------------------------------------------------
    def operand_bytes(self, entry: StaticEntry, values: tuple[int, ...]) -> int:
        """Total active bytes over the source operands of one instruction."""
        return sum(self.value_bytes(entry, value) for value in values)

    @property
    def tag_overhead_fraction(self) -> float:
        """Fractional energy overhead of storing the tag bits with a value."""
        return self.tag_bits / 64.0


class NoGating(GatingPolicy):
    """Baseline machine: software widths as emitted by the compiler."""

    name = "baseline"
    width_source = "encoded"

    def value_bytes(self, entry: StaticEntry, value: int) -> int:
        del value
        return encoded_bytes(entry)


class SoftwareGating(GatingPolicy):
    """Pure software operand gating: the (re-encoded) opcode width gates."""

    name = "software"
    width_source = "encoded"

    def value_bytes(self, entry: StaticEntry, value: int) -> int:
        del value
        return encoded_bytes(entry)


class SignificanceCompression(GatingPolicy):
    """Hardware significance compression: 7 tag bits, per-byte gating."""

    name = "hw-significance"
    tag_bits = 7
    width_source = "significant"

    def value_bytes(self, entry: StaticEntry, value: int) -> int:
        del entry
        return significant_bytes(value)


class SizeCompression(GatingPolicy):
    """Hardware size compression: 2 tag bits, 1/2/5/8-byte classes."""

    name = "hw-size"
    tag_bits = 2
    width_source = "size_class"

    def value_bytes(self, entry: StaticEntry, value: int) -> int:
        del entry
        return size_class_bytes(value)


class CooperativeGating(GatingPolicy):
    """Software widths combined with hardware tags (§4.7): take the minimum."""

    def __init__(self, hardware: GatingPolicy | None = None) -> None:
        self.hardware = hardware or SignificanceCompression()
        self.name = f"software+{self.hardware.name}"
        self.tag_bits = 2  # the cooperative scheme always carries 2 size bits

    @property
    def width_source(self) -> str | None:  # type: ignore[override]
        hardware_source = self.hardware.width_source
        if hardware_source in ("significant", "size_class"):
            return f"min:{hardware_source}"
        if hardware_source in ("encoded", "full"):
            # min(encoded, encoded) and min(encoded, 8) are both the encoded
            # width, since no encoded width exceeds 8 bytes.
            return "encoded"
        return None

    def value_bytes(self, entry: StaticEntry, value: int) -> int:
        return min(encoded_bytes(entry), self.hardware.value_bytes(entry, value))


def encoded_bytes(entry: StaticEntry) -> int:
    """Bytes activated according to the instruction's encoded width."""
    if entry.memory_width is not None:
        return entry.memory_width.bytes
    width: Width = entry.width
    return width.bytes


# ----------------------------------------------------------------------
# Policy registry
# ----------------------------------------------------------------------
# Canonical configuration names, in the paper's presentation order.  The
# registry keys are the *configuration* names the experiments layer, the
# CLI and the stored summaries use ("sw+hw-significance"), which for the
# cooperative schemes differ from the instances' own ``policy.name``
# ("software+hw-significance") — the instance name describes the
# mechanism, the registry key names the machine configuration.
_REGISTRY: dict[str, GatingPolicy] = {}


def _build_registry() -> dict[str, GatingPolicy]:
    return {
        "baseline": NoGating(),
        "software": SoftwareGating(),
        "hw-significance": SignificanceCompression(),
        "hw-size": SizeCompression(),
        "sw+hw-significance": CooperativeGating(SignificanceCompression()),
        "sw+hw-size": CooperativeGating(SizeCompression()),
    }


def registry() -> dict[str, GatingPolicy]:
    """All gating policies by configuration name, in paper order.

    Returns a fresh dict (mutating it does not affect the registry).  The
    policies themselves are shared stateless singletons.  This is the
    single enumeration point for "every policy": the CLI's
    ``--policy all``, the sweep policy axis and the per-summary energy
    materialization all iterate this mapping instead of hard-coding
    names.
    """
    if not _REGISTRY:
        _REGISTRY.update(_build_registry())
    return dict(_REGISTRY)


def get(name: str) -> GatingPolicy:
    """Gating policy by configuration name (see :func:`registry`)."""
    try:
        return registry()[name]
    except KeyError:
        raise KeyError(
            f"unknown gating policy {name!r}; valid policies are: "
            f"{', '.join(sorted(registry()))}"
        ) from None
