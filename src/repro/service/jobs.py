"""Job model and priority queue of the evaluation service.

A :class:`Job` is one submitted unit of work — a ``run`` (a batch of
:class:`~repro.experiments.engine.ExperimentConfig` points through
``engine.map``) or a ``sweep`` (a design-space matrix through
``engine.sweep``).  Jobs are identified by a short random id for the API
and by a *dedup key* — a content hash over the store keys of everything
the job would evaluate — for single-flight: while a job with the same
dedup key is queued or running, an identical submission attaches to it as
a subscriber instead of enqueuing duplicate work (see
``docs/service.md``).

:class:`JobQueue` is a tiny asyncio priority queue (higher ``priority``
first, FIFO within a priority).  ``close()`` starts the drain: queued
jobs are still handed out, and ``get()`` returns None only once the
queue is both closed and empty — exactly the SIGTERM semantics the
server needs.
"""

from __future__ import annotations

import asyncio
import heapq
import itertools
import time
import uuid
from dataclasses import dataclass, field
from typing import Optional

__all__ = ["Job", "JobQueue", "TERMINAL_STATES", "new_job_id"]

#: States a job never leaves.
TERMINAL_STATES = ("done", "failed", "cancelled")


def new_job_id() -> str:
    """Short, unguessable-enough job id for the HTTP API."""
    return uuid.uuid4().hex[:12]


@dataclass
class Job:
    """One submitted evaluation job and its full observable history."""

    id: str
    kind: str  # "run" | "sweep"
    request: dict  # normalized request payload (what dedup hashed)
    dedup_key: str
    priority: int = 0
    state: str = "queued"  # queued | running | done | failed | cancelled
    created: float = field(default_factory=time.time)
    started: Optional[float] = None
    finished: Optional[float] = None
    #: How many submissions this job serves (1 + deduplicated attaches).
    subscribers: int = 1
    #: Result rows, JSON-ready, in request order (run) / spec order (sweep).
    rows: list = field(default_factory=list)
    #: Progress events, JSON-ready, append-only.  Appended from the
    #: executor thread and read from the event loop; list.append is
    #: atomic under the GIL and streams only ever read a stable prefix,
    #: so no lock is needed.
    events: list = field(default_factory=list)
    #: Rows that ran a live simulation (probe-equivalent, in-process view).
    cold_rows: int = 0
    error: Optional[str] = None

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def emit(self, event: str, **payload) -> None:
        record = {"event": event, "job": self.id, "ts": time.time()}
        record.update(payload)
        self.events.append(record)

    def to_json_dict(self, include_rows: bool = True) -> dict:
        payload = {
            "id": self.id,
            "kind": self.kind,
            "state": self.state,
            "priority": self.priority,
            "request": self.request,
            "created": self.created,
            "started": self.started,
            "finished": self.finished,
            "subscribers": self.subscribers,
            "events": len(self.events),
            "cold_rows": self.cold_rows,
            "error": self.error,
        }
        if include_rows:
            payload["rows"] = list(self.rows)
        else:
            payload["rows"] = len(self.rows)
        return payload


class JobQueue:
    """Asyncio priority queue with drain-on-close semantics.

    Ordering is ``(-priority, submission sequence)``: higher priorities
    first, FIFO among equals.  After :meth:`close`, producers are
    rejected, consumers keep draining what is queued, and ``get()``
    returns None once nothing is left — the worker's exit signal.
    """

    def __init__(self) -> None:
        self._heap: list[tuple[int, int, Job]] = []
        self._seq = itertools.count()
        self._closed = False
        self._cond = asyncio.Condition()

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def closed(self) -> bool:
        return self._closed

    async def put(self, job: Job) -> None:
        async with self._cond:
            if self._closed:
                raise RuntimeError("queue is closed (draining)")
            heapq.heappush(self._heap, (-job.priority, next(self._seq), job))
            self._cond.notify()

    async def get(self) -> Optional[Job]:
        async with self._cond:
            while not self._heap and not self._closed:
                await self._cond.wait()
            if self._heap:
                return heapq.heappop(self._heap)[2]
            return None  # closed and drained

    async def close(self) -> None:
        async with self._cond:
            self._closed = True
            self._cond.notify_all()

    def drain_now(self) -> list[Job]:
        """Synchronously empty the queue (hard stop); returns the jobs.

        Used on a *second* termination signal: the still-queued jobs are
        cancelled instead of evaluated.  Waiting consumers are not woken
        here — the caller cancels the worker tasks anyway.
        """
        jobs = [job for _, _, job in self._heap]
        self._heap.clear()
        return jobs
