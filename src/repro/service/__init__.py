"""Long-running evaluation service: HTTP job API over the experiment engine.

See ``docs/service.md`` for the API reference and deployment notes, and
``python -m repro.experiments serve`` for the entry point.
"""

from .client import ServiceClient, ServiceClientError
from .jobs import Job, JobQueue, new_job_id
from .server import EvaluationService, ServiceError

__all__ = [
    "EvaluationService",
    "Job",
    "JobQueue",
    "ServiceClient",
    "ServiceClientError",
    "ServiceError",
    "new_job_id",
]
