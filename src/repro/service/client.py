"""Stdlib HTTP client for the evaluation service.

:class:`ServiceClient` is a thin, dependency-free wrapper over
``http.client`` for talking to a running :class:`EvaluationService` —
used by the CI smoke, the tests, and any script that wants to submit
jobs without hand-writing HTTP.  One fresh connection per request (the
server is ``Connection: close``), so a client object is cheap, reusable
and thread-safe.
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Iterator, Optional

__all__ = ["ServiceClient", "ServiceClientError"]


class ServiceClientError(Exception):
    """Non-2xx response from the service (carries status + body)."""

    def __init__(self, status: int, payload: dict) -> None:
        super().__init__(f"HTTP {status}: {payload.get('error', payload)}")
        self.status = status
        self.payload = payload


class ServiceClient:
    """Blocking JSON client for one ``host:port`` service endpoint."""

    def __init__(self, host: str, port: int, timeout: float = 60.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    def _request(self, method: str, path: str, payload: Optional[dict] = None) -> dict:
        conn = http.client.HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            body = None
            headers = {}
            if payload is not None:
                body = json.dumps(payload).encode("utf-8")
                headers["Content-Type"] = "application/json"
            conn.request(method, path, body=body, headers=headers)
            response = conn.getresponse()
            raw = response.read()
            try:
                decoded = json.loads(raw.decode("utf-8")) if raw else {}
            except ValueError:
                decoded = {"error": raw.decode("utf-8", "replace")}
            if response.status >= 400:
                raise ServiceClientError(response.status, decoded)
            return decoded
        finally:
            conn.close()

    # ------------------------------------------------------------------
    # API surface
    # ------------------------------------------------------------------
    def health(self) -> dict:
        return self._request("GET", "/v1/healthz")

    def stats(self) -> dict:
        return self._request("GET", "/v1/stats")

    def submit(self, payload: dict) -> dict:
        """POST /v1/jobs; returns ``{"job": id, "deduplicated": bool, ...}``."""
        return self._request("POST", "/v1/jobs", payload)

    def job(self, job_id: str) -> dict:
        return self._request("GET", f"/v1/jobs/{job_id}")

    def result(self, key: str) -> dict:
        return self._request("GET", f"/v1/results/{key}")

    def wait(self, job_id: str, timeout_s: float = 300.0, poll_s: float = 0.05) -> dict:
        """Poll until the job reaches a terminal state; returns its record."""
        deadline = time.monotonic() + timeout_s
        while True:
            record = self.job(job_id)
            if record["state"] in ("done", "failed", "cancelled"):
                return record
            if time.monotonic() > deadline:
                raise TimeoutError(
                    f"job {job_id} still {record['state']!r} after {timeout_s:.0f}s"
                )
            time.sleep(poll_s)

    def events(self, job_id: str) -> Iterator[dict]:
        """Follow the NDJSON progress stream; yields events until terminal."""
        conn = http.client.HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            conn.request("GET", f"/v1/jobs/{job_id}/events")
            response = conn.getresponse()
            if response.status >= 400:
                raw = response.read()
                try:
                    decoded = json.loads(raw.decode("utf-8"))
                except ValueError:
                    decoded = {"error": raw.decode("utf-8", "replace")}
                raise ServiceClientError(response.status, decoded)
            while True:
                line = response.readline()
                if not line:
                    return
                line = line.strip()
                if line:
                    yield json.loads(line.decode("utf-8"))
        finally:
            conn.close()
