"""The evaluation service: an asyncio HTTP/JSON front door over the engine.

``python -m repro.experiments serve`` boots one :class:`EvaluationService`
— a long-running process that accepts evaluation jobs over a small
HTTP/1.1 API and resolves them through the shared
:class:`~repro.experiments.engine.ExperimentEngine` (memo → store →
snapshot replay → compute), with three layers of dedup so identical
traffic collapses to one simulation:

1. **job-level single-flight** — a submission whose dedup key matches a
   queued/running job attaches to it as a subscriber,
2. **the content-addressed store** — later identical submissions are
   warm reads,
3. **cross-process single-flight locks** in the store — other replicas
   and CLI runs sharing the cache also wait instead of recomputing.

API (all JSON; see ``docs/service.md`` for the full reference)::

    POST /v1/jobs             submit a run or sweep job
    GET  /v1/jobs/<id>        job status + result rows
    GET  /v1/jobs/<id>/events NDJSON progress stream (live)
    GET  /v1/results/<key>    one stored summary by content key
    GET  /v1/healthz          liveness (+ draining flag)
    GET  /v1/stats            counters, queue depth, store location

Everything is stdlib: ``asyncio.start_server`` plus a hand-rolled
HTTP/1.1 request parser (one request per connection, ``Connection:
close``), which keeps the service deployable anywhere the repro package
runs.  SIGTERM/SIGINT starts a *drain*: the listener closes, queued and
running jobs finish, then the process exits 0; a second signal cancels
queued jobs and exits immediately.
"""

from __future__ import annotations

import asyncio
import json
import logging
import os
import re
import signal
import sys
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Optional

from .. import __version__
from ..experiments.engine import ExperimentConfig, ExperimentEngine
from ..experiments.runner import POLICY_NAMES
from ..experiments.store import config_key
from ..experiments.sweep import SweepSpec, default_sweep_configs
from ..workloads import SUITE_NAMES, workload_by_name
from .jobs import Job, JobQueue, new_job_id

__all__ = ["EvaluationService", "ServiceError"]

_log = logging.getLogger(__name__)

#: Request body cap; evaluation requests are a few hundred bytes.
_MAX_BODY_BYTES = 1 << 20

#: Per-read timeout on request parsing (slowloris guard, not a job limit).
_READ_TIMEOUT_S = 30.0

#: Event-stream poll interval; progress latency, not correctness.
_STREAM_POLL_S = 0.05

_STATUS_TEXT = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

_PIPELINES = ("auto", "fused", "materialized")

#: Shape of a result key: a lowercase hex content hash.  Enforced at the
#: HTTP boundary (400 before any store lookup) so a request path like
#: ``/v1/results/../../etc/passwd`` can never reach the filesystem — the
#: store's own path builders reject malformed keys too, but an
#: unauthenticated input deserves its own front-line check.
_RESULT_KEY_RE = re.compile(r"^[0-9a-f]{16,64}$")

#: Terminal jobs linger this long (seconds) in the in-memory job map for
#: `GET /v1/jobs/<id>` polling, then are evicted — results stay servable
#: from the store via ``GET /v1/results/<key>``.  Without eviction a
#: long-running service retains every result row and event list it ever
#: produced.  Override via ``REPRO_SERVICE_JOB_TTL_S``.
_JOB_TTL_S = 900.0

#: Hard cap on retained terminal jobs regardless of age (a traffic burst
#: must not hold a TTL's worth of rows in memory).  Override via
#: ``REPRO_SERVICE_JOB_CAP``.
_JOB_CAP = 1024


def _job_ttl_s() -> float:
    configured = os.environ.get("REPRO_SERVICE_JOB_TTL_S", "")
    if configured:
        try:
            return max(0.0, float(configured))
        except ValueError:
            pass
    return _JOB_TTL_S


def _job_cap() -> int:
    configured = os.environ.get("REPRO_SERVICE_JOB_CAP", "")
    if configured:
        try:
            return max(0, int(float(configured)))
        except ValueError:
            pass
    return _JOB_CAP


class ServiceError(Exception):
    """A request error with an HTTP status (rendered as ``{"error": ...}``)."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


def _hash_request(material: dict) -> str:
    import hashlib

    blob = json.dumps(material, sort_keys=True).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()


# ----------------------------------------------------------------------
# Request validation (shared vocabulary with the CLI)
# ----------------------------------------------------------------------
def _require_workloads(payload: dict) -> list[str]:
    workloads = payload.get("workloads")
    if workloads is None and "workload" in payload:
        workloads = [payload["workload"]]
    if workloads is None:
        workloads = list(SUITE_NAMES)
    if not isinstance(workloads, list) or not workloads or not all(
        isinstance(name, str) for name in workloads
    ):
        raise ServiceError(400, "workloads must be a non-empty list of names")
    unknown = sorted(set(workloads) - set(SUITE_NAMES))
    if unknown:
        raise ServiceError(
            400,
            f"unknown workload(s): {', '.join(unknown)}; "
            f"the suite is: {', '.join(SUITE_NAMES)}",
        )
    return workloads


def _require_mechanism(payload: dict) -> tuple[str, float, bool]:
    mechanism = payload.get("mechanism", "none")
    if mechanism not in ("none", "vrp", "vrs"):
        raise ServiceError(400, f"unknown mechanism {mechanism!r}")
    try:
        threshold_nj = float(payload.get("threshold_nj", 50.0))
    except (TypeError, ValueError):
        raise ServiceError(400, "threshold_nj must be a number")
    conventional = bool(payload.get("conventional_vrp", False))
    return mechanism, threshold_nj, conventional


def _require_policies(payload: dict) -> list[str]:
    policies = payload.get("policies")
    if policies is None or policies == ["all"] or policies == "all":
        return list(POLICY_NAMES)
    if not isinstance(policies, list) or not all(isinstance(p, str) for p in policies):
        raise ServiceError(400, "policies must be a list of names")
    unknown = sorted(set(policies) - set(POLICY_NAMES))
    if unknown:
        raise ServiceError(
            400,
            f"unknown polic{'y' if len(unknown) == 1 else 'ies'}: "
            f"{', '.join(unknown)}; registered: {', '.join(POLICY_NAMES)}",
        )
    return list(dict.fromkeys(policies))


def _require_priority(payload: dict) -> int:
    priority = payload.get("priority", 0)
    if not isinstance(priority, int) or isinstance(priority, bool):
        raise ServiceError(400, "priority must be an integer")
    return priority


def _require_pipeline(payload: dict) -> str:
    pipeline = payload.get("pipeline", "auto")
    if pipeline not in _PIPELINES:
        raise ServiceError(
            400, f"unknown pipeline {pipeline!r}; expected one of {', '.join(_PIPELINES)}"
        )
    return pipeline


class EvaluationService:
    """Asyncio HTTP server + priority queue over one shared engine."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8321,
        workers: int = 2,
        engine: Optional[ExperimentEngine] = None,
        jobs: Optional[int] = None,
    ) -> None:
        self.host = host
        self.port = port
        self.workers = max(1, workers)
        self.engine = engine if engine is not None else ExperimentEngine(jobs=jobs)
        self.queue = JobQueue()
        self.jobs: dict[str, Job] = {}
        #: Retention of *terminal* jobs in ``self.jobs`` (see _prune_jobs).
        self.job_ttl_s = _job_ttl_s()
        self.job_cap = _job_cap()
        #: Job-level single-flight registry: dedup key -> live job.
        self.inflight: dict[str, Job] = {}
        self.draining = False
        self.counters = {
            "submitted": 0,
            "deduplicated": 0,
            "completed": 0,
            "failed": 0,
            "cancelled": 0,
            "rows": 0,
            "cold_rows": 0,
        }
        self._started_monotonic = time.monotonic()
        self._executor = ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="eval-job"
        )
        self._stop = asyncio.Event()
        self._hard_stop = False

    # ------------------------------------------------------------------
    # Dedup keys: content hashes, not request texts
    # ------------------------------------------------------------------
    def _run_dedup_key(self, configs: list[ExperimentConfig], policies: list[str]) -> str:
        keys = [self.engine.key_for(config) for config in configs]
        return _hash_request({"kind": "run", "keys": keys, "policies": policies})

    def _sweep_dedup_key(self, spec: SweepSpec) -> str:
        keys = sorted(
            {
                config_key(
                    workload_by_name(point.workload),
                    point.mechanism,
                    point.threshold_nj,
                    point.conventional_vrp,
                    spec.config_map()[point.config],
                )
                + f"|{point.config}|{point.policy}"
                for point in spec.iter_points()
            }
        )
        return _hash_request({"kind": "sweep", "keys": keys})

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def _build_run_job(self, payload: dict) -> Job:
        workloads = _require_workloads(payload)
        mechanism, threshold_nj, conventional = _require_mechanism(payload)
        policies = _require_policies(payload)
        pipeline = _require_pipeline(payload)
        priority = _require_priority(payload)
        configs = [
            ExperimentConfig(
                workload=name,
                mechanism=mechanism,
                threshold_nj=threshold_nj,
                conventional_vrp=conventional,
            )
            for name in workloads
        ]
        request = {
            "kind": "run",
            "workloads": workloads,
            "mechanism": mechanism,
            "threshold_nj": threshold_nj,
            "conventional_vrp": conventional,
            "policies": policies,
            "pipeline": pipeline,
        }
        return Job(
            id=new_job_id(),
            kind="run",
            request=request,
            dedup_key=self._run_dedup_key(configs, policies),
            priority=priority,
        )

    def _build_sweep_job(self, payload: dict) -> Job:
        workloads = _require_workloads(payload)
        mechanism, threshold_nj, conventional = _require_mechanism(payload)
        policies = _require_policies(payload)
        priority = _require_priority(payload)
        pipeline = _require_pipeline(payload)
        available = dict(default_sweep_configs())
        config_names = payload.get("configs")
        if config_names is None:
            config_names = list(available)
        if not isinstance(config_names, list) or not config_names or not all(
            isinstance(name, str) for name in config_names
        ):
            raise ServiceError(400, "configs must be a non-empty list of names")
        unknown = sorted(set(config_names) - set(available))
        if unknown:
            raise ServiceError(
                400,
                f"unknown machine config(s): {', '.join(unknown)}; "
                f"available: {', '.join(available)}",
            )
        spec = SweepSpec.cartesian(
            workloads=workloads,
            configs=tuple((name, available[name]) for name in config_names),
            policies=tuple(policies),
            mechanism=mechanism,
            threshold_nj=threshold_nj,
            conventional_vrp=conventional,
        )
        request = {
            "kind": "sweep",
            "workloads": workloads,
            "configs": config_names,
            "policies": policies,
            "mechanism": mechanism,
            "threshold_nj": threshold_nj,
            "conventional_vrp": conventional,
            "pipeline": pipeline,
        }
        return Job(
            id=new_job_id(),
            kind="sweep",
            request=request,
            dedup_key=self._sweep_dedup_key(spec),
            priority=priority,
        )

    def _prune_jobs(self) -> int:
        """Evict old terminal jobs so ``self.jobs`` tracks live traffic.

        Two bounds: terminal jobs older than ``job_ttl_s`` go, and the
        retained terminal set is capped at ``job_cap`` (oldest-finished
        first).  Queued/running jobs are never touched, and an evicted
        id simply 404s — the result rows remain addressable through the
        store (``GET /v1/results/<key>``).  A live event stream keeps
        its own reference to the Job object, so eviction never breaks
        an in-progress ``/events`` follow.
        """
        now = time.time()
        terminal = [
            job
            for job in self.jobs.values()
            if job.terminal and job.finished is not None
        ]
        victims = [job for job in terminal if now - job.finished > self.job_ttl_s]
        retained = [job for job in terminal if now - job.finished <= self.job_ttl_s]
        if len(retained) > self.job_cap:
            retained.sort(key=lambda job: job.finished)
            victims.extend(retained[: len(retained) - self.job_cap])
        for job in victims:
            self.jobs.pop(job.id, None)
        return len(victims)

    async def _submit(self, payload: dict) -> tuple[int, dict]:
        if self.draining:
            raise ServiceError(503, "service is draining; resubmit to another replica")
        self._prune_jobs()
        kind = payload.get("kind", "run")
        if kind == "run":
            build = self._build_run_job
        elif kind == "sweep":
            build = self._build_sweep_job
        else:
            raise ServiceError(400, f"unknown job kind {kind!r}; expected 'run' or 'sweep'")
        # Building a job hashes workload content for every point it would
        # evaluate (the dedup key); for a large cartesian sweep that is
        # real CPU time, so it runs on the default executor instead of
        # blocking the event loop (and /v1/healthz) mid-submit.  Not the
        # job executor: submits must never queue behind running
        # simulations.
        loop = asyncio.get_running_loop()
        job = await loop.run_in_executor(None, build, payload)
        if self.draining:
            # Drain began while we were hashing; the queue is closing.
            raise ServiceError(503, "service is draining; resubmit to another replica")
        existing = self.inflight.get(job.dedup_key)
        if existing is not None and not existing.terminal:
            # Job-level single-flight: identical work is already queued or
            # running — attach instead of enqueuing a duplicate.
            existing.subscribers += 1
            self.counters["deduplicated"] += 1
            return 200, {
                "job": existing.id,
                "state": existing.state,
                "deduplicated": True,
                "subscribers": existing.subscribers,
            }
        self.jobs[job.id] = job
        self.inflight[job.dedup_key] = job
        self.counters["submitted"] += 1
        job.emit("queued", kind=job.kind, priority=job.priority)
        await self.queue.put(job)
        return 202, {"job": job.id, "state": job.state, "deduplicated": False}

    # ------------------------------------------------------------------
    # Job execution (runs on the thread-pool executor)
    # ------------------------------------------------------------------
    def _execute_run(self, job: Job) -> None:
        request = job.request
        configs = [
            ExperimentConfig(
                workload=name,
                mechanism=request["mechanism"],
                threshold_nj=request["threshold_nj"],
                conventional_vrp=request["conventional_vrp"],
            )
            for name in request["workloads"]
        ]
        policies = request["policies"]
        rows: list[Optional[dict]] = [None] * len(configs)

        def render(index: int, evaluation) -> dict:
            summary = evaluation.summarize()
            if summary.failure is not None:
                return {
                    "workload": configs[index].workload,
                    "key": self.engine.key_for(configs[index]),
                    "error": summary.failure,
                }
            return {
                "workload": evaluation.workload.name,
                "key": self.engine.key_for(configs[index]),
                "mechanism": request["mechanism"],
                "threshold_nj": request["threshold_nj"],
                "conventional_vrp": request["conventional_vrp"],
                "instructions": evaluation.total_dynamic_instructions,
                "cycles": evaluation.outcome("baseline").cycles,
                "energy_nj": {
                    name: evaluation.outcome(name).energy.total for name in policies
                },
                "ed2": {name: evaluation.outcome(name).ed2 for name in policies},
            }

        def stream(index: int, evaluation) -> None:
            rows[index] = render(index, evaluation)
            if evaluation.freshly_computed:
                job.cold_rows += 1
            job.emit(
                "row",
                index=index,
                workload=configs[index].workload,
                source=(
                    "computed"
                    if evaluation.freshly_computed
                    else "replayed"
                    if evaluation.replayed_from_store
                    else "cached"
                ),
            )

        self.engine.map(
            configs,
            pipeline=request["pipeline"],
            on_error="keep",
            on_result=stream,
        )
        job.rows = [row for row in rows if row is not None]

    def _execute_sweep(self, job: Job) -> None:
        request = job.request
        available = dict(default_sweep_configs())
        spec = SweepSpec.cartesian(
            workloads=request["workloads"],
            configs=tuple((name, available[name]) for name in request["configs"]),
            policies=tuple(request["policies"]),
            mechanism=request["mechanism"],
            threshold_nj=request["threshold_nj"],
            conventional_vrp=request["conventional_vrp"],
        )
        rows = []
        for index, row in enumerate(
            self.engine.sweep(spec, pipeline=request["pipeline"], on_error="keep")
        ):
            rows.append(row.to_json_dict())
            if row.source in ("computed", "fused"):
                job.cold_rows += 1
            job.emit(
                "row",
                index=index,
                workload=row.workload,
                config=row.config,
                policy=row.policy,
                source=row.source,
            )
        job.rows = rows

    def _execute_job(self, job: Job) -> None:
        if job.kind == "run":
            self._execute_run(job)
        else:
            self._execute_sweep(job)

    # ------------------------------------------------------------------
    # Queue workers
    # ------------------------------------------------------------------
    async def _worker(self, number: int) -> None:
        loop = asyncio.get_running_loop()
        while True:
            job = await self.queue.get()
            if job is None:
                return  # queue closed and drained
            job.state = "running"
            job.started = time.time()
            job.emit("running", worker=number)
            try:
                await loop.run_in_executor(self._executor, self._execute_job, job)
            except Exception as exc:  # noqa: BLE001 - job boundary
                job.state = "failed"
                job.error = f"{type(exc).__name__}: {exc}"
                self.counters["failed"] += 1
                job.emit("failed", error=job.error)
                _log.warning("job %s failed: %s", job.id, job.error)
            else:
                job.state = "done"
                self.counters["completed"] += 1
                self.counters["rows"] += len(job.rows)
                self.counters["cold_rows"] += job.cold_rows
                job.emit("done", rows=len(job.rows), cold_rows=job.cold_rows)
            finally:
                job.finished = time.time()
                # The flight is over: later identical submissions should
                # re-resolve through the store (warm) instead of reading a
                # retained job forever.
                if self.inflight.get(job.dedup_key) is job:
                    del self.inflight[job.dedup_key]
                self._prune_jobs()

    # ------------------------------------------------------------------
    # HTTP plumbing
    # ------------------------------------------------------------------
    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Optional[tuple[str, str, dict, bytes]]:
        try:
            line = await asyncio.wait_for(reader.readline(), _READ_TIMEOUT_S)
        except (asyncio.TimeoutError, ConnectionError):
            return None
        if not line:
            return None
        parts = line.decode("latin-1").split()
        if len(parts) < 2:
            raise ServiceError(400, "malformed request line")
        method, target = parts[0].upper(), parts[1]
        headers: dict[str, str] = {}
        while True:
            try:
                raw = await asyncio.wait_for(reader.readline(), _READ_TIMEOUT_S)
            except (asyncio.TimeoutError, ConnectionError):
                return None
            if raw in (b"\r\n", b"\n", b""):
                break
            name, _, value = raw.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        try:
            length = int(headers.get("content-length", "0") or "0")
        except ValueError:
            raise ServiceError(400, "malformed Content-Length")
        if length > _MAX_BODY_BYTES:
            raise ServiceError(413, f"body exceeds {_MAX_BODY_BYTES} bytes")
        body = b""
        if length:
            try:
                body = await asyncio.wait_for(reader.readexactly(length), _READ_TIMEOUT_S)
            except (asyncio.TimeoutError, asyncio.IncompleteReadError, ConnectionError):
                return None
        return method, target, headers, body

    @staticmethod
    def _write_response(
        writer: asyncio.StreamWriter,
        status: int,
        payload: dict,
    ) -> None:
        body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
        head = (
            f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            "Connection: close\r\n"
            "\r\n"
        ).encode("latin-1")
        writer.write(head + body)

    async def _stream_events(self, writer: asyncio.StreamWriter, job: Job) -> None:
        """NDJSON progress stream: replay history, then follow live.

        The stream closes after the job's terminal event.  Progress is
        polled (``_STREAM_POLL_S``) rather than condition-signalled: the
        events list is append-only, so a stable prefix is always safe to
        read, and 50 ms of latency is invisible next to a simulation.
        """
        head = (
            "HTTP/1.1 200 OK\r\n"
            "Content-Type: application/x-ndjson\r\n"
            "Connection: close\r\n"
            "\r\n"
        ).encode("latin-1")
        writer.write(head)
        sent = 0
        while True:
            events = job.events
            while sent < len(events):
                writer.write(
                    (json.dumps(events[sent], sort_keys=True) + "\n").encode("utf-8")
                )
                sent += 1
            await writer.drain()
            if job.terminal and sent >= len(job.events):
                return
            await asyncio.sleep(_STREAM_POLL_S)

    async def _route(
        self, method: str, target: str, body: bytes, writer: asyncio.StreamWriter
    ) -> None:
        path = target.split("?", 1)[0]
        if path == "/v1/healthz":
            if method != "GET":
                raise ServiceError(405, "healthz is GET-only")
            self._write_response(
                writer,
                200,
                {
                    "status": "draining" if self.draining else "ok",
                    "version": __version__,
                },
            )
            return
        if path == "/v1/stats":
            if method != "GET":
                raise ServiceError(405, "stats is GET-only")
            self._write_response(writer, 200, self._stats())
            return
        if path == "/v1/jobs":
            if method != "POST":
                raise ServiceError(405, "submit jobs with POST")
            try:
                payload = json.loads(body.decode("utf-8")) if body else {}
            except (UnicodeDecodeError, ValueError):
                raise ServiceError(400, "request body is not valid JSON")
            if not isinstance(payload, dict):
                raise ServiceError(400, "request body must be a JSON object")
            status, response = await self._submit(payload)
            self._write_response(writer, status, response)
            return
        if path.startswith("/v1/jobs/"):
            if method != "GET":
                raise ServiceError(405, "job resources are GET-only")
            rest = path[len("/v1/jobs/") :]
            job_id, _, tail = rest.partition("/")
            job = self.jobs.get(job_id)
            if job is None:
                raise ServiceError(404, f"unknown job {job_id!r}")
            if tail == "":
                self._write_response(writer, 200, job.to_json_dict())
                return
            if tail == "events":
                await self._stream_events(writer, job)
                return
            raise ServiceError(404, f"unknown job resource {tail!r}")
        if path.startswith("/v1/results/"):
            if method != "GET":
                raise ServiceError(405, "results are GET-only")
            key = path[len("/v1/results/") :]
            if not _RESULT_KEY_RE.fullmatch(key):
                raise ServiceError(
                    400,
                    "malformed result key: expected a lowercase hex content hash",
                )
            summary = self.engine.store.load(key) if self.engine.store.enabled else None
            if summary is None:
                raise ServiceError(404, f"no stored result for key {key!r}")
            self._write_response(
                writer, 200, {"key": key, "summary": summary.to_json_dict()}
            )
            return
        raise ServiceError(404, f"unknown path {path!r}")

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            try:
                request = await self._read_request(reader)
                if request is None:
                    return
                method, target, _headers, body = request
                await self._route(method, target, body, writer)
            except ServiceError as exc:
                self._write_response(writer, exc.status, {"error": str(exc)})
            except Exception as exc:  # noqa: BLE001 - connection boundary
                _log.warning("request handling failed: %s: %s", type(exc).__name__, exc)
                try:
                    self._write_response(writer, 500, {"error": "internal error"})
                except Exception:
                    pass
            await writer.drain()
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            try:
                writer.close()
            except Exception:
                pass

    # ------------------------------------------------------------------
    # Stats
    # ------------------------------------------------------------------
    def _stats(self) -> dict:
        store = self.engine.store
        states: dict[str, int] = {}
        for job in self.jobs.values():
            states[job.state] = states.get(job.state, 0) + 1
        return {
            "uptime_s": time.monotonic() - self._started_monotonic,
            "draining": self.draining,
            "workers": self.workers,
            "queue_depth": len(self.queue),
            "jobs": dict(self.counters, states=states),
            "store": {
                "enabled": store.enabled,
                "root": str(store.root) if store.enabled else None,
                "trace_enabled": store.trace_enabled,
            },
            "version": __version__,
        }

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def _request_stop(self) -> None:
        if not self.draining:
            self.draining = True
            _log.warning("drain requested: finishing queued jobs, refusing new ones")
            self._stop.set()
            return
        # Second signal: hard stop — cancel what is still queued.
        _log.warning("second stop signal: cancelling queued jobs")
        self._hard_stop = True
        for job in self.queue.drain_now():
            job.state = "cancelled"
            job.finished = time.time()
            job.error = "cancelled at shutdown"
            self.counters["cancelled"] += 1
            job.emit("cancelled")
            if self.inflight.get(job.dedup_key) is job:
                del self.inflight[job.dedup_key]
        self._stop.set()

    async def serve(self, ready_stream=None) -> int:
        """Run until SIGTERM/SIGINT, then drain and return 0.

        Prints a single machine-readable ready line (JSON, ``"event":
        "ready"``) to ``ready_stream`` (default stdout) once the listener
        is bound — with ``--port 0`` this is how callers learn the actual
        port — and a matching ``"drained"`` line on the way out.
        """
        stream = ready_stream if ready_stream is not None else sys.stdout
        loop = asyncio.get_running_loop()
        server = await asyncio.start_server(self._handle_client, self.host, self.port)
        bound_port = server.sockets[0].getsockname()[1]
        self.port = bound_port
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, self._request_stop)
            except (NotImplementedError, RuntimeError):  # non-Unix loop
                signal.signal(signum, lambda *_: self._request_stop())
        workers = [
            loop.create_task(self._worker(number)) for number in range(self.workers)
        ]
        print(
            json.dumps(
                {
                    "event": "ready",
                    "host": self.host,
                    "port": bound_port,
                    "pid": os.getpid(),
                    "workers": self.workers,
                    "store": (
                        str(self.engine.store.root) if self.engine.store.enabled else None
                    ),
                },
                sort_keys=True,
            ),
            file=stream,
            flush=True,
        )
        _log.warning("evaluation service listening on %s:%d", self.host, bound_port)

        await self._stop.wait()
        server.close()
        await server.wait_closed()
        await self.queue.close()
        if self._hard_stop:
            for task in workers:
                task.cancel()
        results = await asyncio.gather(*workers, return_exceptions=True)
        for result in results:
            if isinstance(result, Exception) and not isinstance(
                result, asyncio.CancelledError
            ):
                _log.warning("worker exited with %s: %s", type(result).__name__, result)
        self._executor.shutdown(wait=True)
        print(
            json.dumps(
                {
                    "event": "drained",
                    "completed": self.counters["completed"],
                    "failed": self.counters["failed"],
                    "cancelled": self.counters["cancelled"],
                    "deduplicated": self.counters["deduplicated"],
                    "uptime_s": time.monotonic() - self._started_monotonic,
                },
                sort_keys=True,
            ),
            file=stream,
            flush=True,
        )
        return 0
