"""Code generation from the mini-C AST to the Alpha-like IR.

The generated code follows the conventions a simple Alpha C compiler would
use, because those conventions are what give the paper's VRP its initial
width information (§2.1):

* ``int`` arithmetic is emitted as 32-bit opcodes (``add.32`` ...) whose
  results wrap and sign-extend, like Alpha ``ADDL``.
* ``char``/``short`` values are normalised with ``mskb``/``mskw``
  (zero-extension) at parameter entry, assignment and return, like Alpha's
  unsigned byte/halfword handling.
* loads and stores use the declared element width of the accessed object.
* scalar locals live in callee-saved registers when possible; everything
  else lives on the stack or in the static data segment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..isa import (
    ARG_REGISTERS,
    Imm,
    Opcode,
    RETURN_VALUE,
    Reg,
    STACK_POINTER,
    SAVED_REGISTERS,
    Width,
    ZERO,
)
from ..ir import IRBuilder, Program
from . import ast_nodes as ast
from .semantics import ModuleSymbols
from .tokens import MiniCError

__all__ = ["generate_program"]

#: Registers usable for expression temporaries (Alpha t0-t7 ~ r1..r8).
_TEMP_REGISTERS = tuple(Reg(i) for i in range(1, 9))
#: Number of stack slots reserved for spilling temporaries around calls.
_CALL_SPILL_SLOTS = len(_TEMP_REGISTERS)

_LOAD_BY_TYPE = {"char": Opcode.LDB, "short": Opcode.LDH, "int": Opcode.LDW, "long": Opcode.LDQ}
_STORE_BY_TYPE = {"char": Opcode.STB, "short": Opcode.STH, "int": Opcode.STW, "long": Opcode.STQ}
_SHIFT_BY_SIZE = {1: 0, 2: 1, 4: 2, 8: 3}


@dataclass
class _Value:
    """An expression result: the register holding it and whether we own it."""

    reg: Reg
    owned: bool


@dataclass
class _LocalSlot:
    """Storage assignment of one local variable or parameter."""

    ctype: ast.CType
    reg: Optional[Reg] = None        # home register when register-allocated
    stack_offset: Optional[int] = None


class _TempAllocator:
    """LIFO allocator over the temporary register pool."""

    def __init__(self) -> None:
        self._free = list(reversed(_TEMP_REGISTERS))
        self._live: list[Reg] = []

    def alloc(self) -> Reg:
        if not self._free:
            raise MiniCError(
                "expression too complex: ran out of temporary registers "
                f"({len(_TEMP_REGISTERS)} available)"
            )
        reg = self._free.pop()
        self._live.append(reg)
        return reg

    def release(self, value: _Value) -> None:
        if value.owned:
            self.free(value.reg)

    def free(self, reg: Reg) -> None:
        if reg in self._live:
            self._live.remove(reg)
            self._free.append(reg)

    def live_temps(self) -> list[Reg]:
        return list(self._live)


def generate_program(module: ast.Module, symbols: ModuleSymbols, entry: str = "_start") -> Program:
    """Generate a whole :class:`Program` for ``module``.

    A ``_start`` function calling ``main`` and halting is synthesised so the
    functional simulator has a well-defined entry and stop point.
    """
    program = Program(entry=entry)
    for gvar in module.globals:
        ctype = gvar.ctype
        count = ctype.array_length if ctype.is_array else 1
        program.add_data(
            gvar.name,
            size_bytes=count * ctype.width.bytes,
            element_width=ctype.width,
            initial_values=gvar.initial_values,
        )

    for fn in module.functions:
        codegen = _FunctionCodegen(fn, symbols, program)
        program.add_function(codegen.generate())

    if "main" not in program.functions:
        raise MiniCError("program has no main function")
    start = IRBuilder(entry, num_params=0)
    start.block("entry")
    start.call("main")
    start.halt()
    program.add_function(start.build())
    return program


class _FunctionCodegen:
    """Generates IR for one function."""

    def __init__(self, fn: ast.FunctionDef, symbols: ModuleSymbols, program: Program) -> None:
        self.fn = fn
        self.symbols = symbols
        self.program = program
        self.builder = IRBuilder(fn.name, num_params=len(fn.params))
        self.temps = _TempAllocator()
        self.locals: dict[str, _LocalSlot] = {}
        self.frame_size = 0
        self._saved_used: list[Reg] = []
        self._spill_base = 0
        self._label_counter = 0
        self._loop_stack: list[tuple[str, str]] = []  # (break label, continue label)
        self._epilogue_label = "epilogue"

    # ------------------------------------------------------------------
    # Frame and storage layout
    # ------------------------------------------------------------------
    def _collect_local_names(self) -> list[tuple[str, ast.CType]]:
        names: list[tuple[str, ast.CType]] = [(p.name, p.ctype) for p in self.fn.params]

        def walk(block: ast.Block) -> None:
            for statement in block.statements:
                if isinstance(statement, ast.Declaration):
                    names.append((statement.name, statement.ctype))
                elif isinstance(statement, ast.Block):
                    walk(statement)
                elif isinstance(statement, ast.If):
                    walk(statement.then_body)
                    if statement.else_body is not None:
                        walk(statement.else_body)
                elif isinstance(statement, ast.While):
                    walk(statement.body)
                elif isinstance(statement, ast.For):
                    if isinstance(statement.init, ast.Declaration):
                        names.append((statement.init.name, statement.init.ctype))
                    walk(statement.body)

        walk(self.fn.body)
        return names

    def _layout_frame(self) -> None:
        local_names = self._collect_local_names()
        available = list(SAVED_REGISTERS)
        offset = 8  # slot 0 holds the saved return address
        for name, ctype in local_names:
            slot = _LocalSlot(ctype=ctype)
            if available:
                slot.reg = available.pop(0)
                self._saved_used.append(slot.reg)
            else:
                slot.stack_offset = offset
                offset += 8
            self.locals[name] = slot
        # Space to preserve the callee-saved registers we are about to use.
        self._saved_area = offset
        offset += 8 * len(self._saved_used)
        self._spill_base = offset
        offset += 8 * _CALL_SPILL_SLOTS
        self.frame_size = (offset + 15) & ~15

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def generate(self):
        self._layout_frame()
        b = self.builder
        b.block("entry")
        b.lda(STACK_POINTER, STACK_POINTER, -self.frame_size, comment="prologue")
        b.store(Opcode.STQ, Reg(26), STACK_POINTER, 0, comment="save ra")
        for index, reg in enumerate(self._saved_used):
            b.store(Opcode.STQ, reg, STACK_POINTER, self._saved_area + 8 * index)
        for index, param in enumerate(self.fn.params):
            self._init_param(index, param)

        self._gen_block(self.fn.body)

        b.block(self._epilogue_label)
        for index, reg in enumerate(self._saved_used):
            b.load(Opcode.LDQ, reg, STACK_POINTER, self._saved_area + 8 * index)
        b.load(Opcode.LDQ, Reg(26), STACK_POINTER, 0, comment="restore ra")
        b.lda(STACK_POINTER, STACK_POINTER, self.frame_size, comment="epilogue")
        b.ret()
        return b.build()

    def _init_param(self, index: int, param: ast.Param) -> None:
        slot = self.locals[param.name]
        arg_reg = ARG_REGISTERS[index]
        if slot.reg is not None:
            self._normalize(slot.reg, arg_reg, param.ctype, comment=f"param {param.name}")
        else:
            temp = self.temps.alloc()
            self._normalize(temp, arg_reg, param.ctype, comment=f"param {param.name}")
            self._store_local(slot, temp)
            self.temps.free(temp)

    # ------------------------------------------------------------------
    # Labels
    # ------------------------------------------------------------------
    def _new_label(self, base: str) -> str:
        self._label_counter += 1
        return f"{base}_{self._label_counter}"

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------
    def _gen_block(self, block: ast.Block) -> None:
        for statement in block.statements:
            self._gen_statement(statement)

    def _gen_statement(self, statement: ast.Statement) -> None:
        if isinstance(statement, ast.Block):
            self._gen_block(statement)
        elif isinstance(statement, ast.Declaration):
            if statement.initializer is not None:
                self._gen_assign_to_local(statement.name, statement.initializer)
        elif isinstance(statement, ast.Assign):
            self._gen_assign(statement)
        elif isinstance(statement, ast.ArrayAssign):
            self._gen_array_assign(statement)
        elif isinstance(statement, ast.ExprStatement):
            value = self._gen_expression(statement.expr)
            self.temps.release(value)
        elif isinstance(statement, ast.If):
            self._gen_if(statement)
        elif isinstance(statement, ast.While):
            self._gen_while(statement)
        elif isinstance(statement, ast.For):
            self._gen_for(statement)
        elif isinstance(statement, ast.Return):
            self._gen_return(statement)
        elif isinstance(statement, ast.Break):
            self.builder.br(self._loop_stack[-1][0])
            self.builder.block(self._new_label("after_break"))
        elif isinstance(statement, ast.Continue):
            self.builder.br(self._loop_stack[-1][1])
            self.builder.block(self._new_label("after_continue"))
        elif isinstance(statement, ast.PrintStatement):
            value = self._gen_expression(statement.value)
            self.builder.print_(value.reg)
            self.temps.release(value)
        else:  # pragma: no cover - semantics rejects everything else
            raise MiniCError(f"cannot generate {type(statement).__name__}")

    # -------------------------- assignments --------------------------
    def _gen_assign(self, assign: ast.Assign) -> None:
        if assign.name in self.locals:
            self._gen_assign_to_local(assign.name, assign.value)
        else:
            gvar = self.symbols.globals[assign.name]
            value = self._gen_expression(assign.value)
            address = self.temps.alloc()
            self.builder.li(address, self.program.symbol_address(assign.name), comment=assign.name)
            self.builder.store(_STORE_BY_TYPE[gvar.ctype.name], value.reg, address, 0)
            self.temps.free(address)
            self.temps.release(value)

    def _gen_assign_to_local(self, name: str, value_expr: ast.Expression) -> None:
        slot = self.locals[name]
        if slot.reg is not None and isinstance(value_expr, ast.Binary) and value_expr.ctype is not None:
            # Emit the operation straight into the local's home register so
            # induction updates look like ``add.32 s0, s0, 1`` (which the
            # loop trip-count analysis recognises).
            if value_expr.op not in ("&&", "||"):
                self._gen_binary_into(slot.reg, value_expr)
                self._narrow_in_place(slot.reg, slot.ctype)
                return
        value = self._gen_expression(value_expr)
        if slot.reg is not None:
            self._normalize(slot.reg, value.reg, slot.ctype)
        else:
            temp = self.temps.alloc()
            self._normalize(temp, value.reg, slot.ctype)
            self._store_local(slot, temp)
            self.temps.free(temp)
        self.temps.release(value)

    def _gen_array_assign(self, assign: ast.ArrayAssign) -> None:
        gvar = self.symbols.globals[assign.name]
        value = self._gen_expression(assign.value)
        address = self._gen_array_address(assign.name, assign.index, gvar.ctype)
        self.builder.store(_STORE_BY_TYPE[gvar.ctype.name], value.reg, address.reg, 0)
        self.temps.release(address)
        self.temps.release(value)

    # -------------------------- control flow -------------------------
    def _gen_condition_branch(self, condition: ast.Expression, false_label: str) -> None:
        value = self._gen_expression(condition)
        self.builder.beq(value.reg, false_label)
        self.temps.release(value)

    def _gen_if(self, statement: ast.If) -> None:
        end_label = self._new_label("if_end")
        else_label = self._new_label("if_else") if statement.else_body is not None else end_label
        self._gen_condition_branch(statement.condition, else_label)
        self.builder.block(self._new_label("if_then"))
        self._gen_block(statement.then_body)
        if statement.else_body is not None:
            self.builder.br(end_label)
            self.builder.block(else_label)
            self._gen_block(statement.else_body)
        self.builder.block(end_label)

    def _gen_while(self, statement: ast.While) -> None:
        cond_label = self._new_label("while_cond")
        end_label = self._new_label("while_end")
        self.builder.block(cond_label)
        self._gen_condition_branch(statement.condition, end_label)
        self.builder.block(self._new_label("while_body"))
        self._loop_stack.append((end_label, cond_label))
        self._gen_block(statement.body)
        self._loop_stack.pop()
        self.builder.br(cond_label)
        self.builder.block(end_label)

    def _gen_for(self, statement: ast.For) -> None:
        if statement.init is not None:
            self._gen_statement(statement.init)
        cond_label = self._new_label("for_cond")
        step_label = self._new_label("for_step")
        end_label = self._new_label("for_end")
        self.builder.block(cond_label)
        if statement.condition is not None:
            self._gen_condition_branch(statement.condition, end_label)
        self.builder.block(self._new_label("for_body"))
        self._loop_stack.append((end_label, step_label))
        self._gen_block(statement.body)
        self._loop_stack.pop()
        self.builder.block(step_label)
        if statement.step is not None:
            self._gen_statement(statement.step)
        self.builder.br(cond_label)
        self.builder.block(end_label)

    def _gen_return(self, statement: ast.Return) -> None:
        if statement.value is not None:
            value = self._gen_expression(statement.value)
            self._normalize(RETURN_VALUE, value.reg, self.fn.return_type)
            self.temps.release(value)
        self.builder.br(self._epilogue_label)
        self.builder.block(self._new_label("after_return"))

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------
    def _gen_expression(self, expr: ast.Expression) -> _Value:
        if isinstance(expr, ast.IntLiteral):
            if expr.value == 0:
                return _Value(ZERO, owned=False)
            temp = self.temps.alloc()
            self.builder.li(temp, expr.value)
            return _Value(temp, owned=True)
        if isinstance(expr, ast.VarRef):
            return self._gen_var_ref(expr)
        if isinstance(expr, ast.ArrayRef):
            return self._gen_array_ref(expr)
        if isinstance(expr, ast.Unary):
            return self._gen_unary(expr)
        if isinstance(expr, ast.Binary):
            if expr.op in ("&&", "||"):
                return self._gen_logical(expr)
            dest = self.temps.alloc()
            self._gen_binary_into(dest, expr)
            return _Value(dest, owned=True)
        if isinstance(expr, ast.Call):
            return self._gen_call(expr)
        raise MiniCError(f"cannot generate expression {type(expr).__name__}")

    def _gen_var_ref(self, expr: ast.VarRef) -> _Value:
        if expr.name in self.locals:
            slot = self.locals[expr.name]
            if slot.reg is not None:
                return _Value(slot.reg, owned=False)
            temp = self.temps.alloc()
            self._load_local(slot, temp)
            return _Value(temp, owned=True)
        gvar = self.symbols.globals[expr.name]
        address = self.temps.alloc()
        self.builder.li(address, self.program.symbol_address(expr.name), comment=expr.name)
        temp = self.temps.alloc()
        self.builder.load(_LOAD_BY_TYPE[gvar.ctype.name], temp, address, 0)
        self.temps.free(address)
        return _Value(temp, owned=True)

    def _gen_array_address(self, name: str, index: ast.Expression, ctype: ast.CType) -> _Value:
        index_value = self._gen_expression(index)
        address = self.temps.alloc()
        self.builder.li(address, self.program.symbol_address(name), comment=name)
        shift = _SHIFT_BY_SIZE[ctype.width.bytes]
        if shift == 0:
            self.builder.add(address, address, index_value.reg)
        else:
            scaled = self.temps.alloc()
            self.builder.sll(scaled, index_value.reg, shift)
            self.builder.add(address, address, scaled)
            self.temps.free(scaled)
        self.temps.release(index_value)
        return _Value(address, owned=True)

    def _gen_array_ref(self, expr: ast.ArrayRef) -> _Value:
        gvar = self.symbols.globals[expr.name]
        address = self._gen_array_address(expr.name, expr.index, gvar.ctype)
        temp = self.temps.alloc()
        self.builder.load(_LOAD_BY_TYPE[gvar.ctype.name], temp, address.reg, 0)
        self.temps.release(address)
        return _Value(temp, owned=True)

    def _gen_unary(self, expr: ast.Unary) -> _Value:
        operand = self._gen_expression(expr.operand)
        dest = self.temps.alloc()
        width = self._op_width(expr.ctype)
        if expr.op == "-":
            inst = self.builder.sub(dest, ZERO, operand.reg)
            inst.width = width
        elif expr.op == "~":
            inst = self.builder.xor(dest, operand.reg, -1)
            inst.width = width
        elif expr.op == "!":
            inst = self.builder.cmp(Opcode.CMPEQ, dest, operand.reg, 0)
            inst.width = width
        else:  # pragma: no cover - parser produces no other unary ops
            raise MiniCError(f"unsupported unary operator {expr.op!r}", expr.line)
        self.temps.release(operand)
        return _Value(dest, owned=True)

    _BINARY_OPCODES = {
        "+": Opcode.ADD,
        "-": Opcode.SUB,
        "*": Opcode.MUL,
        "&": Opcode.AND,
        "|": Opcode.OR,
        "^": Opcode.XOR,
        "<<": Opcode.SLL,
        ">>": Opcode.SRA,
        "==": Opcode.CMPEQ,
        "!=": Opcode.CMPNE,
        "<": Opcode.CMPLT,
        "<=": Opcode.CMPLE,
    }

    def _gen_binary_into(self, dest: Reg, expr: ast.Binary) -> None:
        """Emit a binary operation writing ``dest`` (not for &&/||)."""
        op = expr.op
        left_expr, right_expr = expr.left, expr.right
        swapped = False
        if op == ">":
            op, left_expr, right_expr, swapped = "<", right_expr, left_expr, True
        elif op == ">=":
            op, left_expr, right_expr, swapped = "<=", right_expr, left_expr, True
        opcode = self._BINARY_OPCODES[op]

        left = self._gen_expression(left_expr)
        if isinstance(right_expr, ast.IntLiteral) and not swapped:
            right_operand: object = Imm(right_expr.value)
            right = None
        else:
            right = self._gen_expression(right_expr)
            right_operand = right.reg
        width = self._op_width(expr.ctype)
        # Comparisons and shifts observe their operands at the promoted
        # width of the *inputs*, not of the (int) result.
        if op in ("==", "!=", "<", "<="):
            width = self._op_width(_promoted(left_expr, right_expr))
        inst = self.builder._emit(opcode, dest, (left.reg, right_operand))
        inst.width = width
        self.temps.release(left)
        if right is not None:
            self.temps.release(right)

    def _gen_logical(self, expr: ast.Binary) -> _Value:
        """Short-circuit ``&&`` / ``||`` producing a 0/1 value."""
        dest = self.temps.alloc()
        end_label = self._new_label("bool_end")
        if expr.op == "&&":
            self.builder.li(dest, 0)
            left = self._gen_expression(expr.left)
            self.builder.beq(left.reg, end_label)
            self.temps.release(left)
            self.builder.block(self._new_label("bool_rhs"))
            right = self._gen_expression(expr.right)
            inst = self.builder.cmp(Opcode.CMPNE, dest, right.reg, 0)
            inst.width = Width.WORD
            self.temps.release(right)
        else:
            self.builder.li(dest, 1)
            left = self._gen_expression(expr.left)
            self.builder.bne(left.reg, end_label)
            self.temps.release(left)
            self.builder.block(self._new_label("bool_rhs"))
            right = self._gen_expression(expr.right)
            inst = self.builder.cmp(Opcode.CMPNE, dest, right.reg, 0)
            inst.width = Width.WORD
            self.temps.release(right)
        self.builder.block(end_label)
        return _Value(dest, owned=True)

    def _gen_call(self, expr: ast.Call) -> _Value:
        signature = self.symbols.functions[expr.name]
        arg_values = [self._gen_expression(arg) for arg in expr.args]
        for index, (value, ptype) in enumerate(zip(arg_values, signature.param_types)):
            self._normalize(ARG_REGISTERS[index], value.reg, ptype)
        for value in arg_values:
            self.temps.release(value)
        live = self.temps.live_temps()
        for slot, reg in enumerate(live):
            self.builder.store(Opcode.STQ, reg, STACK_POINTER, self._spill_base + 8 * slot)
        self.builder.call(expr.name)
        for slot, reg in enumerate(live):
            self.builder.load(Opcode.LDQ, reg, STACK_POINTER, self._spill_base + 8 * slot)
        if signature.return_type.name == "void":
            return _Value(ZERO, owned=False)
        dest = self.temps.alloc()
        self._normalize(dest, RETURN_VALUE, signature.return_type)
        return _Value(dest, owned=True)

    # ------------------------------------------------------------------
    # Width helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _op_width(ctype: Optional[ast.CType]) -> Width:
        """ALU width for an expression type (int ops are 32-bit, long 64)."""
        if ctype is not None and ctype.name == "long":
            return Width.QUAD
        return Width.WORD

    def _normalize(self, dest: Reg, src: Reg, ctype: ast.CType, comment: str = "") -> None:
        """Move ``src`` to ``dest`` normalised to ``ctype``'s storage width."""
        name = ctype.name
        if name == "long" or name == "void":
            if dest != src:
                self.builder.mov(dest, src, comment=comment)
            return
        if name == "int":
            self.builder.mask(Opcode.SEXTL, dest, src, comment=comment)
        elif name == "short":
            self.builder.mask(Opcode.MSKW, dest, src, comment=comment)
        else:  # char
            self.builder.mask(Opcode.MSKB, dest, src, comment=comment)

    def _narrow_in_place(self, reg: Reg, ctype: ast.CType) -> None:
        """Re-normalise a register after an in-place update, if needed."""
        if ctype.name in ("char", "short"):
            opcode = Opcode.MSKB if ctype.name == "char" else Opcode.MSKW
            self.builder.mask(opcode, reg, reg)

    # ------------------------------------------------------------------
    # Stack local helpers
    # ------------------------------------------------------------------
    def _store_local(self, slot: _LocalSlot, reg: Reg) -> None:
        assert slot.stack_offset is not None
        self.builder.store(_STORE_BY_TYPE[slot.ctype.name], reg, STACK_POINTER, slot.stack_offset)

    def _load_local(self, slot: _LocalSlot, reg: Reg) -> None:
        assert slot.stack_offset is not None
        self.builder.load(_LOAD_BY_TYPE[slot.ctype.name], reg, STACK_POINTER, slot.stack_offset)


def _promoted(left: ast.Expression, right: ast.Expression) -> ast.CType:
    """Promoted type of two already-annotated operand expressions."""
    if (left.ctype is not None and left.ctype.name == "long") or (
        right.ctype is not None and right.ctype.name == "long"
    ):
        return ast.CType("long")
    return ast.CType("int")
