"""Abstract syntax tree of the mini-C language.

The tree is deliberately small: four integer types, global scalars and
arrays, functions, structured control flow and integer expressions.  That
is enough surface to express SpecInt95-like integer kernels while keeping
the code generator predictable for the value-range analyses downstream.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from ..isa import Width

__all__ = [
    "CType",
    "Module",
    "GlobalVar",
    "Param",
    "FunctionDef",
    "Block",
    "Declaration",
    "Assign",
    "ArrayAssign",
    "ExprStatement",
    "If",
    "While",
    "For",
    "Return",
    "Break",
    "Continue",
    "PrintStatement",
    "Statement",
    "IntLiteral",
    "VarRef",
    "ArrayRef",
    "Unary",
    "Binary",
    "Call",
    "Expression",
]


@dataclass(frozen=True)
class CType:
    """A mini-C type: one of the four integer widths, optionally an array."""

    name: str                      # "char" | "short" | "int" | "long" | "void"
    array_length: Optional[int] = None

    _WIDTHS = {"char": Width.BYTE, "short": Width.HALF, "int": Width.WORD, "long": Width.QUAD}

    @property
    def width(self) -> Width:
        """Storage width of one element."""
        if self.name == "void":
            raise ValueError("void has no width")
        return self._WIDTHS[self.name]

    @property
    def is_array(self) -> bool:
        return self.array_length is not None

    @property
    def is_unsigned(self) -> bool:
        """char and short load zero-extended (Alpha LDBU/LDWU behaviour)."""
        return self.name in ("char", "short")

    def element_type(self) -> "CType":
        return CType(self.name)

    def __str__(self) -> str:
        if self.is_array:
            return f"{self.name}[{self.array_length}]"
        return self.name


# ----------------------------------------------------------------------
# Expressions
# ----------------------------------------------------------------------
@dataclass
class IntLiteral:
    value: int
    line: int = 0
    ctype: Optional[CType] = None


@dataclass
class VarRef:
    name: str
    line: int = 0
    ctype: Optional[CType] = None


@dataclass
class ArrayRef:
    name: str
    index: "Expression"
    line: int = 0
    ctype: Optional[CType] = None


@dataclass
class Unary:
    op: str                       # "-", "~", "!"
    operand: "Expression"
    line: int = 0
    ctype: Optional[CType] = None


@dataclass
class Binary:
    op: str                       # arithmetic/relational/logical operator
    left: "Expression"
    right: "Expression"
    line: int = 0
    ctype: Optional[CType] = None


@dataclass
class Call:
    name: str
    args: list["Expression"] = field(default_factory=list)
    line: int = 0
    ctype: Optional[CType] = None


Expression = Union[IntLiteral, VarRef, ArrayRef, Unary, Binary, Call]


# ----------------------------------------------------------------------
# Statements
# ----------------------------------------------------------------------
@dataclass
class Declaration:
    ctype: CType
    name: str
    initializer: Optional[Expression] = None
    line: int = 0


@dataclass
class Assign:
    name: str
    value: Expression
    line: int = 0


@dataclass
class ArrayAssign:
    name: str
    index: Expression
    value: Expression
    line: int = 0


@dataclass
class ExprStatement:
    expr: Expression
    line: int = 0


@dataclass
class If:
    condition: Expression
    then_body: "Block"
    else_body: Optional["Block"] = None
    line: int = 0


@dataclass
class While:
    condition: Expression
    body: "Block"
    line: int = 0


@dataclass
class For:
    init: Optional["Statement"]
    condition: Optional[Expression]
    step: Optional["Statement"]
    body: "Block"
    line: int = 0


@dataclass
class Return:
    value: Optional[Expression] = None
    line: int = 0


@dataclass
class Break:
    line: int = 0


@dataclass
class Continue:
    line: int = 0


@dataclass
class PrintStatement:
    value: Expression
    line: int = 0


@dataclass
class Block:
    statements: list["Statement"] = field(default_factory=list)


Statement = Union[
    Declaration,
    Assign,
    ArrayAssign,
    ExprStatement,
    If,
    While,
    For,
    Return,
    Break,
    Continue,
    PrintStatement,
    Block,
]


# ----------------------------------------------------------------------
# Top level
# ----------------------------------------------------------------------
@dataclass
class Param:
    ctype: CType
    name: str


@dataclass
class GlobalVar:
    ctype: CType
    name: str
    initial_values: tuple[int, ...] = ()
    line: int = 0


@dataclass
class FunctionDef:
    return_type: CType
    name: str
    params: list[Param]
    body: Block
    line: int = 0


@dataclass
class Module:
    globals: list[GlobalVar] = field(default_factory=list)
    functions: list[FunctionDef] = field(default_factory=list)

    def function(self, name: str) -> FunctionDef:
        for fn in self.functions:
            if fn.name == name:
                return fn
        raise KeyError(name)
