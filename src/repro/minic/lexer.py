"""Lexer for the mini-C language."""

from __future__ import annotations

from .tokens import KEYWORDS, MiniCError, Token

__all__ = ["tokenize"]

#: Multi-character operators, longest first so maximal munch works.
_OPERATORS = [
    "<<",
    ">>",
    "<=",
    ">=",
    "==",
    "!=",
    "&&",
    "||",
    "+",
    "-",
    "*",
    "/",
    "%",
    "<",
    ">",
    "=",
    "&",
    "|",
    "^",
    "~",
    "!",
    "(",
    ")",
    "[",
    "]",
    "{",
    "}",
    ",",
    ";",
]

_ESCAPES = {"n": 10, "t": 9, "0": 0, "\\": 92, "'": 39}


def tokenize(source: str) -> list[Token]:
    """Tokenize mini-C source text.

    Supports ``//`` and ``/* */`` comments, decimal and hexadecimal integer
    literals, and character literals (``'a'``, ``'\\n'``).
    """
    tokens: list[Token] = []
    line = 1
    i = 0
    length = len(source)
    while i < length:
        ch = source[i]
        if ch == "\n":
            line += 1
            i += 1
            continue
        if ch.isspace():
            i += 1
            continue
        if source.startswith("//", i):
            while i < length and source[i] != "\n":
                i += 1
            continue
        if source.startswith("/*", i):
            end = source.find("*/", i + 2)
            if end < 0:
                raise MiniCError("unterminated /* comment", line)
            line += source.count("\n", i, end)
            i = end + 2
            continue
        if ch == "'":
            value, consumed = _char_literal(source, i, line)
            tokens.append(Token("number", source[i : i + consumed], line, value))
            i += consumed
            continue
        if ch.isdigit():
            j = i
            while j < length and (source[j].isalnum()):
                j += 1
            text = source[i:j]
            try:
                value = int(text, 0)
            except ValueError as exc:
                raise MiniCError(f"bad number literal {text!r}", line) from exc
            tokens.append(Token("number", text, line, value))
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < length and (source[j].isalnum() or source[j] == "_"):
                j += 1
            text = source[i:j]
            kind = "keyword" if text in KEYWORDS else "ident"
            tokens.append(Token(kind, text, line))
            i = j
            continue
        matched = False
        for op in _OPERATORS:
            if source.startswith(op, i):
                tokens.append(Token("op", op, line))
                i += len(op)
                matched = True
                break
        if not matched:
            raise MiniCError(f"unexpected character {ch!r}", line)
    tokens.append(Token("eof", "", line))
    return tokens


def _char_literal(source: str, start: int, line: int) -> tuple[int, int]:
    """Parse a character literal starting at ``start``; return (value, length)."""
    if start + 2 >= len(source):
        raise MiniCError("unterminated character literal", line)
    if source[start + 1] == "\\":
        escape = source[start + 2]
        if escape not in _ESCAPES:
            raise MiniCError(f"unknown escape '\\{escape}'", line)
        if start + 3 >= len(source) or source[start + 3] != "'":
            raise MiniCError("unterminated character literal", line)
        return _ESCAPES[escape], 4
    if source[start + 2] != "'":
        raise MiniCError("unterminated character literal", line)
    return ord(source[start + 1]), 3
