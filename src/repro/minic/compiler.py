"""Top-level mini-C compiler driver."""

from __future__ import annotations

from ..ir import Program, validate_program
from .codegen import generate_program
from .parser import parse
from .semantics import analyze
from .tokens import MiniCError

__all__ = ["compile_source", "MiniCError"]


def compile_source(source: str, validate: bool = True) -> Program:
    """Compile mini-C ``source`` into an executable :class:`Program`.

    The pipeline is parse → semantic analysis → code generation, mirroring
    the "HLL compiler" stage of the paper's toolchain; the resulting program
    is what the binary-level analyses (VRP/VRS) and the simulators consume.
    """
    module = parse(source)
    symbols = analyze(module)
    program = generate_program(module, symbols)
    if validate:
        validate_program(program)
    return program
