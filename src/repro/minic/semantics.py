"""Semantic analysis for mini-C: symbol resolution and type annotation.

The pass fills in the ``ctype`` field of every expression node, checks that
identifiers are declared before use, that calls match their callee's
signature, and rejects the few constructs the backend does not support
(integer division/modulo — the target ISA has no divide unit, mirroring the
fact that the paper's technique targets simple integer operations).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from . import ast_nodes as ast
from .tokens import MiniCError

__all__ = ["FunctionSignature", "ModuleSymbols", "analyze"]

_INT = ast.CType("int")
_LONG = ast.CType("long")


@dataclass
class FunctionSignature:
    """Declared interface of a function."""

    name: str
    return_type: ast.CType
    param_types: list[ast.CType]


@dataclass
class ModuleSymbols:
    """Module-level symbol tables produced by :func:`analyze`."""

    globals: dict[str, ast.GlobalVar] = field(default_factory=dict)
    functions: dict[str, FunctionSignature] = field(default_factory=dict)
    #: Per function: flat mapping of local/parameter names to their types.
    locals: dict[str, dict[str, ast.CType]] = field(default_factory=dict)


def analyze(module: ast.Module) -> ModuleSymbols:
    """Run semantic analysis over ``module`` and return its symbol tables."""
    symbols = ModuleSymbols()
    for gvar in module.globals:
        if gvar.name in symbols.globals:
            raise MiniCError(f"duplicate global {gvar.name!r}", gvar.line)
        if gvar.ctype.name == "void":
            raise MiniCError("globals cannot be void", gvar.line)
        symbols.globals[gvar.name] = gvar
    for fn in module.functions:
        if fn.name in symbols.functions:
            raise MiniCError(f"duplicate function {fn.name!r}", fn.line)
        if len(fn.params) > 6:
            raise MiniCError("at most 6 parameters are supported", fn.line)
        symbols.functions[fn.name] = FunctionSignature(
            name=fn.name,
            return_type=fn.return_type,
            param_types=[p.ctype for p in fn.params],
        )
    for fn in module.functions:
        symbols.locals[fn.name] = _analyze_function(fn, symbols)
    return symbols


# ----------------------------------------------------------------------
# Function-level analysis
# ----------------------------------------------------------------------
def _analyze_function(fn: ast.FunctionDef, symbols: ModuleSymbols) -> dict[str, ast.CType]:
    scope: dict[str, ast.CType] = {}
    for param in fn.params:
        if param.name in scope:
            raise MiniCError(f"duplicate parameter {param.name!r}", fn.line)
        if param.ctype.name == "void":
            raise MiniCError("parameters cannot be void", fn.line)
        scope[param.name] = param.ctype
    checker = _FunctionChecker(fn, symbols, scope)
    checker.check_block(fn.body, loop_depth=0)
    return scope


class _FunctionChecker:
    def __init__(
        self, fn: ast.FunctionDef, symbols: ModuleSymbols, scope: dict[str, ast.CType]
    ) -> None:
        self.fn = fn
        self.symbols = symbols
        self.scope = scope

    # -------------------------- statements ---------------------------
    def check_block(self, block: ast.Block, loop_depth: int) -> None:
        for statement in block.statements:
            self.check_statement(statement, loop_depth)

    def check_statement(self, statement: ast.Statement, loop_depth: int) -> None:
        if isinstance(statement, ast.Block):
            self.check_block(statement, loop_depth)
        elif isinstance(statement, ast.Declaration):
            self._check_declaration(statement)
        elif isinstance(statement, ast.Assign):
            self._check_assign(statement)
        elif isinstance(statement, ast.ArrayAssign):
            self._check_array_assign(statement)
        elif isinstance(statement, ast.ExprStatement):
            self.check_expression(statement.expr)
        elif isinstance(statement, ast.If):
            self.check_expression(statement.condition)
            self.check_block(statement.then_body, loop_depth)
            if statement.else_body is not None:
                self.check_block(statement.else_body, loop_depth)
        elif isinstance(statement, ast.While):
            self.check_expression(statement.condition)
            self.check_block(statement.body, loop_depth + 1)
        elif isinstance(statement, ast.For):
            if statement.init is not None:
                self.check_statement(statement.init, loop_depth)
            if statement.condition is not None:
                self.check_expression(statement.condition)
            if statement.step is not None:
                self.check_statement(statement.step, loop_depth)
            self.check_block(statement.body, loop_depth + 1)
        elif isinstance(statement, ast.Return):
            self._check_return(statement)
        elif isinstance(statement, (ast.Break, ast.Continue)):
            if loop_depth == 0:
                raise MiniCError("break/continue outside of a loop", statement.line)
        elif isinstance(statement, ast.PrintStatement):
            self.check_expression(statement.value)
        else:  # pragma: no cover - parser produces no other nodes
            raise MiniCError(f"unsupported statement {type(statement).__name__}")

    def _check_declaration(self, decl: ast.Declaration) -> None:
        if decl.name in self.scope:
            raise MiniCError(f"duplicate local {decl.name!r}", decl.line)
        if decl.name in self.symbols.globals:
            raise MiniCError(f"local {decl.name!r} shadows a global", decl.line)
        if decl.ctype.name == "void":
            raise MiniCError("locals cannot be void", decl.line)
        if decl.ctype.is_array:
            raise MiniCError("local arrays are not supported; use a global", decl.line)
        self.scope[decl.name] = decl.ctype
        if decl.initializer is not None:
            self.check_expression(decl.initializer)

    def _check_assign(self, assign: ast.Assign) -> None:
        target = self._variable_type(assign.name, assign.line)
        if target.is_array:
            raise MiniCError(f"cannot assign to array {assign.name!r}", assign.line)
        self.check_expression(assign.value)

    def _check_array_assign(self, assign: ast.ArrayAssign) -> None:
        target = self._variable_type(assign.name, assign.line)
        if not target.is_array:
            raise MiniCError(f"{assign.name!r} is not an array", assign.line)
        self.check_expression(assign.index)
        self.check_expression(assign.value)

    def _check_return(self, statement: ast.Return) -> None:
        returns_value = self.fn.return_type.name != "void"
        if returns_value and statement.value is None:
            raise MiniCError(f"{self.fn.name} must return a value", statement.line)
        if not returns_value and statement.value is not None:
            raise MiniCError(f"{self.fn.name} returns void", statement.line)
        if statement.value is not None:
            self.check_expression(statement.value)

    # -------------------------- expressions --------------------------
    def check_expression(self, expr: ast.Expression) -> ast.CType:
        ctype = self._expression_type(expr)
        expr.ctype = ctype
        return ctype

    def _expression_type(self, expr: ast.Expression) -> ast.CType:
        if isinstance(expr, ast.IntLiteral):
            return _LONG if abs(expr.value) > 0x7FFFFFFF else _INT
        if isinstance(expr, ast.VarRef):
            ctype = self._variable_type(expr.name, expr.line)
            if ctype.is_array:
                raise MiniCError(f"array {expr.name!r} used without an index", expr.line)
            return ctype
        if isinstance(expr, ast.ArrayRef):
            ctype = self._variable_type(expr.name, expr.line)
            if not ctype.is_array:
                raise MiniCError(f"{expr.name!r} is not an array", expr.line)
            self.check_expression(expr.index)
            return ctype.element_type()
        if isinstance(expr, ast.Unary):
            operand = self.check_expression(expr.operand)
            if expr.op == "!":
                return _INT
            return _promote(operand, _INT)
        if isinstance(expr, ast.Binary):
            if expr.op in ("/", "%"):
                raise MiniCError(
                    "integer division/modulo is not supported by the target ISA; "
                    "use shifts and masks",
                    expr.line,
                )
            left = self.check_expression(expr.left)
            right = self.check_expression(expr.right)
            if expr.op in ("<", "<=", ">", ">=", "==", "!=", "&&", "||"):
                return _INT
            return _promote(left, right)
        if isinstance(expr, ast.Call):
            signature = self.symbols.functions.get(expr.name)
            if signature is None:
                raise MiniCError(f"call to undefined function {expr.name!r}", expr.line)
            if len(expr.args) != len(signature.param_types):
                raise MiniCError(
                    f"{expr.name} expects {len(signature.param_types)} arguments, "
                    f"got {len(expr.args)}",
                    expr.line,
                )
            for arg in expr.args:
                self.check_expression(arg)
            if signature.return_type.name == "void":
                return ast.CType("void")
            return signature.return_type
        raise MiniCError(f"unsupported expression {type(expr).__name__}")

    def _variable_type(self, name: str, line: int) -> ast.CType:
        if name in self.scope:
            return self.scope[name]
        if name in self.symbols.globals:
            return self.symbols.globals[name].ctype
        raise MiniCError(f"undefined variable {name!r}", line)


def _promote(left: ast.CType, right: ast.CType) -> ast.CType:
    """C-style integer promotion: anything below int becomes int."""
    if "void" in (left.name, right.name):
        raise MiniCError("void value used in an expression")
    if "long" in (left.name, right.name):
        return _LONG
    return _INT
