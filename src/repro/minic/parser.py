"""Recursive-descent parser for mini-C."""

from __future__ import annotations

from typing import Optional

from . import ast_nodes as ast
from .lexer import tokenize
from .tokens import MiniCError, Token

__all__ = ["parse"]

_TYPE_NAMES = ("char", "short", "int", "long", "void")


def parse(source: str) -> ast.Module:
    """Parse mini-C source text into a :class:`~repro.minic.ast_nodes.Module`."""
    return _Parser(tokenize(source)).parse_module()


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._pos = 0

    # ------------------------------------------------------------------
    # Token helpers
    # ------------------------------------------------------------------
    @property
    def _current(self) -> Token:
        return self._tokens[self._pos]

    def _peek(self, offset: int = 1) -> Token:
        index = min(self._pos + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _advance(self) -> Token:
        token = self._current
        if token.kind != "eof":
            self._pos += 1
        return token

    def _expect_op(self, text: str) -> Token:
        if not self._current.is_op(text):
            raise MiniCError(f"expected {text!r}, got {self._current.text!r}", self._current.line)
        return self._advance()

    def _expect_ident(self) -> Token:
        if self._current.kind != "ident":
            raise MiniCError(f"expected an identifier, got {self._current.text!r}", self._current.line)
        return self._advance()

    def _accept_op(self, text: str) -> bool:
        if self._current.is_op(text):
            self._advance()
            return True
        return False

    def _at_type(self) -> bool:
        return self._current.kind == "keyword" and self._current.text in _TYPE_NAMES

    # ------------------------------------------------------------------
    # Top level
    # ------------------------------------------------------------------
    def parse_module(self) -> ast.Module:
        module = ast.Module()
        while self._current.kind != "eof":
            if not self._at_type():
                raise MiniCError(
                    f"expected a declaration, got {self._current.text!r}", self._current.line
                )
            ctype_name = self._advance().text
            name_token = self._expect_ident()
            if self._current.is_op("("):
                module.functions.append(self._parse_function(ctype_name, name_token))
            else:
                module.globals.append(self._parse_global(ctype_name, name_token))
        return module

    def _parse_global(self, type_name: str, name_token: Token) -> ast.GlobalVar:
        array_length: Optional[int] = None
        if self._accept_op("["):
            length_token = self._advance()
            if length_token.kind != "number" or length_token.value is None:
                raise MiniCError("array length must be a constant", length_token.line)
            array_length = length_token.value
            self._expect_op("]")
        initial: tuple[int, ...] = ()
        if self._accept_op("="):
            initial = self._parse_initializer()
        self._expect_op(";")
        return ast.GlobalVar(
            ctype=ast.CType(type_name, array_length),
            name=name_token.text,
            initial_values=initial,
            line=name_token.line,
        )

    def _parse_initializer(self) -> tuple[int, ...]:
        if self._accept_op("{"):
            values: list[int] = []
            while not self._current.is_op("}"):
                values.append(self._parse_constant())
                if not self._accept_op(","):
                    break
            self._expect_op("}")
            return tuple(values)
        return (self._parse_constant(),)

    def _parse_constant(self) -> int:
        negative = self._accept_op("-")
        token = self._advance()
        if token.kind != "number" or token.value is None:
            raise MiniCError("expected a constant", token.line)
        return -token.value if negative else token.value

    def _parse_function(self, return_type: str, name_token: Token) -> ast.FunctionDef:
        self._expect_op("(")
        params: list[ast.Param] = []
        if not self._current.is_op(")"):
            if self._current.is_keyword("void") and self._peek().is_op(")"):
                self._advance()
            else:
                while True:
                    if not self._at_type():
                        raise MiniCError("expected a parameter type", self._current.line)
                    ptype = self._advance().text
                    pname = self._expect_ident()
                    params.append(ast.Param(ast.CType(ptype), pname.text))
                    if not self._accept_op(","):
                        break
        self._expect_op(")")
        body = self._parse_block()
        return ast.FunctionDef(
            return_type=ast.CType(return_type),
            name=name_token.text,
            params=params,
            body=body,
            line=name_token.line,
        )

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------
    def _parse_block(self) -> ast.Block:
        self._expect_op("{")
        block = ast.Block()
        while not self._current.is_op("}"):
            block.statements.append(self._parse_statement())
        self._expect_op("}")
        return block

    def _parse_statement(self) -> ast.Statement:
        token = self._current
        if token.is_op("{"):
            return self._parse_block()
        if self._at_type():
            return self._parse_declaration()
        if token.is_keyword("if"):
            return self._parse_if()
        if token.is_keyword("while"):
            return self._parse_while()
        if token.is_keyword("for"):
            return self._parse_for()
        if token.is_keyword("return"):
            self._advance()
            value = None if self._current.is_op(";") else self._parse_expression()
            self._expect_op(";")
            return ast.Return(value=value, line=token.line)
        if token.is_keyword("break"):
            self._advance()
            self._expect_op(";")
            return ast.Break(line=token.line)
        if token.is_keyword("continue"):
            self._advance()
            self._expect_op(";")
            return ast.Continue(line=token.line)
        if token.is_keyword("print"):
            self._advance()
            self._expect_op("(")
            value = self._parse_expression()
            self._expect_op(")")
            self._expect_op(";")
            return ast.PrintStatement(value=value, line=token.line)
        statement = self._parse_simple_statement()
        self._expect_op(";")
        return statement

    def _parse_declaration(self) -> ast.Declaration:
        type_token = self._advance()
        name_token = self._expect_ident()
        initializer = None
        if self._accept_op("="):
            initializer = self._parse_expression()
        self._expect_op(";")
        return ast.Declaration(
            ctype=ast.CType(type_token.text),
            name=name_token.text,
            initializer=initializer,
            line=name_token.line,
        )

    def _parse_simple_statement(self) -> ast.Statement:
        """Assignment, array assignment or bare expression (no trailing ';')."""
        token = self._current
        if token.kind == "ident":
            if self._peek().is_op("="):
                name = self._advance().text
                self._advance()
                value = self._parse_expression()
                return ast.Assign(name=name, value=value, line=token.line)
            if self._peek().is_op("["):
                saved = self._pos
                name = self._advance().text
                self._advance()
                index = self._parse_expression()
                self._expect_op("]")
                if self._accept_op("="):
                    value = self._parse_expression()
                    return ast.ArrayAssign(name=name, index=index, value=value, line=token.line)
                self._pos = saved
        expr = self._parse_expression()
        return ast.ExprStatement(expr=expr, line=token.line)

    def _parse_if(self) -> ast.If:
        token = self._advance()
        self._expect_op("(")
        condition = self._parse_expression()
        self._expect_op(")")
        then_body = self._parse_statement_as_block()
        else_body = None
        if self._current.is_keyword("else"):
            self._advance()
            else_body = self._parse_statement_as_block()
        return ast.If(condition=condition, then_body=then_body, else_body=else_body, line=token.line)

    def _parse_while(self) -> ast.While:
        token = self._advance()
        self._expect_op("(")
        condition = self._parse_expression()
        self._expect_op(")")
        body = self._parse_statement_as_block()
        return ast.While(condition=condition, body=body, line=token.line)

    def _parse_for(self) -> ast.For:
        token = self._advance()
        self._expect_op("(")
        init: Optional[ast.Statement] = None
        if not self._current.is_op(";"):
            init = self._parse_simple_statement()
        self._expect_op(";")
        condition: Optional[ast.Expression] = None
        if not self._current.is_op(";"):
            condition = self._parse_expression()
        self._expect_op(";")
        step: Optional[ast.Statement] = None
        if not self._current.is_op(")"):
            step = self._parse_simple_statement()
        self._expect_op(")")
        body = self._parse_statement_as_block()
        return ast.For(init=init, condition=condition, step=step, body=body, line=token.line)

    def _parse_statement_as_block(self) -> ast.Block:
        statement = self._parse_statement()
        if isinstance(statement, ast.Block):
            return statement
        return ast.Block(statements=[statement])

    # ------------------------------------------------------------------
    # Expressions (precedence climbing)
    # ------------------------------------------------------------------
    _PRECEDENCE = [
        ("||",),
        ("&&",),
        ("|",),
        ("^",),
        ("&",),
        ("==", "!="),
        ("<", "<=", ">", ">="),
        ("<<", ">>"),
        ("+", "-"),
        ("*", "/", "%"),
    ]

    def _parse_expression(self) -> ast.Expression:
        return self._parse_binary(0)

    def _parse_binary(self, level: int) -> ast.Expression:
        if level >= len(self._PRECEDENCE):
            return self._parse_unary()
        left = self._parse_binary(level + 1)
        while self._current.kind == "op" and self._current.text in self._PRECEDENCE[level]:
            op_token = self._advance()
            right = self._parse_binary(level + 1)
            left = ast.Binary(op=op_token.text, left=left, right=right, line=op_token.line)
        return left

    def _parse_unary(self) -> ast.Expression:
        token = self._current
        if token.kind == "op" and token.text in ("-", "~", "!"):
            self._advance()
            operand = self._parse_unary()
            return ast.Unary(op=token.text, operand=operand, line=token.line)
        return self._parse_primary()

    def _parse_primary(self) -> ast.Expression:
        token = self._current
        if token.kind == "number":
            self._advance()
            return ast.IntLiteral(value=token.value or 0, line=token.line)
        if token.is_op("("):
            self._advance()
            expr = self._parse_expression()
            self._expect_op(")")
            return expr
        if token.kind == "ident":
            name = self._advance().text
            if self._accept_op("("):
                args: list[ast.Expression] = []
                if not self._current.is_op(")"):
                    while True:
                        args.append(self._parse_expression())
                        if not self._accept_op(","):
                            break
                self._expect_op(")")
                return ast.Call(name=name, args=args, line=token.line)
            if self._accept_op("["):
                index = self._parse_expression()
                self._expect_op("]")
                return ast.ArrayRef(name=name, index=index, line=token.line)
            return ast.VarRef(name=name, line=token.line)
        raise MiniCError(f"unexpected token {token.text!r} in expression", token.line)
