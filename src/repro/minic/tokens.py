"""Token definitions for the mini-C front end."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Token", "KEYWORDS", "MiniCError"]


class MiniCError(Exception):
    """Raised for lexical, syntactic or semantic errors in mini-C source."""

    def __init__(self, message: str, line: int | None = None) -> None:
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)
        self.line = line


#: Reserved words of the language.  The four integer types mirror the HLL
#: declared widths the paper's VRP consumes (§2.1): char=8, short=16,
#: int=32, long=64 bits.
KEYWORDS = frozenset(
    {
        "char",
        "short",
        "int",
        "long",
        "void",
        "if",
        "else",
        "while",
        "for",
        "return",
        "break",
        "continue",
        "print",
    }
)


@dataclass(frozen=True)
class Token:
    """One lexical token.

    ``kind`` is one of: ``ident``, ``keyword``, ``number``, ``op``, ``eof``.
    """

    kind: str
    text: str
    line: int
    value: int | None = None

    def is_keyword(self, word: str) -> bool:
        return self.kind == "keyword" and self.text == word

    def is_op(self, text: str) -> bool:
        return self.kind == "op" and self.text == text

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind}, {self.text!r}, line {self.line})"
