"""Mini-C front end.

A small C-like language (char/short/int/long scalars, global arrays,
structured control flow, integer expressions, function calls) together with
a code generator targeting the Alpha-like ISA.  Its role in the
reproduction is the same as the HP-Alpha C compiler's role in the paper: it
is the source of *declared-width* information (``int``, ``char`` ...) and of
realistic instruction mixes for the workload suite.
"""

from .ast_nodes import CType, Module
from .compiler import compile_source
from .lexer import tokenize
from .parser import parse
from .semantics import ModuleSymbols, analyze
from .tokens import MiniCError, Token

__all__ = [
    "CType",
    "Module",
    "compile_source",
    "tokenize",
    "parse",
    "ModuleSymbols",
    "analyze",
    "MiniCError",
    "Token",
]
