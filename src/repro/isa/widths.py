"""Operand widths used by the width-annotated instruction set.

The paper assumes a 64-bit architecture whose opcodes may specify operand
widths of a byte, halfword, word and doubleword (quadword in Alpha
terminology).  ``Width`` is the common currency between the compiler
analyses (:mod:`repro.core`), the instruction set (:mod:`repro.isa`) and the
power model (:mod:`repro.power`).
"""

from __future__ import annotations

import enum

__all__ = [
    "Width",
    "MACHINE_BITS",
    "INT64_MIN",
    "INT64_MAX",
    "UINT64_MAX",
    "width_for_signed_range",
    "width_for_value",
    "significant_bytes",
    "size_class_bytes",
    "to_signed",
    "to_unsigned",
    "wrap_to_width",
]

MACHINE_BITS = 64
INT64_MIN = -(1 << 63)
INT64_MAX = (1 << 63) - 1
UINT64_MAX = (1 << 64) - 1


class Width(enum.IntEnum):
    """Operand width in bits.

    The integer value of each member is the number of bits, so ``Width``
    members order naturally (``Width.BYTE < Width.QUAD``) and can be used
    directly in arithmetic (``width // 8`` gives bytes).
    """

    BYTE = 8
    HALF = 16
    WORD = 32
    QUAD = 64

    @property
    def bytes(self) -> int:
        """Number of bytes spanned by this width."""
        return self.value // 8

    @property
    def bits(self) -> int:
        """Number of bits spanned by this width (same as ``int(self)``)."""
        return self.value

    def min_signed(self) -> int:
        """Smallest representable two's-complement value at this width."""
        return -(1 << (self.value - 1))

    def max_signed(self) -> int:
        """Largest representable two's-complement value at this width."""
        return (1 << (self.value - 1)) - 1

    def contains_signed(self, value: int) -> bool:
        """Return True when ``value`` fits in this width as a signed int."""
        return self.min_signed() <= value <= self.max_signed()

    def next_wider(self) -> "Width":
        """Return the next wider width (QUAD maps to itself)."""
        order = [Width.BYTE, Width.HALF, Width.WORD, Width.QUAD]
        index = order.index(self)
        return order[min(index + 1, len(order) - 1)]

    @staticmethod
    def all_widths() -> tuple["Width", ...]:
        """All widths from narrowest to widest."""
        return (Width.BYTE, Width.HALF, Width.WORD, Width.QUAD)


def width_for_signed_range(min_value: int, max_value: int) -> Width:
    """Return the narrowest :class:`Width` that holds ``[min_value, max_value]``.

    Values are interpreted as signed two's complement, matching the paper's
    "narrow values are always kept in 2's complement to keep information
    about the sign" (§2.4).  Ranges exceeding 64 bits clamp to QUAD.
    """
    if min_value > max_value:
        raise ValueError(f"empty range [{min_value}, {max_value}]")
    for width in Width.all_widths():
        if width.contains_signed(min_value) and width.contains_signed(max_value):
            return width
    return Width.QUAD


def width_for_value(value: int) -> Width:
    """Return the narrowest width holding a single signed value."""
    return width_for_signed_range(value, value)


def to_unsigned(value: int) -> int:
    """Map a signed 64-bit value onto its unsigned bit pattern."""
    return value & UINT64_MAX


def to_signed(value: int) -> int:
    """Map an unsigned 64-bit bit pattern onto its signed interpretation."""
    value &= UINT64_MAX
    if value > INT64_MAX:
        value -= 1 << 64
    return value


def wrap_to_width(value: int, width: Width = Width.QUAD) -> int:
    """Wrap ``value`` to the signed range of ``width`` (two's complement).

    This implements the wrap-around overflow behaviour assumed by the paper
    (§2.2.1): arithmetic overflows are not trapped, they wrap.
    """
    mask = (1 << width.value) - 1
    value &= mask
    if value > (mask >> 1):
        value -= 1 << width.value
    return value


def significant_bytes(value: int) -> int:
    """Number of significant bytes of a signed 64-bit value.

    A byte is insignificant when it consists only of leading sign bits, i.e.
    the value can be recovered by sign extension from the remaining low
    bytes.  This is the quantity used by the hardware significance
    compression scheme (§4.6) and by Figure 12's data-size distribution.
    """
    value = to_signed(value)
    for nbytes in range(1, 8):
        low = value & ((1 << (nbytes * 8)) - 1)
        sign_extended = to_signed_n(low, nbytes * 8)
        if sign_extended == value:
            return nbytes
    return 8


def to_signed_n(value: int, bits: int) -> int:
    """Interpret the low ``bits`` bits of ``value`` as a signed integer."""
    mask = (1 << bits) - 1
    value &= mask
    if value > (mask >> 1):
        value -= 1 << bits
    return value


def size_class_bytes(value: int) -> int:
    """Size class used by the hardware *size compression* scheme (§4.6).

    Two tag bits encode whether a value needs 1, 2, 5 or 8 bytes; the odd
    5-byte class exists because memory addresses on the evaluated machine
    are 33-40 bits long (Figure 12 discussion).
    """
    needed = significant_bytes(value)
    for cls in (1, 2, 5, 8):
        if needed <= cls:
            return cls
    return 8
