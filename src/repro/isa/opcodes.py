"""Opcode catalogue for the Alpha-like target ISA.

The catalogue records, for every opcode, the static properties that the
compiler analyses, the simulators and the power model need:

* the *kind* of operation (ALU, shift, compare, memory, control, ...),
* which **width variants** exist as real opcodes.  The base Alpha ISA
  already provides byte/halfword/word/quadword memory operations and 32/64
  bit arithmetic; §4.3 of the paper adds byte and halfword addition, byte
  subtraction, and byte and word logical operations, shifts, conditional
  moves and comparisons.  Multiplication deliberately has no narrow
  variants (it is rare and usually wide),
* the functional unit used and its latency (Table 2 machine), and
* the energy class used by the Wattch-like power model.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from .widths import Width

__all__ = ["OpKind", "Opcode", "OpInfo", "op_info", "narrowest_available_width"]


class OpKind(enum.Enum):
    """Coarse operation category used throughout the analyses."""

    ALU = "alu"            # add/sub and address arithmetic
    MUL = "mul"
    LOGICAL = "logical"    # and/or/xor/bic
    SHIFT = "shift"
    COMPARE = "compare"
    CMOV = "cmov"
    MASK = "mask"          # byte/halfword/word extraction (MSKx)
    EXTEND = "extend"      # sign extension (SEXTx)
    MOVE = "move"          # li/mov/lda
    LOAD = "load"
    STORE = "store"
    BRANCH = "branch"      # conditional and unconditional branches
    CALL = "call"
    RETURN = "return"
    HALT = "halt"
    NOP = "nop"
    OUTPUT = "output"      # debug/output trap (PRINT)


class Opcode(enum.Enum):
    """All opcodes understood by the toolchain and the simulators."""

    # Integer arithmetic.
    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    # Logical operations.
    AND = "and"
    OR = "or"
    XOR = "xor"
    BIC = "bic"            # src1 & ~src2
    # Shifts.
    SLL = "sll"
    SRL = "srl"
    SRA = "sra"
    # Comparisons (produce 0/1).
    CMPEQ = "cmpeq"
    CMPNE = "cmpne"
    CMPLT = "cmplt"
    CMPLE = "cmple"
    CMPULT = "cmpult"
    CMPULE = "cmpule"
    # Conditional moves: dest = src2 if cond(src1) else dest.
    CMOVEQ = "cmoveq"
    CMOVNE = "cmovne"
    # Byte/halfword/word extraction (paper's MSK class) and sign extension.
    MSKB = "mskb"
    MSKW = "mskw"
    MSKL = "mskl"
    SEXTB = "sextb"
    SEXTW = "sextw"
    SEXTL = "sextl"
    # Moves.
    LI = "li"              # dest = immediate
    MOV = "mov"            # dest = src register
    LDA = "lda"            # dest = src + immediate (address generation)
    # Memory.
    LDB = "ldb"
    LDH = "ldh"
    LDW = "ldw"
    LDQ = "ldq"
    STB = "stb"
    STH = "sth"
    STW = "stw"
    STQ = "stq"
    # Control flow.
    BR = "br"
    BEQ = "beq"
    BNE = "bne"
    BLT = "blt"
    BLE = "ble"
    BGT = "bgt"
    BGE = "bge"
    JSR = "jsr"
    RET = "ret"
    HALT = "halt"
    NOP = "nop"
    PRINT = "print"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class OpInfo:
    """Static properties of one opcode."""

    kind: OpKind
    has_dest: bool
    num_srcs: int
    width_variants: tuple[Width, ...]
    functional_unit: str
    latency: int
    energy_class: str

    @property
    def is_memory(self) -> bool:
        return self.kind in (OpKind.LOAD, OpKind.STORE)

    @property
    def is_control(self) -> bool:
        return self.kind in (OpKind.BRANCH, OpKind.CALL, OpKind.RETURN, OpKind.HALT)


_ALL = Width.all_widths()
_NO_NARROW = (Width.WORD, Width.QUAD)
# §4.3: byte + halfword add; byte sub; byte and word logical/shift/cmov/cmp.
_ADD_WIDTHS = (Width.BYTE, Width.HALF, Width.WORD, Width.QUAD)
_SUB_WIDTHS = (Width.BYTE, Width.WORD, Width.QUAD)
_BYTE_WORD = (Width.BYTE, Width.WORD, Width.QUAD)

_ALU = dict(functional_unit="ialu", latency=1, energy_class="alu")
_MULU = dict(functional_unit="imul", latency=7, energy_class="mul")
_MEM = dict(functional_unit="mem", latency=1, energy_class="mem")
_BRU = dict(functional_unit="branch", latency=1, energy_class="branch")

_OPINFO: dict[Opcode, OpInfo] = {
    Opcode.ADD: OpInfo(OpKind.ALU, True, 2, _ADD_WIDTHS, **_ALU),
    Opcode.SUB: OpInfo(OpKind.ALU, True, 2, _SUB_WIDTHS, **_ALU),
    Opcode.MUL: OpInfo(OpKind.MUL, True, 2, _NO_NARROW, **_MULU),
    Opcode.AND: OpInfo(OpKind.LOGICAL, True, 2, _BYTE_WORD, **_ALU),
    Opcode.OR: OpInfo(OpKind.LOGICAL, True, 2, _BYTE_WORD, **_ALU),
    Opcode.XOR: OpInfo(OpKind.LOGICAL, True, 2, _BYTE_WORD, **_ALU),
    Opcode.BIC: OpInfo(OpKind.LOGICAL, True, 2, _BYTE_WORD, **_ALU),
    Opcode.SLL: OpInfo(OpKind.SHIFT, True, 2, _BYTE_WORD, **_ALU),
    Opcode.SRL: OpInfo(OpKind.SHIFT, True, 2, _BYTE_WORD, **_ALU),
    Opcode.SRA: OpInfo(OpKind.SHIFT, True, 2, _BYTE_WORD, **_ALU),
    Opcode.CMPEQ: OpInfo(OpKind.COMPARE, True, 2, _BYTE_WORD, **_ALU),
    Opcode.CMPNE: OpInfo(OpKind.COMPARE, True, 2, _BYTE_WORD, **_ALU),
    Opcode.CMPLT: OpInfo(OpKind.COMPARE, True, 2, _BYTE_WORD, **_ALU),
    Opcode.CMPLE: OpInfo(OpKind.COMPARE, True, 2, _BYTE_WORD, **_ALU),
    Opcode.CMPULT: OpInfo(OpKind.COMPARE, True, 2, _BYTE_WORD, **_ALU),
    Opcode.CMPULE: OpInfo(OpKind.COMPARE, True, 2, _BYTE_WORD, **_ALU),
    Opcode.CMOVEQ: OpInfo(OpKind.CMOV, True, 2, _BYTE_WORD, **_ALU),
    Opcode.CMOVNE: OpInfo(OpKind.CMOV, True, 2, _BYTE_WORD, **_ALU),
    Opcode.MSKB: OpInfo(OpKind.MASK, True, 1, _ALL, **_ALU),
    Opcode.MSKW: OpInfo(OpKind.MASK, True, 1, _ALL, **_ALU),
    Opcode.MSKL: OpInfo(OpKind.MASK, True, 1, _ALL, **_ALU),
    Opcode.SEXTB: OpInfo(OpKind.EXTEND, True, 1, _ALL, **_ALU),
    Opcode.SEXTW: OpInfo(OpKind.EXTEND, True, 1, _ALL, **_ALU),
    Opcode.SEXTL: OpInfo(OpKind.EXTEND, True, 1, _ALL, **_ALU),
    Opcode.LI: OpInfo(OpKind.MOVE, True, 1, _ALL, **_ALU),
    Opcode.MOV: OpInfo(OpKind.MOVE, True, 1, _ALL, **_ALU),
    Opcode.LDA: OpInfo(OpKind.MOVE, True, 2, _ALL, **_ALU),
    Opcode.LDB: OpInfo(OpKind.LOAD, True, 2, (Width.BYTE,), **_MEM),
    Opcode.LDH: OpInfo(OpKind.LOAD, True, 2, (Width.HALF,), **_MEM),
    Opcode.LDW: OpInfo(OpKind.LOAD, True, 2, (Width.WORD,), **_MEM),
    Opcode.LDQ: OpInfo(OpKind.LOAD, True, 2, (Width.QUAD,), **_MEM),
    Opcode.STB: OpInfo(OpKind.STORE, False, 3, (Width.BYTE,), **_MEM),
    Opcode.STH: OpInfo(OpKind.STORE, False, 3, (Width.HALF,), **_MEM),
    Opcode.STW: OpInfo(OpKind.STORE, False, 3, (Width.WORD,), **_MEM),
    Opcode.STQ: OpInfo(OpKind.STORE, False, 3, (Width.QUAD,), **_MEM),
    Opcode.BR: OpInfo(OpKind.BRANCH, False, 0, (Width.QUAD,), **_BRU),
    Opcode.BEQ: OpInfo(OpKind.BRANCH, False, 1, (Width.QUAD,), **_BRU),
    Opcode.BNE: OpInfo(OpKind.BRANCH, False, 1, (Width.QUAD,), **_BRU),
    Opcode.BLT: OpInfo(OpKind.BRANCH, False, 1, (Width.QUAD,), **_BRU),
    Opcode.BLE: OpInfo(OpKind.BRANCH, False, 1, (Width.QUAD,), **_BRU),
    Opcode.BGT: OpInfo(OpKind.BRANCH, False, 1, (Width.QUAD,), **_BRU),
    Opcode.BGE: OpInfo(OpKind.BRANCH, False, 1, (Width.QUAD,), **_BRU),
    Opcode.JSR: OpInfo(OpKind.CALL, True, 0, (Width.QUAD,), **_BRU),
    Opcode.RET: OpInfo(OpKind.RETURN, False, 1, (Width.QUAD,), **_BRU),
    Opcode.HALT: OpInfo(OpKind.HALT, False, 0, (Width.QUAD,), **_BRU),
    Opcode.NOP: OpInfo(OpKind.NOP, False, 0, (Width.QUAD,), **_ALU),
    Opcode.PRINT: OpInfo(OpKind.OUTPUT, False, 1, (Width.QUAD,), **_ALU),
}

# Width-class groupings used by Table 3 ("operation types").
OPERATION_TYPE: dict[Opcode, str] = {}
for _op, _info in _OPINFO.items():
    if _info.kind is OpKind.ALU:
        OPERATION_TYPE[_op] = _op.name
    elif _info.kind is OpKind.MUL:
        OPERATION_TYPE[_op] = "MUL"
    elif _info.kind is OpKind.LOGICAL:
        OPERATION_TYPE[_op] = _op.name if _op.name in ("AND", "OR", "XOR") else "AND"
    elif _info.kind is OpKind.SHIFT:
        OPERATION_TYPE[_op] = "SHIFT"
    elif _info.kind is OpKind.COMPARE:
        OPERATION_TYPE[_op] = "CMP"
    elif _info.kind is OpKind.CMOV:
        OPERATION_TYPE[_op] = "CMOV"
    elif _info.kind in (OpKind.MASK, OpKind.EXTEND):
        OPERATION_TYPE[_op] = "MSK"
    elif _info.kind is OpKind.MOVE:
        OPERATION_TYPE[_op] = "MOVE"
    elif _info.kind is OpKind.LOAD:
        OPERATION_TYPE[_op] = "LOAD"
    elif _info.kind is OpKind.STORE:
        OPERATION_TYPE[_op] = "STORE"
    else:
        OPERATION_TYPE[_op] = "CTRL"


def op_info(op: Opcode) -> OpInfo:
    """Return the :class:`OpInfo` entry for ``op``."""
    return _OPINFO[op]


def narrowest_available_width(op: Opcode, needed: Width) -> Width:
    """Narrowest width variant of ``op`` that can hold ``needed`` bits.

    If the ISA does not provide a variant as narrow as ``needed`` (e.g. a
    16-bit logical operation), the next wider available variant is chosen —
    the paper's opcode-assignment rule.
    """
    candidates = [w for w in op_info(op).width_variants if w >= needed]
    if not candidates:
        return Width.QUAD
    return min(candidates)
