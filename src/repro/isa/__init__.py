"""Alpha-like, width-annotated instruction set architecture.

The ISA is the contract between the compiler-side analyses (value range
propagation and specialization) and the microarchitecture-side simulators.
Its defining feature — the one the paper's proposal relies on — is that
most integer opcodes exist in 8/16/32/64-bit *width variants* so that the
software can communicate operand widths to the hardware.
"""

from .instruction import Imm, Instruction, Operand
from .opcodes import OpKind, Opcode, OpInfo, narrowest_available_width, op_info
from .registers import (
    ARG_REGISTERS,
    NUM_REGISTERS,
    RETURN_ADDRESS,
    RETURN_VALUE,
    SAVED_REGISTERS,
    STACK_POINTER,
    TEMP_REGISTERS,
    ZERO,
    Reg,
    parse_register,
    register_name,
)
from .widths import (
    INT64_MAX,
    INT64_MIN,
    MACHINE_BITS,
    UINT64_MAX,
    Width,
    significant_bytes,
    size_class_bytes,
    to_signed,
    to_unsigned,
    width_for_signed_range,
    width_for_value,
    wrap_to_width,
)

__all__ = [
    "Imm",
    "Instruction",
    "Operand",
    "OpKind",
    "Opcode",
    "OpInfo",
    "narrowest_available_width",
    "op_info",
    "ARG_REGISTERS",
    "NUM_REGISTERS",
    "RETURN_ADDRESS",
    "RETURN_VALUE",
    "SAVED_REGISTERS",
    "STACK_POINTER",
    "TEMP_REGISTERS",
    "ZERO",
    "Reg",
    "parse_register",
    "register_name",
    "INT64_MAX",
    "INT64_MIN",
    "MACHINE_BITS",
    "UINT64_MAX",
    "Width",
    "significant_bytes",
    "size_class_bytes",
    "to_signed",
    "to_unsigned",
    "width_for_signed_range",
    "width_for_value",
    "wrap_to_width",
]
