"""Integer register file description for the Alpha-like target ISA.

The register conventions loosely follow the Alpha calling standard, which is
what the paper's binaries (HP-Alpha compiled SpecInt95 post-processed by
Alto) would have used:

* ``r0``      — function return value (``v0``)
* ``r16-r21`` — first six integer arguments (``a0``-``a5``)
* ``r26``     — return address (``ra``)
* ``r30``     — stack pointer (``sp``)
* ``r31``     — hardwired zero (``zero``)
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "NUM_REGISTERS",
    "Reg",
    "ZERO",
    "RETURN_VALUE",
    "RETURN_ADDRESS",
    "STACK_POINTER",
    "ARG_REGISTERS",
    "TEMP_REGISTERS",
    "SAVED_REGISTERS",
    "register_name",
    "parse_register",
]

NUM_REGISTERS = 32

_SPECIAL_NAMES = {
    0: "v0",
    26: "ra",
    29: "gp",
    30: "sp",
    31: "zero",
}
_ARG_INDICES = tuple(range(16, 22))
_TEMP_INDICES = tuple(range(1, 9)) + tuple(range(22, 26)) + (27, 28)
_SAVED_INDICES = tuple(range(9, 16))


@dataclass(frozen=True, order=True)
class Reg:
    """A single architectural integer register."""

    index: int

    def __post_init__(self) -> None:
        if not 0 <= self.index < NUM_REGISTERS:
            raise ValueError(f"register index out of range: {self.index}")

    @property
    def name(self) -> str:
        """Canonical assembly name (``r7``, or ``sp``/``ra``/``zero``/...)."""
        return register_name(self.index)

    @property
    def is_zero(self) -> bool:
        """True for the hardwired zero register ``r31``."""
        return self.index == 31

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Reg({self.name})"

    def __str__(self) -> str:
        return self.name


ZERO = Reg(31)
RETURN_VALUE = Reg(0)
RETURN_ADDRESS = Reg(26)
STACK_POINTER = Reg(30)
ARG_REGISTERS = tuple(Reg(i) for i in _ARG_INDICES)
TEMP_REGISTERS = tuple(Reg(i) for i in _TEMP_INDICES)
SAVED_REGISTERS = tuple(Reg(i) for i in _SAVED_INDICES)


def register_name(index: int) -> str:
    """Return the canonical textual name of register ``index``."""
    if index in _SPECIAL_NAMES:
        return _SPECIAL_NAMES[index]
    return f"r{index}"


def parse_register(text: str) -> Reg:
    """Parse a register name (``r12``, ``sp``, ``zero``, ``a0``...) into a Reg."""
    text = text.strip().lower()
    aliases = {name: idx for idx, name in _SPECIAL_NAMES.items()}
    aliases.update({f"a{i}": 16 + i for i in range(6)})
    aliases.update({f"t{i}": idx for i, idx in enumerate(_TEMP_INDICES)})
    aliases.update({f"s{i}": 9 + i for i in range(7)})
    if text in aliases:
        return Reg(aliases[text])
    if text.startswith("r") and text[1:].isdigit():
        return Reg(int(text[1:]))
    raise ValueError(f"not a register name: {text!r}")
