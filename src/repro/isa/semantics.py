"""Pure operational semantics of the integer opcodes.

Shared by the functional simulator (:mod:`repro.sim.machine`) and the
constant-folding pass used by value specialization
(:mod:`repro.core.constprop`), so that both agree exactly on wrap-around
and width behaviour.
"""

from __future__ import annotations

from typing import Callable, Optional

from .opcodes import Opcode
from .widths import Width, to_signed_n, wrap_to_width

__all__ = [
    "ARITHMETIC_SEMANTICS",
    "COMPARE_SEMANTICS",
    "MASK_SEMANTICS",
    "BRANCH_SEMANTICS",
    "evaluate_operation",
]

_UINT64 = (1 << 64) - 1


def _shift_amount(b: int) -> int:
    return b & 63


#: op → f(a, b, width) for two-operand arithmetic/logical/shift opcodes.
ARITHMETIC_SEMANTICS: dict[Opcode, Callable[[int, int, Width], int]] = {
    Opcode.ADD: lambda a, b, w: wrap_to_width(a + b, w),
    Opcode.SUB: lambda a, b, w: wrap_to_width(a - b, w),
    Opcode.MUL: lambda a, b, w: wrap_to_width(a * b, w),
    Opcode.AND: lambda a, b, w: wrap_to_width(a & b, w),
    Opcode.OR: lambda a, b, w: wrap_to_width(a | b, w),
    Opcode.XOR: lambda a, b, w: wrap_to_width(a ^ b, w),
    Opcode.BIC: lambda a, b, w: wrap_to_width(a & ~b, w),
    Opcode.SLL: lambda a, b, w: wrap_to_width(a << _shift_amount(b), w),
    Opcode.SRL: lambda a, b, w: wrap_to_width((a & _UINT64) >> _shift_amount(b), w),
    Opcode.SRA: lambda a, b, w: wrap_to_width(a >> _shift_amount(b), w),
}

#: op → f(a, b) for comparisons (producing 0/1).
COMPARE_SEMANTICS: dict[Opcode, Callable[[int, int], int]] = {
    Opcode.CMPEQ: lambda a, b: int(a == b),
    Opcode.CMPNE: lambda a, b: int(a != b),
    Opcode.CMPLT: lambda a, b: int(a < b),
    Opcode.CMPLE: lambda a, b: int(a <= b),
    Opcode.CMPULT: lambda a, b: int((a & _UINT64) < (b & _UINT64)),
    Opcode.CMPULE: lambda a, b: int((a & _UINT64) <= (b & _UINT64)),
}

#: op → f(a) for byte/halfword/word extraction and sign extension.
MASK_SEMANTICS: dict[Opcode, Callable[[int], int]] = {
    Opcode.MSKB: lambda a: a & 0xFF,
    Opcode.MSKW: lambda a: a & 0xFFFF,
    Opcode.MSKL: lambda a: a & 0xFFFFFFFF,
    Opcode.SEXTB: lambda a: to_signed_n(a, 8),
    Opcode.SEXTW: lambda a: to_signed_n(a, 16),
    Opcode.SEXTL: lambda a: to_signed_n(a, 32),
}

#: op → f(condition) for conditional branches.
BRANCH_SEMANTICS: dict[Opcode, Callable[[int], bool]] = {
    Opcode.BEQ: lambda c: c == 0,
    Opcode.BNE: lambda c: c != 0,
    Opcode.BLT: lambda c: c < 0,
    Opcode.BLE: lambda c: c <= 0,
    Opcode.BGT: lambda c: c > 0,
    Opcode.BGE: lambda c: c >= 0,
}


def evaluate_operation(op: Opcode, width: Width, operands: list[int]) -> Optional[int]:
    """Evaluate a side-effect-free value-producing opcode, if possible.

    Returns ``None`` for opcodes that are not pure functions of their
    operands (memory, control flow) — the constant folder leaves those
    alone.
    """
    if op in ARITHMETIC_SEMANTICS and len(operands) == 2:
        return ARITHMETIC_SEMANTICS[op](operands[0], operands[1], width)
    if op in COMPARE_SEMANTICS and len(operands) == 2:
        return COMPARE_SEMANTICS[op](operands[0], operands[1])
    if op in MASK_SEMANTICS and len(operands) == 1:
        return MASK_SEMANTICS[op](operands[0])
    if op is Opcode.LI and len(operands) == 1:
        return wrap_to_width(operands[0], Width.QUAD)
    if op is Opcode.MOV and len(operands) == 1:
        return operands[0]
    if op is Opcode.LDA and len(operands) == 2:
        return wrap_to_width(operands[0] + operands[1], Width.QUAD)
    return None
