"""Instruction and operand representation.

Instructions are three-address, width-annotated and mutable: the VRP /
VRS passes annotate them in place (``width`` re-encoding) or rewrite whole
basic blocks (specialization).  A monotonically increasing ``uid`` makes
every created instruction uniquely identifiable across rewrites, which the
profilers and the dependence graph rely on.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterable, Optional, Union

from .opcodes import OpInfo, OpKind, Opcode, op_info
from .registers import Reg
from .widths import Width

__all__ = ["Imm", "Operand", "Instruction"]

_UID_COUNTER = itertools.count(1)


@dataclass(frozen=True)
class Imm:
    """An immediate (constant) operand."""

    value: int

    def __str__(self) -> str:
        return f"#{self.value}"


Operand = Union[Reg, Imm]


@dataclass
class Instruction:
    """One machine instruction.

    Attributes:
        op: the opcode.
        dest: destination register, or ``None`` for stores/branches.
        srcs: source operands (registers or immediates).  For loads the
            convention is ``(base, Imm(offset))``; for stores it is
            ``(value, base, Imm(offset))``.
        width: the operand width encoded in the opcode.  VRP narrows this.
        target: branch target label or callee function name.
        uid: unique id, stable across IR rewrites for unchanged instructions.
        origin: uid of the instruction this one was cloned from (used by
            the VRS bookkeeping to attribute specialized copies), or None.
        is_guard: True when the instruction was inserted by VRS as part of
            a range-test guard (Figure 6's "specialization comparisons").
    """

    op: Opcode
    dest: Optional[Reg] = None
    srcs: tuple[Operand, ...] = ()
    width: Width = Width.QUAD
    target: Optional[str] = None
    comment: str = ""
    uid: int = field(default_factory=lambda: next(_UID_COUNTER))
    origin: Optional[int] = None
    is_guard: bool = False

    def __post_init__(self) -> None:
        self.srcs = tuple(self.srcs)
        info = self.info
        if info.has_dest and self.dest is None and self.op is not Opcode.JSR:
            raise ValueError(f"{self.op} requires a destination register")
        if not info.has_dest and self.dest is not None:
            raise ValueError(f"{self.op} does not take a destination register")

    # ------------------------------------------------------------------
    # Static properties
    # ------------------------------------------------------------------
    @property
    def info(self) -> OpInfo:
        """Opcode metadata."""
        return op_info(self.op)

    @property
    def kind(self) -> OpKind:
        return self.info.kind

    @property
    def is_branch(self) -> bool:
        """True for conditional and unconditional branches."""
        return self.kind is OpKind.BRANCH

    @property
    def is_conditional_branch(self) -> bool:
        return self.is_branch and self.op is not Opcode.BR

    @property
    def is_call(self) -> bool:
        return self.kind is OpKind.CALL

    @property
    def is_return(self) -> bool:
        return self.kind is OpKind.RETURN

    @property
    def is_control(self) -> bool:
        return self.info.is_control

    @property
    def is_load(self) -> bool:
        return self.kind is OpKind.LOAD

    @property
    def is_store(self) -> bool:
        return self.kind is OpKind.STORE

    @property
    def is_memory(self) -> bool:
        return self.info.is_memory

    @property
    def memory_width(self) -> Width:
        """Access width of a load/store opcode."""
        if not self.is_memory:
            raise ValueError(f"{self.op} is not a memory operation")
        return self.info.width_variants[0]

    # ------------------------------------------------------------------
    # Register defs/uses
    # ------------------------------------------------------------------
    def defs(self) -> tuple[Reg, ...]:
        """Registers written by this instruction (excluding the zero reg)."""
        if self.dest is not None and not self.dest.is_zero:
            return (self.dest,)
        return ()

    def uses(self) -> tuple[Reg, ...]:
        """Registers read by this instruction.

        Conditional moves additionally read their destination (the value is
        retained when the condition is false).
        """
        regs = [s for s in self.srcs if isinstance(s, Reg)]
        if self.kind is OpKind.CMOV and self.dest is not None:
            regs.append(self.dest)
        return tuple(regs)

    def source_registers(self) -> tuple[Reg, ...]:
        """Registers appearing in ``srcs`` only (not the CMOV dest read)."""
        return tuple(s for s in self.srcs if isinstance(s, Reg))

    def immediates(self) -> tuple[Imm, ...]:
        """Immediate operands of this instruction."""
        return tuple(s for s in self.srcs if isinstance(s, Imm))

    # ------------------------------------------------------------------
    # Rewriting helpers
    # ------------------------------------------------------------------
    def clone(self, **overrides) -> "Instruction":
        """Copy this instruction with a fresh uid.

        The copy records the original instruction's uid in ``origin`` so
        that dynamic statistics can be attributed back to the pre-rewrite
        instruction.
        """
        fields = dict(
            op=self.op,
            dest=self.dest,
            srcs=self.srcs,
            width=self.width,
            target=self.target,
            comment=self.comment,
            origin=self.origin if self.origin is not None else self.uid,
            is_guard=self.is_guard,
        )
        fields.update(overrides)
        return Instruction(**fields)

    def replace_sources(self, mapping: dict[Reg, Operand]) -> None:
        """Replace source registers in place according to ``mapping``."""
        self.srcs = tuple(mapping.get(s, s) if isinstance(s, Reg) else s for s in self.srcs)

    # ------------------------------------------------------------------
    # Formatting
    # ------------------------------------------------------------------
    def __str__(self) -> str:
        parts: list[str] = []
        mnemonic = self.op.value
        if self.width is not Width.QUAD and not self.is_memory and not self.is_control:
            mnemonic = f"{mnemonic}.{self.width.bytes * 8}"
        parts.append(mnemonic)
        operands: list[str] = []
        if self.dest is not None:
            operands.append(str(self.dest))
        operands.extend(str(s) for s in self.srcs)
        if self.target is not None:
            operands.append(self.target)
        text = " ".join([parts[0], ", ".join(operands)]).strip()
        if self.comment:
            text = f"{text}    ; {self.comment}"
        return text

    def __hash__(self) -> int:
        return hash(self.uid)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Instruction) and other.uid == self.uid


def total_register_reads(instructions: Iterable[Instruction]) -> int:
    """Total number of register read ports consumed by ``instructions``."""
    return sum(len(inst.uses()) for inst in instructions)
