"""Specialization statistics experiments (Figures 4, 5 and 6)."""

from __future__ import annotations

from ..workloads import SUITE_NAMES
from .engine import default_engine

__all__ = [
    "figure04_profiled_point_distribution",
    "figure05_static_specialized_instructions",
    "figure06_runtime_specialized_instructions",
]


def figure04_profiled_point_distribution(threshold_nj: float = 50.0) -> dict[str, dict[str, float]]:
    """Figure 4: what happened to each profiled point, per benchmark.

    Returns, for every benchmark (plus the average), the total number of
    profiled points and the fraction that was specialized, eliminated for
    lack of benefit, or dropped because another point's region covered it.
    """
    evaluations = default_engine().map_suite(mechanism="vrs", threshold_nj=threshold_nj)
    results: dict[str, dict[str, float]] = {}
    for name in SUITE_NAMES:
        vrs = evaluations[name].vrs_statistics()
        total = max(vrs["points_profiled"], 1)
        results[name] = {
            "points_profiled": float(vrs["points_profiled"]),
            "specialized": vrs["points_specialized"] / total,
            "dependent_on_another_point": vrs["points_dependent"] / total,
            "no_benefit": vrs["points_no_benefit"] / total,
        }
    results["average"] = {
        key: sum(results[name][key] for name in SUITE_NAMES) / len(SUITE_NAMES)
        for key in ("points_profiled", "specialized", "dependent_on_another_point", "no_benefit")
    }
    return results


def figure05_static_specialized_instructions(threshold_nj: float = 50.0) -> dict[str, dict[str, float]]:
    """Figure 5: static instructions specialized vs eliminated, per benchmark."""
    evaluations = default_engine().map_suite(mechanism="vrs", threshold_nj=threshold_nj)
    results: dict[str, dict[str, float]] = {}
    for name in SUITE_NAMES:
        vrs = evaluations[name].vrs_statistics()
        specialized = vrs["static_specialized_instructions"]
        eliminated = vrs["static_eliminated_instructions"]
        total = max(specialized + eliminated, 1)
        results[name] = {
            "total_static_instructions": float(specialized + eliminated),
            "specialized": specialized / total,
            "eliminated": eliminated / total,
        }
    results["average"] = {
        key: sum(results[name][key] for name in SUITE_NAMES) / len(SUITE_NAMES)
        for key in ("total_static_instructions", "specialized", "eliminated")
    }
    return results


def figure06_runtime_specialized_instructions(threshold_nj: float = 50.0) -> dict[str, dict[str, float]]:
    """Figure 6: fraction of executed instructions that are specialized code
    and fraction that are specialization comparisons (guards)."""
    evaluations = default_engine().map_suite(mechanism="vrs", threshold_nj=threshold_nj)
    results: dict[str, dict[str, float]] = {}
    for name in SUITE_NAMES:
        results[name] = dict(evaluations[name].runtime_specialization())
    results["average"] = {
        key: sum(results[name][key] for name in SUITE_NAMES) / len(SUITE_NAMES)
        for key in ("specialized_instructions", "specialization_comparisons")
    }
    return results
