"""Execution-time and energy-delay² experiments (Figures 10, 11, 15),
the §6 headline numbers and the §4.1 analysis-overhead check."""

from __future__ import annotations

import time

from ..core import VRPConfig, run_vrp
from ..workloads import SUITE_NAMES, load_suite
from .energy import VRS_THRESHOLDS_NJ
from .engine import default_engine

__all__ = [
    "figure10_execution_time_savings",
    "figure11_ed2_savings",
    "figure15_combined_ed2_savings",
    "headline_ed2_summary",
    "vrp_analysis_overhead",
]


def figure10_execution_time_savings(
    thresholds: tuple[float, ...] = VRS_THRESHOLDS_NJ,
) -> dict[str, dict[str, float]]:
    """Figure 10: per-benchmark execution-time reduction of VRS."""
    baseline = default_engine().map_suite(mechanism="none")
    results: dict[str, dict[str, float]] = {}
    for threshold in thresholds:
        configured = default_engine().map_suite(mechanism="vrs", threshold_nj=threshold)
        per_benchmark: dict[str, float] = {}
        for name in SUITE_NAMES:
            base_cycles = baseline[name].timing.cycles
            cycles = configured[name].timing.cycles
            per_benchmark[name] = 1.0 - cycles / base_cycles if base_cycles else 0.0
        per_benchmark["average"] = sum(per_benchmark.values()) / len(SUITE_NAMES)
        results[f"vrs_{int(threshold)}nj"] = per_benchmark
    return results


def figure11_ed2_savings(
    thresholds: tuple[float, ...] = VRS_THRESHOLDS_NJ,
) -> dict[str, dict[str, float]]:
    """Figure 11: per-benchmark energy-delay² savings of VRP and VRS."""
    baseline = default_engine().map_suite(mechanism="none")
    results: dict[str, dict[str, float]] = {}

    def add(config_name: str, mechanism: str, threshold: float = 50.0) -> None:
        configured = default_engine().map_suite(mechanism=mechanism, threshold_nj=threshold)
        per_benchmark: dict[str, float] = {}
        for name in SUITE_NAMES:
            base = baseline[name].outcome("baseline").energy
            other = configured[name].outcome("software").energy
            per_benchmark[name] = other.ed2_savings_vs(base)
        per_benchmark["average"] = sum(per_benchmark.values()) / len(SUITE_NAMES)
        results[config_name] = per_benchmark

    add("vrp", "vrp")
    for threshold in thresholds:
        add(f"vrs_{int(threshold)}nj", "vrs", threshold)
    return results


#: The eight configurations of Figure 15.
FIGURE15_CONFIGURATIONS = (
    ("vrp", "vrp", "software"),
    ("vrs_50nj", "vrs", "software"),
    ("hw_size", "none", "hw-size"),
    ("hw_significance", "none", "hw-significance"),
    ("vrp+hw_size", "vrp", "sw+hw-size"),
    ("vrp+hw_significance", "vrp", "sw+hw-significance"),
    ("vrs_50nj+hw_size", "vrs", "sw+hw-size"),
    ("vrs_50nj+hw_significance", "vrs", "sw+hw-significance"),
)


def figure15_combined_ed2_savings() -> dict[str, dict[str, float]]:
    """Figure 15: ED² savings of software, hardware and combined schemes."""
    baseline = default_engine().map_suite(mechanism="none")
    results: dict[str, dict[str, float]] = {}
    for config_name, mechanism, policy in FIGURE15_CONFIGURATIONS:
        configured = default_engine().map_suite(mechanism=mechanism, threshold_nj=50.0)
        per_benchmark: dict[str, float] = {}
        for name in SUITE_NAMES:
            base = baseline[name].outcome("baseline").energy
            other = configured[name].outcome(policy).energy
            per_benchmark[name] = other.ed2_savings_vs(base)
        per_benchmark["average"] = sum(per_benchmark.values()) / len(SUITE_NAMES)
        results[config_name] = per_benchmark
    return results


def headline_ed2_summary() -> dict[str, float]:
    """The §6 headline numbers.

    The paper reports ~14% average ED² savings for the software scheme
    (VRS), ~15% for the hardware scheme and ~28% for the combination.
    """
    figure15 = figure15_combined_ed2_savings()
    return {
        "software_vrs": figure15["vrs_50nj"]["average"],
        "software_vrp": figure15["vrp"]["average"],
        "hardware_significance": figure15["hw_significance"]["average"],
        "combined": figure15["vrs_50nj+hw_significance"]["average"],
    }


def vrp_analysis_overhead() -> dict[str, float]:
    """§4.1: VRP analysis time relative to a (simulated) program run.

    The paper reports 0.02%-0.08% overhead on native runs; a pure-Python
    analysis against a pure-Python simulation is not comparable in absolute
    terms, so this experiment reports both the absolute analysis seconds and
    the ratio against the functional-simulation time of the ref input.
    """
    results: dict[str, float] = {}
    total_analysis = 0.0
    total_simulation = 0.0
    for workload in load_suite():
        program = workload.build()
        workload.apply_input(program, "ref")
        start = time.perf_counter()
        run_vrp(program, VRPConfig())
        analysis_seconds = time.perf_counter() - start

        from ..sim import Machine

        start = time.perf_counter()
        Machine(program).run()
        simulation_seconds = time.perf_counter() - start
        total_analysis += analysis_seconds
        total_simulation += simulation_seconds
        results[workload.name] = analysis_seconds / simulation_seconds if simulation_seconds else 0.0
    results["total_analysis_seconds"] = total_analysis
    results["total_simulation_seconds"] = total_simulation
    results["average_ratio"] = total_analysis / total_simulation if total_simulation else 0.0
    return results
