"""Width- and size-distribution experiments (Figure 2, Figure 7, Figure 12, Table 3).

All distributions are dynamic (weighted by execution counts) and averaged
over the eight workloads, exactly as the paper reports them for SpecInt95.
"""

from __future__ import annotations

from ..isa import Width
from .report import format_percent, format_table
from .engine import default_engine

__all__ = [
    "dynamic_width_fractions",
    "figure02_vrp_width_distribution",
    "figure07_width_by_mechanism",
    "figure12_data_size_distribution",
    "table3_operation_distribution",
]

_WIDTH_ORDER = (Width.BYTE, Width.HALF, Width.WORD, Width.QUAD)


def dynamic_width_fractions(
    mechanism: str, conventional_vrp: bool = False, threshold_nj: float = 50.0
) -> dict[Width, float]:
    """Average dynamic width distribution over the suite for one mechanism."""
    evaluations = default_engine().map_suite(
        mechanism=mechanism, conventional_vrp=conventional_vrp, threshold_nj=threshold_nj
    )
    per_benchmark: list[dict[Width, float]] = []
    for evaluation in evaluations.values():
        counts = evaluation.counted_width_counts()
        total = sum(counts.values())
        if total:
            per_benchmark.append({width: counts[width] / total for width in _WIDTH_ORDER})
    return {
        width: sum(d[width] for d in per_benchmark) / len(per_benchmark)
        for width in _WIDTH_ORDER
    }


def figure02_vrp_width_distribution() -> dict[str, dict[Width, float]]:
    """Figure 2: conventional VRP vs the proposed (useful-range) VRP."""
    return {
        "conventional_vrp": dynamic_width_fractions("vrp", conventional_vrp=True),
        "proposed_vrp": dynamic_width_fractions("vrp", conventional_vrp=False),
    }


def figure07_width_by_mechanism(threshold_nj: float = 50.0) -> dict[str, dict[Width, float]]:
    """Figure 7: width distribution with no mechanism, VRP and VRS."""
    return {
        "none": dynamic_width_fractions("none"),
        "vrp": dynamic_width_fractions("vrp"),
        "vrs": dynamic_width_fractions("vrs", threshold_nj=threshold_nj),
    }


def figure12_data_size_distribution() -> dict[int, float]:
    """Figure 12: distribution of result-value sizes (in bytes) on the baseline."""
    evaluations = default_engine().map_suite(mechanism="none")
    histogram = {size: 0 for size in range(1, 9)}
    for evaluation in evaluations.values():
        for size, count in evaluation.result_size_histogram().items():
            histogram[size] += count
    total = sum(histogram.values())
    if total == 0:
        return {size: 0.0 for size in histogram}
    return {size: count / total for size, count in histogram.items()}


def table3_operation_distribution() -> list[dict[str, object]]:
    """Table 3: dynamic operation-type mix and per-type width distribution (VRP)."""
    evaluations = default_engine().map_suite(mechanism="vrp")
    type_width_counts: dict[str, dict[Width, int]] = {}
    for evaluation in evaluations.values():
        for op_type, per_width in evaluation.operation_type_width_counts().items():
            widths = type_width_counts.setdefault(op_type, {w: 0 for w in _WIDTH_ORDER})
            for width, count in per_width.items():
                widths[width] += count
    type_counts = {op_type: sum(widths.values()) for op_type, widths in type_width_counts.items()}
    total = sum(type_counts.values())

    rows: list[dict[str, object]] = []
    for op_type, count in sorted(type_counts.items(), key=lambda item: item[1], reverse=True):
        widths = type_width_counts[op_type]
        type_total = sum(widths.values()) or 1
        rows.append(
            {
                "type": op_type,
                "percent_of_instructions": count / total if total else 0.0,
                "64b": widths[Width.QUAD] / type_total,
                "32b": widths[Width.WORD] / type_total,
                "16b": widths[Width.HALF] / type_total,
                "8b": widths[Width.BYTE] / type_total,
            }
        )
    return rows


# ----------------------------------------------------------------------
# Textual reports
# ----------------------------------------------------------------------
def print_figure02() -> str:
    data = figure02_vrp_width_distribution()
    rows = []
    for width in _WIDTH_ORDER:
        rows.append(
            [
                f"{width.bits} bits",
                format_percent(data["conventional_vrp"][width]),
                format_percent(data["proposed_vrp"][width]),
            ]
        )
    return format_table(
        ["Instruction width", "Conventional VRP", "Proposed VRP"],
        rows,
        title="Figure 2: dynamic instruction distribution by value-range width",
    )
