"""Plain-text report formatting for the experiment harness."""

from __future__ import annotations

from typing import Sequence

__all__ = ["format_table", "format_percent"]


def format_percent(value: float, decimals: int = 1) -> str:
    """Format a fraction as a percentage string (``0.137`` → ``13.7%``)."""
    return f"{value * 100:.{decimals}f}%"


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = "") -> str:
    """Render a list of rows as an aligned plain-text table."""
    columns = len(headers)
    text_rows = [[_cell(value) for value in row] for row in rows]
    widths = [len(str(header)) for header in headers]
    for row in text_rows:
        for index in range(columns):
            if index < len(row):
                widths[index] = max(widths[index], len(row[index]))

    def line(cells: Sequence[str]) -> str:
        padded = [str(cell).ljust(widths[i]) for i, cell in enumerate(cells)]
        return "  ".join(padded).rstrip()

    parts = []
    if title:
        parts.append(title)
        parts.append("-" * len(title))
    parts.append(line(headers))
    parts.append(line(["-" * w for w in widths]))
    parts.extend(line(row) for row in text_rows)
    return "\n".join(parts)


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)
