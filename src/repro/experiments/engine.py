"""Parallel experiment engine over the persistent result store.

The engine resolves every requested configuration through four layers:

1. an in-process memo (same object returned for repeated requests, so a
   pytest/benchmark session never simulates a configuration twice),
2. the content-addressed on-disk :class:`ResultStore` (a fresh process
   serves previously simulated configurations without touching the
   simulator at all),
3. the binary trace-snapshot layer of the same store: when only analysis
   code or the machine configuration changed, the summary key misses but
   the simulator-side snapshot key still hits, and the evaluation is
   *replayed* — timing model + fused accounting over the stored columnar
   trace, zero simulator steps,
4. a ``multiprocessing`` fan-out that computes the remaining
   configurations in worker processes — with a graceful single-process
   fallback when only one CPU is available, ``REPRO_JOBS=1`` is set, or
   pool creation fails (restricted sandboxes).

Workers return plain JSON-serializable summaries; the parent persists them
and hands out *restored* :class:`WorkloadEvaluation` objects, so parallel
and serial evaluation are observationally equivalent for every figure and
table of the paper.
"""

from __future__ import annotations

import logging
import os
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from typing import TYPE_CHECKING

from ..sim.fusedc import PIPELINES, default_pipeline
from ..uarch import MachineConfig
from ..workloads import Workload, load_suite, workload_by_name
from .chaos import chaos_probe
from .resilience import (
    EvaluationError,
    RetryPolicy,
    classify_failure,
    supervised_map,
)
from .runner import (
    WorkloadEvaluation,
    _compute_evaluation,
    artifact_from_evaluation,
    replay_summary,
)
from .store import ResultStore, config_key, trace_key
from .summary import EvaluationSummary

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from typing import Iterator, Mapping

    from .sweep import SweepRow, SweepSpec

__all__ = [
    "ExperimentConfig",
    "ExperimentEngine",
    "default_engine",
    "reset_default_engine",
]

_log = logging.getLogger(__name__)


@dataclass(frozen=True)
class ExperimentConfig:
    """One independent (workload, mechanism, threshold, policy-set) point."""

    workload: str
    mechanism: str = "none"
    threshold_nj: float = 50.0
    conventional_vrp: bool = False
    machine_config: Optional[MachineConfig] = None


def _resolve_jobs(jobs: Optional[int]) -> int:
    """Worker-process count: explicit argument > ``REPRO_JOBS`` > CPU count."""
    if jobs is not None:
        return max(1, jobs)
    configured = os.environ.get("REPRO_JOBS", "")
    if configured:
        try:
            return max(1, int(configured))
        except ValueError:
            pass
    return max(1, os.cpu_count() or 1)


def _resolve_pipeline(pipeline: str, store: Optional[ResultStore]) -> str:
    """Resolve a pipeline request to ``"fused"`` or ``"materialized"``.

    Explicit requests win; ``"auto"`` consults ``REPRO_PIPELINE`` (via
    :func:`repro.sim.fusedc.default_pipeline`) and, when that is also
    ``auto``, picks by what the evaluation needs: trace snapshots can only
    be persisted from a materialized trace, so the materialized pipeline
    runs when the store's snapshot layer is enabled — and the fused
    pipeline (one streaming pass, **no trace ever built**) runs for
    summary-only evaluations (store disabled or ``REPRO_TRACE_STORE=off``).
    """
    if pipeline == "auto":
        pipeline = default_pipeline()
    if pipeline == "auto":
        snapshots = store is not None and store.enabled and store.trace_enabled
        return "materialized" if snapshots else "fused"
    if pipeline not in PIPELINES:
        raise ValueError(
            f"unknown pipeline {pipeline!r}; expected one of {', '.join(PIPELINES)}"
        )
    return pipeline


def _task_timeout_s() -> Optional[float]:
    """Per-task deadline for the pool fan-out (``REPRO_TASK_TIMEOUT_S``)."""
    value = os.environ.get("REPRO_TASK_TIMEOUT_S", "")
    if not value:
        return None
    try:
        parsed = float(value)
    except ValueError:
        return None
    return parsed if parsed > 0 else None


def _failure_evaluation(
    config: ExperimentConfig, workload: Workload, error: EvaluationError
) -> WorkloadEvaluation:
    """An error-carrying evaluation for ``on_error="keep"`` degradation.

    Never memoized and never persisted: the zero-filled summary exists so
    a partially failed sweep can report *which* points failed and why
    instead of aborting wholesale.
    """
    summary = EvaluationSummary.from_failure(
        workload=config.workload,
        mechanism=config.mechanism,
        threshold_nj=config.threshold_nj,
        conventional_vrp=config.conventional_vrp,
        kind=error.kind,
        message=str(error),
    )
    return WorkloadEvaluation.from_summary(workload, summary)


def _compute_summary_for(
    config: ExperimentConfig,
    store_root: Optional[str] = None,
    pipeline: str = "auto",
) -> tuple[str, dict, str]:
    """Worker entry point: resolve one configuration, return its summary.

    Returns ``(store key, JSON-ready summary dict, provenance)`` — plain
    data, so the result crosses the process boundary cheaply.  Provenance
    is ``"computed"`` (this worker simulated), ``"replayed"`` (rebuilt
    from a trace snapshot, zero simulator steps) or ``"shared"`` (another
    process held the single-flight lock for the same key and this worker
    served its published entry).  ``summarize()`` materializes the energy
    breakdowns of *all* gating policies from one fused trace walk
    (:class:`~repro.power.MultiPolicyEnergyAccountant`), so the
    restored-outcome completeness costs one accounting pass per worker,
    not one per policy.

    When the parent's store is enabled its root is passed through, and the
    worker resolves the key under the store's cross-process single-flight
    lock: concurrent identical evaluations — other sweeps, other service
    replicas, other CI shards on a shared cache — collapse to one
    simulation, with every loser reading the winner's published entry.
    The worker publishes the summary (and snapshot) itself, *inside* the
    flight, so waiters are released only once the entry is readable.

    Workers inherit the simulator dispatch tier (``REPRO_SIM_DISPATCH``)
    through the process environment.  The tier is deliberately **not**
    part of any store key: all tiers produce bit-identical traces and
    summaries (enforced by the differential tests), so results computed
    under different tiers are interchangeable.
    """
    chaos_probe("worker-task")
    workload = workload_by_name(config.workload)
    key = config_key(
        workload,
        config.mechanism,
        config.threshold_nj,
        config.conventional_vrp,
        config.machine_config,
    )
    store = ResultStore(store_root) if store_root is not None else None
    if store is None:
        evaluation = _compute_evaluation(
            workload,
            mechanism=config.mechanism,
            threshold_nj=config.threshold_nj,
            conventional_vrp=config.conventional_vrp,
            machine_config=config.machine_config,
            pipeline=_resolve_pipeline(pipeline, None),
        )
        return key, evaluation.summarize().to_json_dict(), "computed"
    with store.single_flight(key) as flight:
        if flight.summary is not None:
            return key, flight.summary.to_json_dict(), "shared"
        summary = _replay_from_snapshot(store, config, workload)
        if summary is not None:
            store.save(key, summary)
            return key, summary.to_json_dict(), "replayed"
        evaluation = _compute_evaluation(
            workload,
            mechanism=config.mechanism,
            threshold_nj=config.threshold_nj,
            conventional_vrp=config.conventional_vrp,
            machine_config=config.machine_config,
            pipeline=_resolve_pipeline(pipeline, store),
        )
        _save_snapshot(store, config, workload, evaluation)
        summary = evaluation.summarize()
        store.save(key, summary)
        return key, summary.to_json_dict(), "computed"


# ----------------------------------------------------------------------
# Trace-snapshot resolution, shared by the engine and the pool workers
# ----------------------------------------------------------------------
def _snapshot_key(config: ExperimentConfig, workload: Workload) -> str:
    return trace_key(
        workload, config.mechanism, config.threshold_nj, config.conventional_vrp
    )


def _replay_from_snapshot(
    store: Optional[ResultStore], config: ExperimentConfig, workload: Workload
) -> Optional[EvaluationSummary]:
    """Rebuild a summary from a stored trace snapshot, or None on miss.

    When only the *analysis* side changed (a gating policy, an energy
    coefficient, the machine configuration), the summary key misses but
    the simulator-side snapshot key still hits, and the evaluation is
    rebuilt without a single simulator step.
    """
    if store is None or not store.trace_enabled:
        return None
    key = _snapshot_key(config, workload)
    artifact = store.load_trace(key)
    if artifact is None:
        return None
    try:
        return replay_summary(
            workload,
            artifact,
            mechanism=config.mechanism,
            threshold_nj=config.threshold_nj,
            conventional_vrp=config.conventional_vrp,
            machine_config=config.machine_config,
        )
    except Exception as exc:
        # The snapshot decoded but its contents don't replay — e.g. a
        # truncated-then-padded file whose trace is internally
        # inconsistent.  A broken cache entry must never fail an
        # evaluate(): drop it and fall back to simulation.
        _log.warning(
            "evicting unreplayable trace snapshot %s (%s: %s)",
            store.trace_path_for(key),
            type(exc).__name__,
            exc,
        )
        store.quarantine(
            store.trace_path_for(key), f"unreplayable: {type(exc).__name__}: {exc}"
        )
        return None


def _save_snapshot(
    store: Optional[ResultStore],
    config: ExperimentConfig,
    workload: Workload,
    evaluation: WorkloadEvaluation,
) -> None:
    # A fused evaluation has no trace to snapshot — its ``trace`` slot
    # holds the streaming shape aggregate (see docs/fused.md).
    if (
        store is not None
        and store.trace_enabled
        and evaluation.trace is not None
        and evaluation.pipeline != "fused"
    ):
        store.save_trace(
            _snapshot_key(config, workload), artifact_from_evaluation(evaluation)
        )


class ExperimentEngine:
    """Memoizing, store-backed, process-parallel experiment evaluator."""

    def __init__(
        self, store: Optional[ResultStore] = None, jobs: Optional[int] = None
    ) -> None:
        self.store = store if store is not None else ResultStore()
        self.jobs = _resolve_jobs(jobs)
        self._memo: dict[str, WorkloadEvaluation] = {}

    # ------------------------------------------------------------------
    # Keys
    # ------------------------------------------------------------------
    def key_for(self, config: ExperimentConfig, workload: Optional[Workload] = None) -> str:
        """Content-hash store key of ``config``."""
        if workload is None:
            workload = workload_by_name(config.workload)
        return config_key(
            workload,
            config.mechanism,
            config.threshold_nj,
            config.conventional_vrp,
            config.machine_config,
        )

    # ------------------------------------------------------------------
    # Trace-snapshot replay (delegates to the shared module helpers so
    # the pool workers resolve snapshots identically)
    # ------------------------------------------------------------------
    def _replay_summary(
        self, config: ExperimentConfig, workload: Workload
    ) -> Optional[EvaluationSummary]:
        return _replay_from_snapshot(self.store, config, workload)

    def _save_snapshot(
        self, config: ExperimentConfig, workload: Workload, evaluation: WorkloadEvaluation
    ) -> None:
        _save_snapshot(self.store, config, workload, evaluation)

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def evaluate(
        self,
        config: ExperimentConfig,
        workload: Optional[Workload] = None,
        pipeline: str = "auto",
        on_error: str = "raise",
    ) -> WorkloadEvaluation:
        """Resolve one configuration: memo → store → replay → compute.

        ``workload`` lets callers evaluate a hand-modified workload object;
        its content hash (not just its name) keys the result, so a modified
        workload never aliases the registry entry.

        ``on_error`` selects the partial-failure semantics: ``"raise"``
        (the default) propagates the classified
        :class:`~repro.experiments.resilience.EvaluationError`;
        ``"keep"`` returns an error-carrying evaluation instead (its
        ``summary.failure`` holds the kind and message; nothing is
        memoized or persisted for the failed point).

        ``pipeline`` selects the live path for a cold compute (see
        :func:`_resolve_pipeline`): ``"auto"`` runs the fused streaming
        pipeline whenever the evaluation is summary-only (no trace
        snapshot will be persisted), so the trace is never even built.
        The choice cannot affect results — the pipelines are bit-exact —
        and is deliberately not part of the store key.

        The returned evaluation is *live* (trace/program attached) only when
        this call actually simulated; memo, store and snapshot-replay hits
        are restored, summary-only objects.  Callers that require a live
        trace should use :meth:`compute`.
        """
        if on_error not in ("raise", "keep"):
            raise ValueError(f"unknown on_error mode {on_error!r}; expected 'raise' or 'keep'")
        if workload is None:
            workload = workload_by_name(config.workload)
        key = self.key_for(config, workload)
        cached = self._memo.get(key)
        if cached is not None:
            return cached
        summary = self.store.load(key)
        if summary is not None:
            evaluation = WorkloadEvaluation.from_summary(workload, summary)
        else:
            # Cold path: resolve under the store's cross-process
            # single-flight lock, so two processes (or threads) racing on
            # the same content key cost one simulation — the loser blocks
            # briefly and reads the winner's published entry.
            with self.store.single_flight(key) as flight:
                if flight.summary is not None:
                    evaluation = WorkloadEvaluation.from_summary(workload, flight.summary)
                else:
                    replayed = self._replay_summary(config, workload)
                    if replayed is not None:
                        self.store.save(key, replayed)
                        evaluation = WorkloadEvaluation.from_summary(workload, replayed)
                        evaluation.replayed_from_store = True
                    else:
                        try:
                            evaluation = _compute_evaluation(
                                workload,
                                mechanism=config.mechanism,
                                threshold_nj=config.threshold_nj,
                                conventional_vrp=config.conventional_vrp,
                                machine_config=config.machine_config,
                                pipeline=_resolve_pipeline(pipeline, self.store),
                            )
                        except Exception as exc:
                            failure = classify_failure(exc)
                            if on_error == "raise":
                                raise failure from exc
                            _log.warning(
                                "evaluate(%s/%s): keeping failure %s",
                                config.workload,
                                config.mechanism,
                                failure.describe(),
                            )
                            return _failure_evaluation(config, workload, failure)
                        if self.store.enabled:
                            self.store.save(key, evaluation.summarize())
                            self._save_snapshot(config, workload, evaluation)
                        evaluation.freshly_computed = True
        self._memo[key] = evaluation
        return evaluation

    def compute(
        self,
        config: ExperimentConfig,
        workload: Optional[Workload] = None,
        pipeline: str = "materialized",
    ) -> WorkloadEvaluation:
        """Run the live pipeline for one point, bypassing every cache layer.

        Always builds, transforms and simulates, and always returns a
        *live* evaluation — the one entry point for callers that genuinely
        need the trace, so the pipeline defaults to ``"materialized"``
        (the environment is not consulted).  An explicit
        ``pipeline="fused"`` returns a live evaluation whose ``trace``
        slot holds the streaming shape aggregate instead of a trace.
        Nothing is memoized or persisted; use :meth:`evaluate` for
        cached, store-backed resolution.
        """
        if workload is None:
            workload = workload_by_name(config.workload)
        return _compute_evaluation(
            workload,
            mechanism=config.mechanism,
            threshold_nj=config.threshold_nj,
            conventional_vrp=config.conventional_vrp,
            machine_config=config.machine_config,
            pipeline="fused" if pipeline == "fused" else "materialized",
        )

    def map(
        self,
        configs: Sequence[ExperimentConfig],
        jobs: Optional[int] = None,
        pipeline: str = "auto",
        on_error: str = "raise",
        on_result: Optional[Callable[[int, WorkloadEvaluation], None]] = None,
    ) -> list[WorkloadEvaluation]:
        """Evaluate many independent configurations, in parallel when possible.

        Memo/store hits are resolved inline; the remaining configurations
        are computed by a process pool (or serially as a fallback) and their
        summaries persisted, so a crashed or interrupted sweep loses at most
        the configurations still in flight.  ``pipeline`` is resolved once
        against this engine's store (see :func:`_resolve_pipeline`) and
        applied to every cold compute, in the pool and in the serial
        fallback alike.

        Cold configurations always come back *restored* (summary-backed,
        ``trace is None``) — regardless of whether the pool or the serial
        fallback computed them — so the result shape never depends on the
        machine's CPU count.  Use :meth:`compute` when a live trace is
        genuinely required (:meth:`evaluate` returns a live object only
        when it computes; store hits are restored there too).

        The fan-out runs under :func:`~repro.experiments.resilience.supervised_map`:
        transient worker failures are retried with backoff, hung workers
        are reaped when ``REPRO_TASK_TIMEOUT_S`` is set, and pool
        collapses degrade in stages down to in-process serial evaluation
        — each stage logged.  ``on_error`` picks the partial-failure
        semantics for *permanent* per-task failures: ``"raise"`` (the
        default) propagates the first classified
        :class:`~repro.experiments.resilience.EvaluationError`; ``"keep"``
        returns error-carrying evaluations (``summary.failure`` set,
        nothing persisted) in the failed slots so the healthy points
        survive.

        ``on_result`` streams per-point progress: it is called once per
        *input index* — ``on_result(index, evaluation)`` — as each point
        resolves, in arrival order (memo/store hits first, then pool or
        serial completions; a deduplicated key fires once per index that
        requested it).  It runs in the calling thread, so a slow callback
        slows delivery, not the workers.  The evaluation service uses
        this for its NDJSON progress streams.
        """
        if on_error not in ("raise", "keep"):
            raise ValueError(f"unknown on_error mode {on_error!r}; expected 'raise' or 'keep'")
        results: list[Optional[WorkloadEvaluation]] = [None] * len(configs)

        def deliver(index: int, evaluation: WorkloadEvaluation) -> None:
            results[index] = evaluation
            if on_result is not None:
                on_result(index, evaluation)

        # Deduplicate misses by key: the same configuration requested twice
        # in one call must be simulated once.
        missing: dict[str, tuple[ExperimentConfig, Workload]] = {}
        missing_indices: dict[str, list[int]] = {}
        for index, config in enumerate(configs):
            workload = workload_by_name(config.workload)
            key = self.key_for(config, workload)
            cached = self._memo.get(key)
            if cached is not None:
                deliver(index, cached)
                continue
            if key in missing:
                missing_indices[key].append(index)
                continue
            summary = self.store.load(key)
            if summary is not None:
                evaluation = WorkloadEvaluation.from_summary(workload, summary)
                self._memo[key] = evaluation
                deliver(index, evaluation)
                continue
            # Trace-snapshot replays are deliberately *not* resolved inline
            # here: they run the timing model and the fused accountant over
            # a full trace, so an analysis-only sweep benefits from the
            # worker pool exactly like a cold compute.  Both the workers
            # and the serial fallback consult the snapshot layer.
            missing[key] = (config, workload)
            missing_indices[key] = [index]

        if missing:
            resolved_pipeline = _resolve_pipeline(pipeline, self.store)
            order = list(missing.items())
            delivered: set[str] = set()

            def ready(key: str, summary: EvaluationSummary, fresh: bool, replayed: bool) -> None:
                """Memoize + stream one resolved miss (pool or serial)."""
                _, miss_workload = missing[key]
                evaluation = WorkloadEvaluation.from_summary(miss_workload, summary)
                evaluation.freshly_computed = fresh
                evaluation.replayed_from_store = replayed
                self._memo[key] = evaluation
                delivered.add(key)
                for index in missing_indices[key]:
                    deliver(index, evaluation)

            worker_count = min(_resolve_jobs(jobs) if jobs is not None else self.jobs, len(order))
            produced = (
                self._map_parallel(
                    [config for _, (config, _) in order],
                    worker_count,
                    resolved_pipeline,
                    on_ready=lambda position, summary, fresh, replayed: ready(
                        order[position][0], summary, fresh, replayed
                    ),
                )
                if worker_count > 1
                else None
            )
            if produced is None:
                produced = []
                for key, (config, workload) in order:
                    if key in delivered:
                        # Streamed by a pool attempt that later collapsed;
                        # the memoized result is already in place.
                        produced.append(
                            (key, self._memo[key].summarize(), False, False, None)
                        )
                        continue
                    # A failed pool attempt may have persisted some results
                    # before dying; serve those instead of recomputing.
                    summary = self.store.load(key)
                    if summary is not None:
                        ready(key, summary, False, False)
                        produced.append((key, summary, False, False, None))
                        continue
                    error: Optional[EvaluationError] = None
                    fresh = replayed_flag = False
                    # Same cross-process dedup as the pool workers: the
                    # serial fallback competes for the single-flight lock
                    # and publishes inside it.
                    with self.store.single_flight(key) as flight:
                        if flight.summary is not None:
                            summary = flight.summary
                        else:
                            replayed = self._replay_summary(config, workload)
                            if replayed is not None:
                                self.store.save(key, replayed)
                                summary, replayed_flag = replayed, True
                            else:
                                try:
                                    live = _compute_evaluation(
                                        workload,
                                        mechanism=config.mechanism,
                                        threshold_nj=config.threshold_nj,
                                        conventional_vrp=config.conventional_vrp,
                                        machine_config=config.machine_config,
                                        pipeline=resolved_pipeline,
                                    )
                                except Exception as exc:
                                    error = classify_failure(exc)
                                else:
                                    summary = live.summarize()
                                    self.store.save(key, summary)
                                    self._save_snapshot(config, workload, live)
                                    fresh = True
                    if error is not None:
                        produced.append((key, None, False, False, error))
                        continue
                    ready(key, summary, fresh, replayed_flag)
                    produced.append((key, summary, fresh, replayed_flag, None))
            for (key, (config, workload)), (worker_key, summary, fresh, replayed, error) in zip(
                order, produced
            ):
                if error is not None:
                    if on_error == "raise":
                        raise error
                    _log.warning(
                        "map(%s/%s): keeping failure %s",
                        config.workload,
                        config.mechanism,
                        error.describe(),
                    )
                    evaluation = _failure_evaluation(config, workload, error)
                    # Failed points are never memoized: a later request
                    # must get a fresh chance at a healthy evaluation.
                    for index in missing_indices[key]:
                        deliver(index, evaluation)
                    continue
                if key in delivered:
                    continue  # streamed on arrival (pool persist / serial loop)
                evaluation = WorkloadEvaluation.from_summary(workload, summary)
                evaluation.freshly_computed = fresh
                evaluation.replayed_from_store = replayed
                self._memo[worker_key] = evaluation
                for index in missing_indices[key]:
                    deliver(index, evaluation)
        return results  # type: ignore[return-value]

    def map_suite(
        self,
        mechanism: str = "none",
        threshold_nj: float = 50.0,
        conventional_vrp: bool = False,
        machine_config: Optional[MachineConfig] = None,
        jobs: Optional[int] = None,
        pipeline: str = "auto",
        on_error: str = "raise",
    ) -> dict[str, WorkloadEvaluation]:
        """Evaluate every workload of the SpecInt95-analogue suite.

        Convenience over :meth:`map`: one configuration per suite
        workload, results keyed by workload name.  This is what the
        figure/table modules call.
        """
        configs = [
            ExperimentConfig(
                workload=workload.name,
                mechanism=mechanism,
                threshold_nj=threshold_nj,
                conventional_vrp=conventional_vrp,
                machine_config=machine_config,
            )
            for workload in load_suite()
        ]
        evaluations = self.map(configs, jobs=jobs, pipeline=pipeline, on_error=on_error)
        return {evaluation.workload.name: evaluation for evaluation in evaluations}

    def sweep(
        self,
        spec: "SweepSpec",
        workloads: Optional["Mapping[str, Workload]"] = None,
        pipeline: str = "auto",
        on_error: str = "keep",
    ) -> "Iterator[SweepRow]":
        """Stream one :class:`~repro.experiments.sweep.SweepRow` per spec point.

        The batched design-space path (see ``docs/sweeps.md``): one
        simulation or snapshot replay per distinct trace signature, one
        multi-config timing-kernel walk per machine-config shape group,
        one fused accounting walk per trace — instead of a full
        :meth:`evaluate` round-trip per point.  Rows are bit-identical
        to what per-point evaluation reports for the same cells.  From a
        warm store (snapshots present) a sweep performs **zero**
        simulator calls.
        """
        from .sweep import run_sweep

        return run_sweep(
            self, spec, workloads=workloads, pipeline=pipeline, on_error=on_error
        )

    def _map_parallel(
        self,
        configs: Sequence[ExperimentConfig],
        worker_count: int,
        pipeline: str = "auto",
        on_ready: Optional[Callable[[int, "EvaluationSummary", bool, bool], None]] = None,
    ) -> Optional[
        list[tuple[str, Optional["EvaluationSummary"], bool, bool, Optional[EvaluationError]]]
    ]:
        """Fan the missing configurations out under supervision.

        Every worker publishes its summary (and snapshot) to the store
        *inside its single-flight lock* before returning, so an
        interrupted sweep loses at most the configurations still in
        flight — and concurrent processes racing on the same keys wait
        instead of duplicating the simulation.  Transient worker failures
        are retried with deterministic backoff; a hung worker is reaped
        when ``REPRO_TASK_TIMEOUT_S`` is set; pool collapses escalate
        through the degradation stages (replace-worker → fresh-pool →
        serial), each logged — see
        :func:`repro.experiments.resilience.supervised_map`.

        ``on_ready(position, summary, fresh, replayed)`` fires in the
        calling thread as each result arrives (the supervisor's
        ``on_result`` hook), letting :meth:`map` stream completions.

        Returns None only when the pool infrastructure cannot be created
        at all (restricted sandboxes); the caller's serial fallback then
        picks up any partial progress from the store.  Permanent per-task
        failures come back as the fifth tuple element instead of raising,
        so ``map`` can apply its ``on_error`` semantics.
        """
        store_root = str(self.store.root) if self.store.enabled else None
        tasks = [(config, store_root, pipeline) for config in configs]
        arrived: dict[int, tuple[str, EvaluationSummary, str]] = {}

        def collect(position: int, value) -> None:
            worker_key, summary_dict, provenance = value
            summary = EvaluationSummary.from_json_dict(summary_dict)
            arrived[position] = (worker_key, summary, provenance)
            if on_ready is not None:
                on_ready(
                    position, summary, provenance == "computed", provenance == "replayed"
                )

        try:
            outcomes = supervised_map(
                _compute_summary_for,
                tasks,
                worker_count,
                task_timeout_s=_task_timeout_s(),
                retry=RetryPolicy(),
                on_result=collect,
                logger=_log,
            )
        except (OSError, ValueError, RuntimeError, ImportError) as exc:
            # The silent `return None` this replaces hid real environment
            # problems; name the failure and the degradation stage so a
            # slow sandboxed run is explainable from its logs.
            _log.warning(
                "experiment engine: process-pool fan-out unavailable (%s: %s); "
                "degradation stage 'serial': evaluating %d configuration(s) in-process",
                type(exc).__name__,
                exc,
                len(configs),
            )
            return None

        produced: list[
            tuple[str, Optional[EvaluationSummary], bool, bool, Optional[EvaluationError]]
        ] = []
        for position, (config, outcome) in enumerate(zip(configs, outcomes)):
            if outcome.ok:
                worker_key, summary, provenance = arrived[position]
                produced.append(
                    (
                        worker_key,
                        summary,
                        provenance == "computed",
                        provenance == "replayed",
                        None,
                    )
                )
            else:
                workload = workload_by_name(config.workload)
                produced.append(
                    (self.key_for(config, workload), None, False, False, outcome.error)
                )
        return produced

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def clear_memory(self) -> None:
        """Drop the in-process memo (the on-disk store is untouched)."""
        self._memo.clear()


# ----------------------------------------------------------------------
# Process-wide default engine
# ----------------------------------------------------------------------
_DEFAULT_ENGINE: Optional[ExperimentEngine] = None


def default_engine() -> ExperimentEngine:
    """The process-wide engine: the session the blessed API acts on.

    The CLI, the figure/table modules and the deprecated free-function
    shims all share this engine (and therefore its memo and store).
    """
    global _DEFAULT_ENGINE
    if _DEFAULT_ENGINE is None:
        _DEFAULT_ENGINE = ExperimentEngine()
    return _DEFAULT_ENGINE


def reset_default_engine() -> None:
    """Forget the default engine (re-reads environment configuration)."""
    global _DEFAULT_ENGINE
    _DEFAULT_ENGINE = None
