"""Content-addressed, on-disk store for experiment results.

Every evaluated configuration is keyed by a SHA-256 hash over everything
that can change its outcome: the workload's source text and input data, the
mechanism and its parameters, the VRP/VRS configuration defaults, the
machine configuration and the package/summary format versions.  Entries are
JSON files holding an :class:`~repro.experiments.summary.EvaluationSummary`,
so a fresh process (a new pytest session, a benchmark run, the CLI) can
serve repeated configurations without a single simulator step.

Environment variables:

``REPRO_RESULT_STORE``
    Relocates the store root, or disables persistence entirely when set to
    ``off``/``0``/``disabled``/``none``.  The default root is
    ``$XDG_CACHE_HOME/repro/results`` (``~/.cache/repro/results``).
``REPRO_TRACE_STORE``
    Disables the binary trace-snapshot layer (same disabled vocabulary)
    without touching the summary store.  Snapshots live under
    ``<root>/traces/`` and are keyed by a *simulator-side* code
    fingerprint, so analysis-layer edits (power model, timing model,
    experiment code) replay stored traces instead of re-simulating.
``REPRO_TRACE_STORE_MAX_BYTES``
    LRU byte cap on the trace-snapshot subtree (see
    :meth:`ResultStore.evict_traces`); unset means unbounded.
``REPRO_STORE_TMP_TTL`` / ``REPRO_STORE_LOCK_TTL``
    Age thresholds (seconds) for reaping orphaned temp files and breaking
    dead single-flight locks; both are clamped to safe floors so a live
    concurrent writer can never be swept.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import re
import shutil
import socket
import tempfile
import time
from contextlib import contextmanager
from dataclasses import asdict, dataclass, field
from functools import lru_cache
from pathlib import Path
from typing import Iterator, Optional

from .. import __version__
from ..core import VRPConfig, VRSConfig
from ..sim.snapshot import (
    TRACE_SNAPSHOT_VERSION,
    SimulationArtifact,
    decode_artifact,
    encode_artifact,
)
from ..uarch import MachineConfig
from ..workloads import Workload
from .chaos import chaos_blob
from .summary import SUMMARY_FORMAT_VERSION, EvaluationSummary

__all__ = [
    "Flight",
    "FsckReport",
    "ResultStore",
    "StoreEntry",
    "config_key",
    "default_store_root",
    "trace_key",
]

_DISABLED_VALUES = ("off", "0", "disabled", "none", "false")

_log = logging.getLogger(__name__)

#: Shape of a generation directory name (12-hex source-fingerprint prefix).
_GENERATION_DIR_RE = re.compile(r"^[0-9a-f]{12}$")

#: Shape of a store key: a lowercase hex content hash.  Every path builder
#: enforces it, so a key arriving from an untrusted boundary (the service's
#: ``GET /v1/results/<key>``) can never contain separators or ``..`` and
#: resolve outside the store root.
_KEY_RE = re.compile(r"^[0-9a-f]{16,64}$")

#: Temp files older than this are considered orphans of a dead writer and
#: reaped at store open (override in seconds via ``REPRO_STORE_TMP_TTL``;
#: a live concurrent writer finishes in milliseconds, not an hour).
_TMP_TTL_S = 3600.0

#: Hard floor on the reap TTL.  A ``REPRO_STORE_TMP_TTL`` below this (or a
#: caller-supplied ``max_age_s``, including fsck's aggressive pass) would
#: let the reaper unlink the temp file of a *live* concurrent writer in the
#: window between its write and its ``os.replace``; no healthy publish
#: takes anywhere near a minute, so files younger than the floor are
#: always presumed live.
_TMP_TTL_FLOOR_S = 60.0

#: A single-flight lock unclaimable for this long is presumed dead and
#: broken (override in seconds via ``REPRO_STORE_LOCK_TTL``).  Locks held
#: by a live process on the same host are never broken by age alone.
_LOCK_TTL_S = 300.0


def _tmp_ttl() -> float:
    configured = os.environ.get("REPRO_STORE_TMP_TTL", "")
    if configured:
        try:
            return max(_TMP_TTL_FLOOR_S, float(configured))
        except ValueError:
            pass
    return _TMP_TTL_S


def _lock_ttl() -> float:
    configured = os.environ.get("REPRO_STORE_LOCK_TTL", "")
    if configured:
        try:
            return max(1.0, float(configured))
        except ValueError:
            pass
    return _LOCK_TTL_S


def _trace_budget_bytes() -> Optional[int]:
    """Byte cap on the trace-snapshot subtree (``REPRO_TRACE_STORE_MAX_BYTES``).

    None (the default) means unbounded; snapshots then grow with the
    design space, which is fine for a workstation cache but not for a
    long-running service host.
    """
    configured = os.environ.get("REPRO_TRACE_STORE_MAX_BYTES", "")
    if not configured:
        return None
    try:
        value = int(float(configured))
    except ValueError:
        return None
    return value if value >= 0 else None


def _require_key(key: str) -> str:
    """Reject anything that is not a plain hex content hash.

    The store joins keys into filesystem paths; validating here (rather
    than trusting every caller) makes path traversal structurally
    impossible no matter where the key came from.
    """
    if not isinstance(key, str) or not _KEY_RE.fullmatch(key):
        raise ValueError(f"malformed store key {key!r} (expected a lowercase hex hash)")
    return key


@lru_cache(maxsize=1)
def _hostname() -> str:
    try:
        return socket.gethostname()
    except OSError:
        return "unknown-host"


def _fsync_enabled() -> bool:
    """True when ``REPRO_STORE_FSYNC`` requests durable publishes.

    Off by default: the store is a cache, and a lost entry after a power
    cut is recomputed — but a *service* deployment can opt into
    fsync-before-rename so a published entry is never torn.
    """
    configured = os.environ.get("REPRO_STORE_FSYNC", "").lower()
    return bool(configured) and configured not in _DISABLED_VALUES


def _summary_checksum(summary_dict: dict) -> str:
    """Content hash of the summary payload (verified by :meth:`fsck`).

    The dict is round-tripped through JSON first so the hash is computed
    over the exact form a reader decodes — int dict keys (histograms)
    become strings on disk, and ``sort_keys`` orders ``10`` after ``1``
    as a string but after ``9`` as an int.
    """
    canonical = json.loads(json.dumps(summary_dict, default=str))
    blob = json.dumps(canonical, sort_keys=True).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()


def default_store_root() -> Optional[Path]:
    """Resolve the store root from the environment (None = disabled)."""
    configured = os.environ.get("REPRO_RESULT_STORE", "")
    if configured.lower() in _DISABLED_VALUES and configured:
        return None
    if configured:
        return Path(configured).expanduser()
    cache_home = os.environ.get("XDG_CACHE_HOME", "")
    if not cache_home:
        try:
            cache_home = str(Path.home() / ".cache")
        except RuntimeError:  # no resolvable home (bare container): disable
            return None
    return Path(cache_home).expanduser() / "repro" / "results"


@lru_cache(maxsize=1)
def _code_fingerprint() -> str:
    """SHA-256 over every source file of the package.

    Included in the configuration key so that *any* code change — a fixed
    energy coefficient, a timing-model tweak — invalidates warm store
    entries instead of silently serving stale numbers.  Computed once per
    process (~100 small files).
    """
    package_root = Path(__file__).resolve().parents[1]
    digest = hashlib.sha256()
    for path in sorted(package_root.rglob("*.py")):
        digest.update(str(path.relative_to(package_root)).encode("utf-8"))
        digest.update(b"\0")
        digest.update(path.read_bytes())
    return digest.hexdigest()


#: Subpackages whose code can change what the *simulator* produces (the
#: compiled program, the VRP/VRS transformations, the dynamic trace).  The
#: analysis layers — ``uarch``, ``power``, ``hardware`` and most of
#: ``experiments`` — are deliberately excluded: editing them must not
#: invalidate trace snapshots, because replaying a stored trace through
#: the edited analysis is exactly the point of keeping snapshots.
_SIM_PACKAGES = ("asm", "core", "ir", "isa", "minic", "sim", "workloads")

#: Individual analysis-layer files that nevertheless orchestrate the
#: simulation itself (``compute_evaluation``: mechanism dispatch, input
#: selection, transform order).  Included in the fingerprint so an edited
#: pipeline can never silently replay traces produced by the old one —
#: at the acceptable cost that unrelated edits to the same file also
#: retire the snapshot generation.
_SIM_FILES = ("experiments/runner.py",)


def _sim_source_paths() -> list[Path]:
    """Source files covered by the simulator fingerprint, sorted.

    Includes everything that determines what the simulator emits — in
    particular the block compiler (``sim/blockc.py``), whose generated
    per-program code is a pure function of these files, so editing its
    semantics retires every stored trace snapshot instead of replaying
    stale ones (``tests/test_block_compiler.py`` locks this down).
    """
    package_root = Path(__file__).resolve().parents[1]
    paths = [package_root / "__init__.py"]
    paths.extend(package_root / name for name in _SIM_FILES)
    for package in _SIM_PACKAGES:
        paths.extend((package_root / package).rglob("*.py"))
    return sorted(paths)


@lru_cache(maxsize=1)
def _sim_fingerprint() -> str:
    """SHA-256 over the simulator-side source files only (see above)."""
    package_root = Path(__file__).resolve().parents[1]
    digest = hashlib.sha256()
    for path in _sim_source_paths():
        digest.update(str(path.relative_to(package_root)).encode("utf-8"))
        digest.update(b"\0")
        digest.update(path.read_bytes())
    return digest.hexdigest()


@lru_cache(maxsize=256)
def _config_material(
    mechanism: str,
    threshold_nj: float,
    conventional_vrp: bool,
    machine_config: Optional[MachineConfig],
) -> str:
    """Workload-independent part of the key material (cached: memo hits in
    hot sessions should not pay for config re-serialization)."""
    vrp_config = VRPConfig().conventional() if conventional_vrp else VRPConfig()
    material = {
        "format": SUMMARY_FORMAT_VERSION,
        "version": __version__,
        "code": _code_fingerprint(),
        "mechanism": mechanism,
        "threshold_nj": threshold_nj,
        "conventional_vrp": conventional_vrp,
        "vrp_config": asdict(vrp_config),
        "vrs_config": asdict(VRSConfig(threshold_nj=threshold_nj)),
        "machine_config": asdict(machine_config or MachineConfig()),
    }
    return json.dumps(material, sort_keys=True, default=str)


def config_key(
    workload: Workload,
    mechanism: str,
    threshold_nj: float,
    conventional_vrp: bool,
    machine_config: Optional[MachineConfig] = None,
) -> str:
    """Content hash identifying one evaluated configuration.

    The key covers the workload *content* (source and inputs, via
    :meth:`Workload.content_hash`), the transformation parameters, the
    analysis/specialization configuration defaults, the machine model and
    the package + summary format versions — so any change that could alter
    the stored numbers changes the key.
    """
    material = _config_material(mechanism, threshold_nj, conventional_vrp, machine_config)
    blob = f"{workload.content_hash()}|{material}".encode("utf-8")
    return hashlib.sha256(blob).hexdigest()


@lru_cache(maxsize=256)
def _trace_material(mechanism: str, threshold_nj: float, conventional_vrp: bool) -> str:
    """Workload-independent part of a trace-snapshot key.

    Unlike :func:`_config_material` this covers only what can change the
    *simulation* — the mechanism and its parameters, the VRP/VRS
    configuration defaults and the simulator-side code fingerprint.  The
    machine configuration, the analysis code and the summary format are
    deliberately absent: changing any of them leaves the trace valid, and
    serving it from the snapshot store is what makes analysis-only re-runs
    simulation-free.
    """
    vrp_config = VRPConfig().conventional() if conventional_vrp else VRPConfig()
    material = {
        "trace_format": TRACE_SNAPSHOT_VERSION,
        "sim_code": _sim_fingerprint(),
        "mechanism": mechanism,
        "threshold_nj": threshold_nj,
        "conventional_vrp": conventional_vrp,
        "vrp_config": asdict(vrp_config),
        "vrs_config": asdict(VRSConfig(threshold_nj=threshold_nj)),
    }
    return json.dumps(material, sort_keys=True, default=str)


def trace_key(
    workload: Workload,
    mechanism: str,
    threshold_nj: float,
    conventional_vrp: bool,
) -> str:
    """Content hash identifying one simulated trace (snapshot key)."""
    material = _trace_material(mechanism, threshold_nj, conventional_vrp)
    blob = f"{workload.content_hash()}|{material}".encode("utf-8")
    return hashlib.sha256(blob).hexdigest()


@dataclass
class FsckReport:
    """Outcome of one :meth:`ResultStore.fsck` scan."""

    scanned_entries: int = 0
    scanned_traces: int = 0
    ok_entries: int = 0
    ok_traces: int = 0
    quarantined: list = field(default_factory=list)  # (path str, reason)
    reaped_tmp: int = 0
    migrated: int = 0
    repaired: bool = True

    @property
    def clean(self) -> bool:
        return not self.quarantined

    def to_json_dict(self) -> dict:
        return {
            "scanned_entries": self.scanned_entries,
            "scanned_traces": self.scanned_traces,
            "ok_entries": self.ok_entries,
            "ok_traces": self.ok_traces,
            "quarantined": [
                {"path": path, "reason": reason} for path, reason in self.quarantined
            ],
            "reaped_tmp": self.reaped_tmp,
            "migrated": self.migrated,
            "repaired": self.repaired,
            "clean": self.clean,
        }


@dataclass
class Flight:
    """Outcome of entering :meth:`ResultStore.single_flight`.

    ``owner`` is True when this caller holds the cross-process lock and
    must compute-and-publish the entry; False when another flight already
    published it, in which case ``summary`` carries the winner's result
    (and ``shared`` records that this caller waited on a concurrent
    winner rather than hitting a pre-existing entry).
    """

    key: str
    owner: bool
    summary: Optional[EvaluationSummary] = None
    shared: bool = False


@dataclass(frozen=True)
class StoreEntry:
    """Metadata of one persisted result."""

    key: str
    path: Path
    workload: str
    mechanism: str
    threshold_nj: float
    conventional_vrp: bool
    created: float
    size_bytes: int


class ResultStore:
    """Persistent map from configuration key to :class:`EvaluationSummary`.

    Writes are atomic (temp file + rename) so concurrent worker processes
    can share one store; corrupted or schema-incompatible entries are
    deleted on read and treated as misses.
    """

    def __init__(self, root: Optional[Path | str] = None) -> None:
        if root is None:
            resolved = default_store_root()
        else:
            resolved = Path(root).expanduser()
        self.root = resolved
        self._pruned_stale_generations = False
        self._pruned_stale_trace_generations = False
        # Crash consistency: a writer killed between creating its temp
        # file and os.replace leaks the temp forever; reap orphans at
        # open so the store never accretes dead bytes.
        self.reap_stale_tmp()
        # Layout compatibility: entries written by the same code
        # generation under the older single-level shard layout must stay
        # visible, so every open sweeps them into the two-level layout.
        self._migrate_legacy_layout()

    def _migrate_legacy_layout(self) -> int:
        """Relocate single-level-shard files into the two-level layout.

        Earlier revisions sharded entries and trace snapshots one level
        deep (``<gen>/<k01>/<key>.json``); the current layout adds a
        second level (``<gen>/<k01>/<k23>/<key>.json``).  Same-generation
        files left at the old depth would otherwise be invisible to
        :meth:`load`, :meth:`entries` and :meth:`fsck` — silently
        recomputed, never scanned, quarantined or pruned — so they are
        moved into place (``os.replace``: atomic, idempotent, same shard
        directory so never cross-device).  Returns the number of files
        moved; best-effort like every other maintenance pass.
        """
        if self.root is None:
            return 0
        moved = 0
        sweeps = (
            (self.generation_root, "*/*.json", self.path_for),
            (self.trace_generation_root, "*/*.trace", self.trace_path_for),
        )
        for sweep_root, pattern, path_for in sweeps:
            try:
                legacy = [
                    path
                    for path in sweep_root.glob(pattern)
                    if _KEY_RE.fullmatch(path.stem)
                ]
            except OSError:
                continue
            for path in legacy:
                target = path_for(path.stem)
                try:
                    target.parent.mkdir(parents=True, exist_ok=True)
                    os.replace(path, target)
                    moved += 1
                except OSError:
                    continue
        if moved:
            _log.warning(
                "migrated %d legacy single-level store file(s) under %s "
                "into the sharded layout",
                moved,
                self.root,
            )
        return moved

    def reap_stale_tmp(self, max_age_s: Optional[float] = None) -> int:
        """Delete orphaned ``*.tmp`` files older than the TTL; returns count.

        Only files past the age threshold are touched: a young temp file
        may belong to a live concurrent writer about to ``os.replace`` it.
        The threshold — whether from ``REPRO_STORE_TMP_TTL`` or an explicit
        ``max_age_s`` — is clamped to ``_TMP_TTL_FLOOR_S``, so even an
        aggressive caller (``fsck`` passes 0) can never unlink a temp file
        a concurrent ``_publish`` is still about to rename.  Best-effort
        (shared caches can race), and cheap enough to run at every open —
        the glob only walks the store's own directories.
        """
        if self.root is None:
            return 0
        ttl = max(_TMP_TTL_FLOOR_S, max_age_s if max_age_s is not None else _tmp_ttl())
        cutoff = time.time() - ttl
        reaped = 0
        try:
            # One recursive sweep over every first-level subtree covers the
            # sharded entry layout, trace snapshots and any legacy depth.
            candidates = list(self.root.glob("*/**/*.tmp"))
        except OSError:
            return 0
        for path in candidates:
            try:
                if path.stat().st_mtime <= cutoff:
                    path.unlink()
                    reaped += 1
            except OSError:
                continue
        if reaped:
            _log.warning("reaped %d stale temp file(s) under %s", reaped, self.root)
        return reaped

    @property
    def enabled(self) -> bool:
        return self.root is not None

    @property
    def trace_enabled(self) -> bool:
        """True when binary trace snapshots are persisted too."""
        if self.root is None:
            return False
        configured = os.environ.get("REPRO_TRACE_STORE", "")
        return not (configured and configured.lower() in _DISABLED_VALUES)

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------
    @property
    def generation_root(self) -> Path:
        """Entries live under a per-code-fingerprint *generation* directory.

        Any source edit changes the fingerprint (and thus every key), which
        would otherwise orphan old entries forever; grouping them by
        generation lets :meth:`save` drop dead generations wholesale.
        """
        if self.root is None:
            raise RuntimeError("result store is disabled (REPRO_RESULT_STORE=off)")
        return self.root / _code_fingerprint()[:12]

    def path_for(self, key: str) -> Path:
        """Sharded entry path: two prefix levels keep directory fan-out flat.

        A service-scale store holds tens of thousands of entries; two
        256-way shard levels bound every directory to a few dozen files so
        opens, globs and the reaper stay O(directory) instead of O(store).

        Raises :class:`ValueError` for anything that is not a hex content
        hash — the key becomes path components, so this is where
        traversal (``../``) dies regardless of the caller.
        """
        _require_key(key)
        return self.generation_root / key[:2] / key[2:4] / f"{key}.json"

    # ------------------------------------------------------------------
    # Read / write
    # ------------------------------------------------------------------
    def load(self, key: str) -> Optional[EvaluationSummary]:
        """Return the stored summary for ``key``, or None on miss.

        A corrupted entry (truncated write, schema drift, hand edits) is
        removed so the caller recomputes and overwrites it; a transient read
        failure (fd pressure, momentary permission hiccup on a shared cache
        dir) is treated as a plain miss and the entry is kept.
        """
        if self.root is None:
            return None
        path = self.path_for(key)
        try:
            with open(path, encoding="utf-8") as handle:
                payload = json.load(handle)
        except OSError:
            return None
        except ValueError:
            _log.warning("evicting corrupt result entry %s (invalid JSON)", path)
            self.quarantine(path, "invalid JSON")
            return None
        try:
            return EvaluationSummary.from_json_dict(payload["summary"])
        except Exception as exc:
            # A decodable file with a broken summary payload — wrong
            # shape, missing fields, a half-migrated format.  Whatever
            # the decoder tripped on, the entry is unusable: evict it and
            # treat the lookup as a miss so evaluation falls back to
            # simulation instead of failing.
            _log.warning("evicting corrupt result entry %s (%s: %s)", path, type(exc).__name__, exc)
            self.quarantine(path, f"{type(exc).__name__}: {exc}")
            return None

    @staticmethod
    def _evict(path: Path) -> None:
        try:
            path.unlink()
        except OSError:
            pass

    # ------------------------------------------------------------------
    # Quarantine (corrupt entries are preserved as evidence, not unlinked)
    # ------------------------------------------------------------------
    @property
    def quarantine_root(self) -> Path:
        if self.root is None:
            raise RuntimeError("result store is disabled (REPRO_RESULT_STORE=off)")
        return self.root / "quarantine"

    def quarantine(self, path: Path, reason: str) -> Optional[Path]:
        """Move a corrupt entry out of the resolution path, keeping its bytes.

        The entry stops being servable (the original path is gone, so
        every lookup is a miss and the caller recomputes), but the
        corrupt bytes survive under ``<root>/quarantine/`` next to a
        ``<name>.reason.json`` manifest recording why and when — the
        evidence a postmortem (or ``fsck --report``) needs, which plain
        unlinking used to destroy.  Falls back to unlinking when the move
        itself fails (read-only root mid-flight, cross-device surprise).
        """
        if self.root is None:
            self._evict(path)
            return None
        stamp = time.time()
        target = self.quarantine_root / f"{int(stamp * 1000):013d}-{path.name}"
        try:
            target.parent.mkdir(parents=True, exist_ok=True)
            os.replace(path, target)
        except OSError:
            self._evict(path)
            return None
        manifest = {
            "original_path": str(path),
            "reason": reason,
            "quarantined_at": stamp,
            "size_bytes": target.stat().st_size if target.exists() else 0,
            "version": __version__,
        }
        try:
            target.with_name(target.name + ".reason.json").write_text(
                json.dumps(manifest, indent=2), encoding="utf-8"
            )
        except OSError:
            pass
        return target

    def quarantined(self) -> list[tuple[Path, dict]]:
        """Every quarantined entry with its reason manifest, oldest first."""
        if self.root is None or not self.quarantine_root.exists():
            return []
        found = []
        for path in sorted(self.quarantine_root.iterdir()):
            if path.name.endswith(".reason.json"):
                continue
            manifest_path = path.with_name(path.name + ".reason.json")
            try:
                manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
            except (OSError, ValueError):
                manifest = {}
            found.append((path, manifest))
        return found

    def save(self, key: str, summary: EvaluationSummary) -> Optional[Path]:
        """Persist ``summary`` under ``key``; returns the entry path.

        Persistence is best-effort: a computed result must never be lost to
        an unwritable store (read-only home, full disk), so write failures
        return None instead of raising.
        """
        if self.root is None:
            return None
        try:
            return self._save(key, summary)
        except OSError:
            return None

    def _save(self, key: str, summary: EvaluationSummary) -> Path:
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        summary_dict = summary.to_json_dict()
        payload = {
            "key": key,
            "meta": {
                "workload": summary.workload,
                "mechanism": summary.mechanism,
                "threshold_nj": summary.threshold_nj,
                "conventional_vrp": summary.conventional_vrp,
                "created": time.time(),
                "version": __version__,
            },
            "checksum": _summary_checksum(summary_dict),
            "summary": summary_dict,
        }
        blob = chaos_blob("store-save", json.dumps(payload).encode("utf-8"))
        self._publish(path, blob, prefix=f".{key[:8]}-")
        self._prune_stale_generations()
        return path

    def _publish(self, path: Path, blob: bytes, prefix: str) -> None:
        """Atomic temp-write + rename, optionally fsynced (crash-durable).

        The temp file lands in the target's own directory so the rename
        never crosses filesystems; any failure cleans the temp up (the
        open-time reaper catches the SIGKILL-between-write-and-rename
        window the handler cannot).
        """
        handle = tempfile.NamedTemporaryFile(
            mode="wb",
            dir=path.parent,
            prefix=prefix,
            suffix=".tmp",
            delete=False,
        )
        fsync = _fsync_enabled()
        try:
            with handle:
                handle.write(blob)
                if fsync:
                    handle.flush()
                    os.fsync(handle.fileno())
            os.replace(handle.name, path)
            if fsync:
                # Durability of the *name* needs the directory synced too.
                fd = os.open(path.parent, os.O_RDONLY)
                try:
                    os.fsync(fd)
                finally:
                    os.close(fd)
        except BaseException:
            try:
                os.unlink(handle.name)
            except OSError:
                pass
            raise

    # ------------------------------------------------------------------
    # Cross-process single-flight
    # ------------------------------------------------------------------
    @property
    def lock_root(self) -> Path:
        """Single-flight locks live outside the generation directories.

        Generation pruning and the temp-file reaper never touch this
        subtree (locks are ``*.lock``, not ``*.tmp``), so a held lock
        cannot be swept out from under its owner by store maintenance.
        """
        if self.root is None:
            raise RuntimeError("result store is disabled (REPRO_RESULT_STORE=off)")
        return self.root / "locks"

    def lock_path_for(self, key: str) -> Path:
        _require_key(key)
        return self.lock_root / key[:2] / f"{key}.lock"

    def _lock_is_stale(self, path: Path) -> bool:
        """True when a lock's owner is provably dead or the lock too old.

        A lock held by a live pid on this host is *never* stale — not
        even past the TTL, because a legitimate computation can outlive
        any fixed age and breaking a held lock cascades (the owner's
        release then unlinks the usurper's lock).  A lock whose recorded
        pid no longer exists (same host) is immediately stale.  The
        ``REPRO_STORE_LOCK_TTL`` age fallback applies only to locks
        whose owner cannot be probed: cross-host locks and unparseable
        payloads.
        """
        try:
            stat = path.stat()
        except OSError:
            return False  # already released
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            payload = {}  # just created and not yet written: young, keep it
        pid = payload.get("pid")
        if isinstance(pid, int) and payload.get("host") == _hostname():
            try:
                os.kill(pid, 0)
            except ProcessLookupError:
                return True  # provably dead: break immediately
            except OSError:
                return False  # EPERM and friends: the pid exists, owner lives
            return False  # probe succeeded: live owner, never age out
        return time.time() - stat.st_mtime > _lock_ttl()

    @staticmethod
    def _break_lock(path: Path) -> None:
        _log.warning("breaking stale single-flight lock %s", path)
        try:
            path.unlink()
        except OSError:
            pass

    @contextmanager
    def single_flight(
        self,
        key: str,
        poll_s: float = 0.02,
        timeout_s: Optional[float] = None,
    ) -> Iterator[Flight]:
        """Cross-process dedup: at most one live computation per ``key``.

        Usage::

            with store.single_flight(key) as flight:
                if flight.summary is not None:
                    return flight.summary          # another flight won
                summary = compute()
                store.save(key, summary)           # publish *inside* the flight

        The first caller to create ``<root>/locks/<key[:2]>/<key>.lock``
        (``O_CREAT | O_EXCL``, so the race has exactly one winner across
        processes and threads) becomes the owner; it must publish the
        entry before leaving the ``with`` block, because the lock is
        released on exit and every waiter then reads the entry.  Losers
        poll until the lock disappears, then serve the winner's entry —
        N identical concurrent evaluations cost one simulation and N-1
        cheap reads.  Crash safety: a lock whose owner died is detected
        (pid probe on the same host, TTL elsewhere) and broken, and the
        first waiter to re-acquire takes over the computation.

        With the store disabled — or the lock directory unwritable — the
        flight degrades to ``owner=True`` with no lock: correctness is
        unchanged, only the dedup is lost.
        """
        if self.root is None:
            yield Flight(key=key, owner=True)
            return
        summary = self.load(key)
        if summary is not None:
            yield Flight(key=key, owner=False, summary=summary)
            return
        lock_path = self.lock_path_for(key)
        deadline = time.monotonic() + (
            timeout_s if timeout_s is not None else 2.0 * _lock_ttl()
        )
        while True:
            fd = None
            try:
                lock_path.parent.mkdir(parents=True, exist_ok=True)
                fd = os.open(lock_path, os.O_WRONLY | os.O_CREAT | os.O_EXCL)
            except FileExistsError:
                pass
            except OSError:
                # Unwritable lock directory (read-only share): no dedup,
                # the caller just computes like before single-flight.
                yield Flight(key=key, owner=True)
                return
            if fd is not None:
                try:
                    os.write(
                        fd,
                        json.dumps(
                            {
                                "pid": os.getpid(),
                                "host": _hostname(),
                                "key": key,
                                "created": time.time(),
                            }
                        ).encode("utf-8"),
                    )
                finally:
                    os.close(fd)
                # Re-check under the lock: a winner may have published
                # between our miss above and this acquisition.
                summary = self.load(key)
                if summary is not None:
                    try:
                        lock_path.unlink()
                    except OSError:
                        pass
                    yield Flight(key=key, owner=False, summary=summary, shared=True)
                    return
                try:
                    yield Flight(key=key, owner=True)
                finally:
                    try:
                        lock_path.unlink()
                    except OSError:
                        pass
                return
            # Contended: wait for the winner to release, break it if dead.
            while lock_path.exists():
                if self._lock_is_stale(lock_path):
                    self._break_lock(lock_path)
                    break
                if time.monotonic() > deadline:
                    # Out of patience with an owner that is (as far as we
                    # can tell) alive.  Compute *without* the lock rather
                    # than usurp it: unlinking a held lock makes the
                    # owner's release unlink the usurper's lock in turn,
                    # cascading takeovers and duplicate simulations.  The
                    # worst case here is one duplicated computation with
                    # an atomic, idempotent publish.
                    _log.warning(
                        "single-flight wait on %s exceeded its deadline; "
                        "computing without the lock",
                        lock_path,
                    )
                    yield Flight(key=key, owner=True)
                    return
                time.sleep(poll_s)
            summary = self.load(key)
            if summary is not None:
                yield Flight(key=key, owner=False, summary=summary, shared=True)
                return
            # The winner died (or failed) without publishing: loop and
            # contend for ownership of the recomputation.

    # ------------------------------------------------------------------
    # Binary trace snapshots
    # ------------------------------------------------------------------
    @property
    def trace_generation_root(self) -> Path:
        """Snapshots live under a per-*simulator*-fingerprint directory.

        The fingerprint covers only the code that can change what the
        simulator produces, so analysis-layer edits keep the generation
        (and its snapshots) alive while simulator edits retire it.
        """
        if self.root is None:
            raise RuntimeError("result store is disabled (REPRO_RESULT_STORE=off)")
        return self.root / "traces" / _sim_fingerprint()[:12]

    def trace_path_for(self, key: str) -> Path:
        _require_key(key)
        return self.trace_generation_root / key[:2] / key[2:4] / f"{key}.trace"

    def load_trace(self, key: str) -> Optional[SimulationArtifact]:
        """Return the stored simulation artifact for ``key``, or None.

        Corrupted snapshots are evicted and treated as misses, exactly
        like summary entries.
        """
        if not self.trace_enabled:
            return None
        path = self.trace_path_for(key)
        try:
            blob = path.read_bytes()
        except OSError:
            return None
        try:
            # Refresh the mtime so eviction (see :meth:`evict_traces`) is
            # least-recently-*used*, not least-recently-written.
            os.utime(path)
        except OSError:
            pass
        try:
            return decode_artifact(blob)
        except Exception as exc:
            # Truncated write, bit rot, or a stale format the decoder
            # chokes on — any failure to decode means the snapshot is
            # unusable, so log, evict and report a miss (the caller
            # falls back to simulating).
            _log.warning(
                "evicting corrupt trace snapshot %s (%s: %s)", path, type(exc).__name__, exc
            )
            self.quarantine(path, f"{type(exc).__name__}: {exc}")
            return None

    def save_trace(self, key: str, artifact: SimulationArtifact) -> Optional[Path]:
        """Persist a simulation artifact under ``key`` (best-effort)."""
        if not self.trace_enabled:
            return None
        try:
            return self._save_trace(key, artifact)
        except OSError:
            return None

    def _save_trace(self, key: str, artifact: SimulationArtifact) -> Path:
        path = self.trace_path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        blob = chaos_blob("store-save-trace", encode_artifact(artifact))
        self._publish(path, blob, prefix=f".{key[:8]}-")
        self._prune_stale_trace_generations()
        self.evict_traces()
        return path

    def evict_traces(self, budget_bytes: Optional[int] = None) -> int:
        """LRU-evict snapshots until the ``traces/`` subtree fits the budget.

        The budget comes from ``REPRO_TRACE_STORE_MAX_BYTES`` (or the
        explicit argument); with no budget configured this is a no-op.
        Runs after every snapshot publish, so a bounded store converges to
        the cap instead of drifting past it.  Eviction order is by mtime —
        :meth:`load_trace` touches snapshots on every hit, so the mtime is
        a recency-of-use clock, and the coldest snapshots go first.  Losing
        a snapshot only costs a re-simulation on the next analysis-side
        change; summary entries are never evicted.  Empty shard directories
        are compacted away afterwards.
        """
        if self.root is None:
            return 0
        budget = budget_bytes if budget_bytes is not None else _trace_budget_bytes()
        if budget is None:
            return 0
        traces_root = self.root / "traces"
        try:
            snapshots = [(path, path.stat()) for path in traces_root.rglob("*.trace")]
        except OSError:
            return 0
        total = sum(stat.st_size for _, stat in snapshots)
        if total <= budget:
            return 0
        evicted = 0
        snapshots.sort(key=lambda item: item[1].st_mtime)
        for path, stat in snapshots:
            if total <= budget:
                break
            try:
                path.unlink()
            except OSError:
                continue
            total -= stat.st_size
            evicted += 1
        if evicted:
            _log.warning(
                "evicted %d trace snapshot(s) to fit %d-byte budget under %s",
                evicted,
                budget,
                traces_root,
            )
            self._compact_empty_dirs(traces_root)
        return evicted

    @staticmethod
    def _compact_empty_dirs(root: Path) -> None:
        """Remove empty shard directories left behind by eviction."""
        for dirpath, _dirnames, _filenames in os.walk(root, topdown=False):
            if Path(dirpath) == root:
                continue
            try:
                os.rmdir(dirpath)  # refuses (ENOTEMPTY) unless actually empty
            except OSError:
                continue

    def _prune_stale_trace_generations(self) -> None:
        """Drop snapshot directories written by other simulator generations.

        Mirrors :meth:`_prune_stale_generations` but under ``traces/`` and
        keyed by the simulator fingerprint.  Runs once per store instance,
        on first successful snapshot save.
        """
        if self._pruned_stale_trace_generations or self.root is None:
            return
        self._pruned_stale_trace_generations = True
        traces_root = self.root / "traces"
        current = self.trace_generation_root.name
        try:
            children = list(traces_root.iterdir())
        except OSError:
            return
        for child in children:
            if (
                child.is_dir()
                and child.name != current
                and _GENERATION_DIR_RE.fullmatch(child.name)
            ):
                shutil.rmtree(child, ignore_errors=True)

    def _prune_stale_generations(self) -> None:
        """Drop entry directories written by other code generations.

        Their keys can never be requested again (the fingerprint is part of
        every key), so without this the default store would grow by one dead
        generation per source edit, forever.  Runs once per store instance,
        on first successful save.

        Only directories that *look like* generation dirs (12 lowercase hex
        chars) are touched: the user may point ``REPRO_RESULT_STORE`` at a
        directory containing unrelated data, which must never be deleted.
        """
        if self._pruned_stale_generations or self.root is None:
            return
        self._pruned_stale_generations = True
        current = self.generation_root.name
        try:
            children = list(self.root.iterdir())
        except OSError:
            return
        for child in children:
            if (
                child.is_dir()
                and child.name != current
                and _GENERATION_DIR_RE.fullmatch(child.name)
            ):
                shutil.rmtree(child, ignore_errors=True)

    # ------------------------------------------------------------------
    # Inspection / maintenance
    # ------------------------------------------------------------------
    def entries(self) -> list[StoreEntry]:
        """Metadata of every persisted result of the current code generation,
        newest first."""
        if self.root is None or not self.generation_root.exists():
            return []
        found: list[StoreEntry] = []
        for path in self.generation_root.glob("*/*/*.json"):
            try:
                with open(path, encoding="utf-8") as handle:
                    payload = json.load(handle)
                meta = payload["meta"]
                found.append(
                    StoreEntry(
                        key=payload["key"],
                        path=path,
                        workload=meta["workload"],
                        mechanism=meta["mechanism"],
                        threshold_nj=meta["threshold_nj"],
                        conventional_vrp=meta["conventional_vrp"],
                        created=meta["created"],
                        size_bytes=path.stat().st_size,
                    )
                )
            except (OSError, ValueError, KeyError):
                continue
        found.sort(key=lambda entry: entry.created, reverse=True)
        return found

    def fsck(self, repair: bool = True) -> FsckReport:
        """Scan, verify and (optionally) repair the current generation.

        Three passes, mirroring what the lazy read path would eventually
        discover — but eagerly and exhaustively, so a service operator
        can trust a green ``fsck`` instead of waiting for corruption to
        surface mid-sweep:

        1. every summary entry must parse as JSON, decode as an
           :class:`EvaluationSummary`, and (when the entry carries a
           ``checksum``) hash back to its recorded content hash,
        2. every trace snapshot must decode as a simulation artifact,
        3. orphaned temp files are reaped aggressively — down to the
           safety floor that protects a live concurrent writer's young
           temp file (see :meth:`reap_stale_tmp`).

        Before scanning, legacy single-level-shard files are migrated
        into the current two-level layout (counted in ``migrated``) so
        the passes above cover them instead of globbing past them.

        With ``repair=True`` (default) bad files are quarantined with a
        reason manifest; with ``repair=False`` the report only lists
        them.  Entries written before checksums existed verify by decode
        only.
        """
        report = FsckReport(repaired=repair)
        if self.root is None:
            return report
        # Sweep any legacy single-level-shard files into the current
        # layout first, so the scans below actually see them.
        report.migrated = self._migrate_legacy_layout()

        def condemn(path: Path, reason: str) -> None:
            report.quarantined.append((str(path), reason))
            if repair:
                _log.warning("fsck: quarantining %s (%s)", path, reason)
                self.quarantine(path, f"fsck: {reason}")

        if self.generation_root.exists():
            for path in sorted(self.generation_root.glob("*/*/*.json")):
                report.scanned_entries += 1
                try:
                    payload = json.loads(path.read_text(encoding="utf-8"))
                except (OSError, ValueError) as exc:
                    condemn(path, f"invalid JSON ({type(exc).__name__}: {exc})")
                    continue
                try:
                    summary_dict = payload["summary"]
                    EvaluationSummary.from_json_dict(summary_dict)
                except Exception as exc:
                    condemn(path, f"undecodable summary ({type(exc).__name__}: {exc})")
                    continue
                recorded = payload.get("checksum")
                if recorded is not None and recorded != _summary_checksum(summary_dict):
                    condemn(path, "checksum mismatch (content does not hash to its record)")
                    continue
                report.ok_entries += 1

        if self.trace_enabled and self.trace_generation_root.exists():
            for path in sorted(self.trace_generation_root.glob("*/*/*.trace")):
                report.scanned_traces += 1
                try:
                    decode_artifact(path.read_bytes())
                except Exception as exc:
                    condemn(path, f"undecodable snapshot ({type(exc).__name__}: {exc})")
                    continue
                report.ok_traces += 1

        if repair:
            report.reaped_tmp = self.reap_stale_tmp(max_age_s=0.0)
        return report

    def clear(self) -> int:
        """Delete every entry; returns the number of summary entries and
        trace snapshots removed.

        Orphaned temp files (left by a process killed mid-``save``) are
        swept as well, though they do not count as entries.
        """
        if self.root is None or not self.root.exists():
            return 0
        removed = len(self.entries())
        # Wipe every generation (current and stale), which also sweeps any
        # orphaned temp files inside them.  Non-generation directories are
        # untouched: the configured root may hold unrelated user data.
        try:
            children = list(self.root.iterdir())
        except OSError:
            return 0
        for child in children:
            if child.is_dir() and _GENERATION_DIR_RE.fullmatch(child.name):
                shutil.rmtree(child, ignore_errors=True)
        # Trace snapshots live under their own subtree; same rule: only
        # generation-shaped directories are touched.
        try:
            trace_children = list((self.root / "traces").iterdir())
        except OSError:
            return removed
        for child in trace_children:
            if child.is_dir() and _GENERATION_DIR_RE.fullmatch(child.name):
                removed += sum(1 for _ in child.glob("*/*/*.trace"))
                shutil.rmtree(child, ignore_errors=True)
        return removed
