"""Shared experiment plumbing: build → transform → simulate → account.

Every table/figure module composes the same few steps: compile a workload,
optionally apply VRP or VRS, run the functional simulator on the reference
input, feed the trace to the timing model and the energy accountant under a
chosen gating policy.  ``evaluate_program`` performs one such run;
``evaluate_workload`` wraps the per-workload build/transform logic and
caches results so that one pytest/benchmark session never simulates the same
configuration twice.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..core import VRPConfig, VRSConfig, VRSResult, apply_widths, run_vrp, run_vrs
from ..core.vrp import VRPResult
from ..hardware import (
    CooperativeGating,
    GatingPolicy,
    NoGating,
    SignificanceCompression,
    SizeCompression,
    SoftwareGating,
)
from ..ir import Program
from ..isa import Width
from ..power import EnergyAccountant, EnergyBreakdown
from ..sim import Machine, RunResult, Trace
from ..uarch import MachineConfig, OutOfOrderModel, TimingResult
from ..workloads import Workload, load_suite

__all__ = [
    "SimulationOutcome",
    "WorkloadEvaluation",
    "evaluate_program",
    "evaluate_workload",
    "evaluate_suite",
    "policy_for",
    "clear_cache",
]


@dataclass
class SimulationOutcome:
    """One (program, gating policy) simulation."""

    policy: str
    run: RunResult
    timing: TimingResult
    energy: EnergyBreakdown

    @property
    def cycles(self) -> int:
        return self.timing.cycles

    @property
    def ed2(self) -> float:
        return self.energy.energy_delay_squared()

    def dynamic_width_distribution(self, trace: Trace) -> dict[Width, int]:
        """Dynamic instruction counts per encoded width (software view)."""
        distribution: dict[Width, int] = {w: 0 for w in Width.all_widths()}
        for record in trace.records:
            entry = trace.static[record.uid]
            width = entry.memory_width if entry.memory_width is not None else entry.width
            distribution[width] += 1
        return distribution


@dataclass
class WorkloadEvaluation:
    """All simulated configurations of one workload.

    The functional run and the timing model run once per (mechanism,
    threshold); energy accounting under different gating policies reuses
    the same trace and timing result.
    """

    workload: Workload
    program: Program
    trace: Trace
    run: RunResult
    timing: TimingResult
    vrp_result: Optional[VRPResult] = None
    vrs_result: Optional[VRSResult] = None
    outcomes: dict[str, SimulationOutcome] = field(default_factory=dict)

    def outcome(self, policy_name: str = "baseline") -> SimulationOutcome:
        """Energy/timing outcome under the named gating policy (cached)."""
        if policy_name not in self.outcomes:
            energy = EnergyAccountant(policy_for(policy_name)).account(self.trace, self.timing)
            self.outcomes[policy_name] = SimulationOutcome(
                policy=policy_name, run=self.run, timing=self.timing, energy=energy
            )
        return self.outcomes[policy_name]

    def dynamic_width_distribution(self) -> dict[Width, int]:
        """Dynamic instruction counts per encoded (software) width."""
        distribution: dict[Width, int] = {w: 0 for w in Width.all_widths()}
        for record in self.trace.records:
            entry = self.trace.static[record.uid]
            width = entry.memory_width if entry.memory_width is not None else entry.width
            distribution[width] += 1
        return distribution


_POLICIES: dict[str, GatingPolicy] = {}


def policy_for(name: str) -> GatingPolicy:
    """Gating policy by configuration name."""
    if not _POLICIES:
        _POLICIES.update(
            {
                "baseline": NoGating(),
                "software": SoftwareGating(),
                "hw-significance": SignificanceCompression(),
                "hw-size": SizeCompression(),
                "sw+hw-significance": CooperativeGating(SignificanceCompression()),
                "sw+hw-size": CooperativeGating(SizeCompression()),
            }
        )
    return _POLICIES[name]


def evaluate_program(
    program: Program,
    policy: GatingPolicy,
    machine_config: Optional[MachineConfig] = None,
    max_instructions: int = 20_000_000,
    trace: Optional[Trace] = None,
    run: Optional[RunResult] = None,
) -> SimulationOutcome:
    """Simulate ``program`` once and account energy under ``policy``."""
    if trace is None or run is None:
        machine = Machine(program, max_instructions=max_instructions)
        run = machine.run(collect_trace=True)
        trace = run.trace
    timing = OutOfOrderModel(machine_config).run(trace)
    energy = EnergyAccountant(policy).account(trace, timing)
    return SimulationOutcome(policy=policy.name, run=run, timing=timing, energy=energy)


# ----------------------------------------------------------------------
# Per-workload evaluation with caching
# ----------------------------------------------------------------------
_CACHE: dict[tuple, object] = {}


def clear_cache() -> None:
    """Drop all cached evaluations (used by tests)."""
    _CACHE.clear()


def _cached(key: tuple, factory):
    if key not in _CACHE:
        _CACHE[key] = factory()
    return _CACHE[key]


def evaluate_workload(
    workload: Workload,
    mechanism: str = "none",
    threshold_nj: float = 50.0,
    conventional_vrp: bool = False,
    machine_config: Optional[MachineConfig] = None,
) -> WorkloadEvaluation:
    """Build, transform and simulate one workload configuration.

    ``mechanism`` is one of ``"none"``, ``"vrp"`` or ``"vrs"``.  The result
    is cached for the whole process so that tests and benchmark targets can
    freely re-request configurations.
    """
    key = ("workload", workload.name, mechanism, threshold_nj, conventional_vrp)

    def build() -> WorkloadEvaluation:
        program = workload.build()
        vrp_result = None
        vrs_result = None
        if mechanism == "vrp":
            config = VRPConfig().conventional() if conventional_vrp else VRPConfig()
            workload.apply_input(program, "ref")
            vrp_result = run_vrp(program, config)
            apply_widths(program, vrp_result)
        elif mechanism == "vrs":
            workload.apply_input(program, "train")
            vrs_result = run_vrs(program, VRSConfig(threshold_nj=threshold_nj))
            vrp_result = vrs_result.vrp_after
        workload.apply_input(program, "ref")
        machine = Machine(program)
        run = machine.run(collect_trace=True)
        timing = OutOfOrderModel(machine_config).run(run.trace)
        return WorkloadEvaluation(
            workload=workload,
            program=program,
            trace=run.trace,
            run=run,
            timing=timing,
            vrp_result=vrp_result,
            vrs_result=vrs_result,
        )

    return _cached(key, build)


def evaluate_suite(
    mechanism: str = "none",
    threshold_nj: float = 50.0,
    conventional_vrp: bool = False,
) -> dict[str, WorkloadEvaluation]:
    """Evaluate every workload of the SpecInt95-analogue suite."""
    return {
        workload.name: evaluate_workload(
            workload,
            mechanism=mechanism,
            threshold_nj=threshold_nj,
            conventional_vrp=conventional_vrp,
        )
        for workload in load_suite()
    }
