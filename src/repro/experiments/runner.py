"""Shared experiment plumbing: build → transform → simulate → account.

Every table/figure module composes the same few steps: compile a workload,
optionally apply VRP or VRS, run the functional simulator on the reference
input, feed the trace to the timing model and the energy accountant under a
chosen gating policy.  The live pipeline lives here
(:func:`_compute_evaluation`, surfaced as
:meth:`~repro.experiments.engine.ExperimentEngine.compute`); callers go
through the :class:`~repro.experiments.engine.ExperimentEngine` session
API (``evaluate``/``map``/``map_suite``/``sweep``), which memoizes
evaluations in-process, persists their summaries to the on-disk
:class:`~repro.experiments.store.ResultStore` and fans independent
configurations out across worker processes.  The legacy free functions
(``evaluate_program``/``evaluate_workload``/``evaluate_suite``/
``compute_evaluation``) remain as deprecated shims delegating to the
default engine.

A :class:`WorkloadEvaluation` therefore comes in two flavours: *live* (just
simulated in this process; carries the program, trace and run) and
*restored* (served from the store; carries only the persisted summary).
Every accessor the figure functions use works identically on both.
"""

from __future__ import annotations

import itertools
import os
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from ..core import VRPConfig, VRSConfig, VRSResult, apply_widths, run_vrp, run_vrs
from ..core.vrp import VRPResult
from ..hardware import GatingPolicy, gating
from ..ir import Program
from ..isa import Width
from ..power import EnergyAccountant, EnergyBreakdown, MultiPolicyEnergyAccountant
from ..sim import Machine, RunResult, Trace
from ..uarch import MachineConfig, OutOfOrderModel, TimingResult
from ..workloads import Workload
from .summary import (
    EvaluationSummary,
    aggregate_trace,
    restore_vrp_stat_keys,
    runtime_specialization_fractions,
    vrp_stats,
    vrs_stats,
)

__all__ = [
    "POLICY_NAMES",
    "SimulationOutcome",
    "WorkloadEvaluation",
    "artifact_from_evaluation",
    "evaluate_program",
    "evaluate_workload",
    "evaluate_suite",
    "policy_for",
    "replay_summary",
    "clear_cache",
]

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from ..sim.snapshot import SimulationArtifact


@dataclass
class SimulationOutcome:
    """One (program, gating policy) simulation."""

    policy: str
    run: Optional[RunResult]
    timing: TimingResult
    energy: EnergyBreakdown

    @property
    def cycles(self) -> int:
        return self.timing.cycles

    @property
    def ed2(self) -> float:
        return self.energy.energy_delay_squared()

    def dynamic_width_distribution(self, trace: Trace) -> dict[Width, int]:
        """Dynamic instruction counts per encoded width (software view)."""
        return trace.width_distribution()


@dataclass
class WorkloadEvaluation:
    """All simulated configurations of one workload.

    The functional run and the timing model run once per (mechanism,
    threshold); energy accounting under different gating policies reuses
    the same trace and timing result.  A *restored* evaluation (served from
    the persistent result store) has ``program``/``trace``/``run`` set to
    ``None`` and answers every query from its :class:`EvaluationSummary`.
    """

    workload: Workload
    program: Optional[Program]
    #: Live evaluations carry either a full :class:`Trace` (materialized
    #: pipeline) or a :class:`~repro.sim.fusedc.ShapeAggregate` (fused
    #: pipeline) — every accessor below (energy accounting, the four
    #: dynamic distributions) consumes both identically.  Restored
    #: evaluations carry ``None``.
    trace: Optional[Trace]
    run: Optional[RunResult]
    timing: TimingResult
    vrp_result: Optional[VRPResult] = None
    vrs_result: Optional[VRSResult] = None
    outcomes: dict[str, SimulationOutcome] = field(default_factory=dict)
    mechanism: str = "none"
    threshold_nj: float = 50.0
    conventional_vrp: bool = False
    summary: Optional[EvaluationSummary] = None
    #: True when this process ran the simulation (False: served from disk).
    freshly_computed: bool = False
    #: True when this evaluation was rebuilt by replaying a stored binary
    #: trace snapshot (timing + accounting ran, the simulator did not).
    replayed_from_store: bool = False
    #: Which live pipeline produced this evaluation: ``"materialized"``
    #: (simulate → trace → timing walk) or ``"fused"`` (one streaming
    #: pass, no trace; see ``docs/fused.md``).  Restored evaluations keep
    #: the default — no pipeline ran in this process.
    pipeline: str = "materialized"
    _aggregates: Optional[tuple] = field(default=None, repr=False)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_summary(cls, workload: Workload, summary: EvaluationSummary) -> "WorkloadEvaluation":
        """Rebuild an evaluation from a persisted summary (no simulation)."""
        return cls(
            workload=workload,
            program=None,
            trace=None,
            run=None,
            timing=summary.timing,
            mechanism=summary.mechanism,
            threshold_nj=summary.threshold_nj,
            conventional_vrp=summary.conventional_vrp,
            summary=summary,
        )

    @property
    def is_restored(self) -> bool:
        """True when this evaluation was served from the result store."""
        return self.trace is None

    @property
    def total_dynamic_instructions(self) -> int:
        """Dynamic instruction count of the functional run."""
        if self.run is not None:
            return self.run.instructions
        return self.summary.instructions

    # ------------------------------------------------------------------
    # Energy outcomes
    # ------------------------------------------------------------------
    def outcome(self, policy_name: str = "baseline") -> SimulationOutcome:
        """Energy/timing outcome under the named gating policy (cached).

        On the live path, the first request accounts *all* stored policies
        (:data:`POLICY_NAMES`) in one fused trace walk and caches every
        sibling outcome for free — so a cold :meth:`summarize` performs
        exactly one trace walk for energy accounting.
        """
        if policy_name not in self.outcomes:
            if self.trace is not None:
                # policy_for raises the improved KeyError for unknown
                # names; every known policy is in POLICY_NAMES, so one
                # fused walk fills every cache entry at once.
                policy_for(policy_name)
                accountant = MultiPolicyEnergyAccountant(
                    {name: policy_for(name) for name in POLICY_NAMES}
                )
                for name, energy in accountant.account(self.trace, self.timing).items():
                    self.outcomes.setdefault(
                        name,
                        SimulationOutcome(
                            policy=name, run=self.run, timing=self.timing, energy=energy
                        ),
                    )
            else:
                energy = self.summary.energies.get(policy_name)
                if energy is None:
                    raise KeyError(
                        f"policy {policy_name!r} is not part of the stored summary for "
                        f"workload {self.workload.name!r}; available: "
                        f"{', '.join(sorted(self.summary.energies))}"
                    )
                self.outcomes[policy_name] = SimulationOutcome(
                    policy=policy_name, run=self.run, timing=self.timing, energy=energy
                )
        return self.outcomes[policy_name]

    # ------------------------------------------------------------------
    # Dynamic distributions (live: from the trace; restored: from summary)
    # ------------------------------------------------------------------
    def _trace_aggregates(self) -> tuple:
        """All four trace distributions, computed in one walk and cached."""
        if self._aggregates is None:
            self._aggregates = aggregate_trace(self.trace)
        return self._aggregates

    def dynamic_width_distribution(self) -> dict[Width, int]:
        """Dynamic instruction counts per encoded (software) width."""
        if self.trace is not None:
            return dict(self._trace_aggregates()[0])
        return dict(self.summary.width_distribution)

    def counted_width_counts(self) -> dict[Width, int]:
        """Width counts over the integer-computation instruction kinds."""
        if self.trace is not None:
            return dict(self._trace_aggregates()[1])
        return dict(self.summary.counted_widths)

    def result_size_histogram(self) -> dict[int, int]:
        """Histogram of result-value significant-byte sizes (Figure 12)."""
        if self.trace is not None:
            return dict(self._trace_aggregates()[2])
        return dict(self.summary.result_sizes)

    def operation_type_width_counts(self) -> dict[str, dict[Width, int]]:
        """Per-operation-type dynamic width counts (Table 3)."""
        if self.trace is not None:
            per_type = self._trace_aggregates()[3]
        else:
            per_type = self.summary.operation_types
        return {op_type: dict(widths) for op_type, widths in per_type.items()}

    # ------------------------------------------------------------------
    # Specialization statistics (Figures 4, 5, 6)
    # ------------------------------------------------------------------
    def vrp_statistics(self) -> Optional[dict]:
        """VRP summary statistics, or None when VRP did not run."""
        if self.vrp_result is not None:
            return vrp_stats(self.vrp_result)
        return self.summary.vrp if self.summary is not None else None

    def vrs_statistics(self) -> Optional[dict]:
        """VRS point/static statistics, or None when VRS did not run."""
        if self.vrs_result is not None:
            return vrs_stats(self.vrs_result)
        return self.summary.vrs if self.summary is not None else None

    def runtime_specialization(self) -> Optional[dict]:
        """Executed-instruction specialization fractions (Figure 6)."""
        if self.vrs_result is not None and self.program is not None and self.run is not None:
            return runtime_specialization_fractions(self.program, self.run, self.vrs_result)
        return self.summary.runtime_specialization if self.summary is not None else None

    # ------------------------------------------------------------------
    # Summarization
    # ------------------------------------------------------------------
    def summarize(self) -> EvaluationSummary:
        """Aggregate this evaluation into its persistable summary (cached).

        Energy breakdowns for *every* gating policy are materialized so a
        restored evaluation can answer any ``outcome()`` request without
        the trace.  All of them come from a single fused trace walk
        (:class:`~repro.power.MultiPolicyEnergyAccountant` via
        :meth:`outcome`), not one walk per policy.
        """
        if self.summary is not None:
            return self.summary
        energies = {name: self.outcome(name).energy for name in POLICY_NAMES}
        width_distribution, counted_widths, result_sizes, operation_types = (
            self._trace_aggregates()
        )
        self.summary = EvaluationSummary(
            workload=self.workload.name,
            mechanism=self.mechanism,
            threshold_nj=self.threshold_nj,
            conventional_vrp=self.conventional_vrp,
            instructions=self.run.instructions,
            output=list(self.run.output),
            timing=self.timing,
            energies=energies,
            width_distribution=width_distribution,
            counted_widths=counted_widths,
            result_sizes=result_sizes,
            operation_types=operation_types,
            vrp=vrp_stats(self.vrp_result) if self.vrp_result is not None else None,
            vrs=vrs_stats(self.vrs_result) if self.vrs_result is not None else None,
            runtime_specialization=(
                runtime_specialization_fractions(self.program, self.run, self.vrs_result)
                if self.vrs_result is not None
                else None
            ),
        )
        return self.summary


#: Gating policies materialized in every stored summary — the canonical
#: configuration names of the public registry (``gating.registry()``), in
#: paper order.
POLICY_NAMES = tuple(gating.registry())


def policy_for(name: str) -> GatingPolicy:
    """Gating policy by configuration name.

    Thin alias for :func:`repro.hardware.gating.get`, kept because the
    name is established throughout the tests and figure modules; new code
    should use the registry directly (``gating.get`` /
    ``gating.registry``).
    """
    return gating.get(name)


def _deprecated(name: str, replacement: str, stacklevel: int = 3) -> None:
    """Emit the standard deprecation warning for a legacy free function.

    ``stacklevel`` counts frames from the ``warnings.warn`` call: 1 is
    this helper, 2 the deprecated shim, 3 the shim's caller — the frame
    the warning should be attributed to when the shim calls this helper
    directly.  A shim that interposes extra frames (or re-exports
    through a wrapper) must pass the matching depth, otherwise the
    warning points inside ``repro`` and ``-W error::DeprecationWarning``
    filters keyed on the caller's module stop matching.
    """
    import warnings

    warnings.warn(
        f"repro.experiments.{name} is deprecated; use {replacement} instead "
        "(see docs/experiments.md)",
        DeprecationWarning,
        stacklevel=stacklevel,
    )


def evaluate_program(
    program: Program,
    policy: GatingPolicy,
    machine_config: Optional[MachineConfig] = None,
    max_instructions: int = 20_000_000,
    trace: Optional[Trace] = None,
    run: Optional[RunResult] = None,
) -> SimulationOutcome:
    """Simulate ``program`` once and account energy under ``policy``.

    .. deprecated:: PR6
        Part of the pre-engine free-function surface.  Compose the pieces
        directly (``Machine`` → ``OutOfOrderModel`` → ``EnergyAccountant``)
        for ad-hoc programs, or go through :class:`ExperimentEngine` for
        registered workload points.
    """
    _deprecated(
        "evaluate_program",
        "Machine/OutOfOrderModel/EnergyAccountant directly (or ExperimentEngine for workload points)",
        stacklevel=3,  # helper → this shim → caller
    )
    if trace is None or run is None:
        machine = Machine(program, max_instructions=max_instructions)
        run = machine.run(collect_trace=True)
        trace = run.trace
    timing = OutOfOrderModel(machine_config).run(trace)
    energy = EnergyAccountant(policy).account(trace, timing)
    return SimulationOutcome(policy=policy.name, run=run, timing=timing, energy=energy)


# ----------------------------------------------------------------------
# One full build → transform → simulate pipeline (live path)
# ----------------------------------------------------------------------
#: Per-process sequence for simulation probe filenames (see below).
_PROBE_SEQ = itertools.count()


def _touch_sim_probe(workload: Workload, mechanism: str) -> None:
    """Drop one marker file per live simulation into ``REPRO_SIM_PROBE_DIR``.

    Cross-process observable instrumentation: tests (and the CI service
    smoke) count the files to assert "N identical submissions cost
    exactly one simulator run" without trusting any in-process counter.
    ``O_EXCL`` plus a pid/sequence name makes every marker unique even
    when many workers probe concurrently.  No-op unless the variable is
    set; always best-effort.
    """
    probe_dir = os.environ.get("REPRO_SIM_PROBE_DIR", "")
    if not probe_dir:
        return
    name = (
        f"{workload.name}-{mechanism}-{os.getpid()}-"
        f"{next(_PROBE_SEQ)}-{time.time_ns()}.probe"
    )
    try:
        os.makedirs(probe_dir, exist_ok=True)
        fd = os.open(os.path.join(probe_dir, name), os.O_WRONLY | os.O_CREAT | os.O_EXCL)
        os.close(fd)
    except OSError:
        pass


def _compute_evaluation(
    workload: Workload,
    mechanism: str = "none",
    threshold_nj: float = 50.0,
    conventional_vrp: bool = False,
    machine_config: Optional[MachineConfig] = None,
    pipeline: str = "materialized",
) -> WorkloadEvaluation:
    """Build, transform and simulate one workload configuration (uncached).

    This is the live pipeline behind :meth:`ExperimentEngine.compute`;
    the deprecated :func:`compute_evaluation` shim delegates here.

    ``pipeline`` selects how the simulation outputs are produced:
    ``"materialized"`` simulates with a full columnar trace and walks it
    for timing; ``"fused"`` simulates, times and aggregates accounting
    shapes in one streaming pass without ever materializing the trace
    (``Machine.run(pipeline="fused")``; see ``docs/fused.md``).  Both are
    bit-identical in every figure the evaluation can answer; only a fused
    evaluation cannot feed the binary trace-snapshot store.

    The simulator runs under the dispatch tier selected by
    ``REPRO_SIM_DISPATCH`` (block-compiled by default) and the timing
    model under the kernel tier selected by ``REPRO_TIMING_KERNEL``
    (compiled by default; see ``docs/timing.md``); tiers are
    bit-identical, so the choices never affect results or store keys.
    Note the per-mechanism ordering: the ``Machine`` is built only
    *after* the VRP/VRS transformation mutated the program, because
    machines snapshot the program into their compiled artifacts.
    """
    if pipeline not in ("materialized", "fused"):
        raise ValueError(
            f"unknown pipeline {pipeline!r}; expected 'materialized' or 'fused'"
        )
    _touch_sim_probe(workload, mechanism)
    program = workload.build()
    vrp_result = None
    vrs_result = None
    if mechanism == "vrp":
        config = VRPConfig().conventional() if conventional_vrp else VRPConfig()
        workload.apply_input(program, "ref")
        vrp_result = run_vrp(program, config)
        apply_widths(program, vrp_result)
    elif mechanism == "vrs":
        workload.apply_input(program, "train")
        vrs_result = run_vrs(program, VRSConfig(threshold_nj=threshold_nj))
        vrp_result = vrs_result.vrp_after
    elif mechanism != "none":
        raise ValueError(f"unknown mechanism {mechanism!r}; expected 'none', 'vrp' or 'vrs'")
    workload.apply_input(program, "ref")
    machine = Machine(program)
    if pipeline == "fused":
        run = machine.run(pipeline="fused", machine_config=machine_config)
        trace = run.fused.shapes
        timing = run.fused.timing
    else:
        run = machine.run(collect_trace=True)
        trace = run.trace
        timing = OutOfOrderModel(machine_config).run(trace)
    return WorkloadEvaluation(
        workload=workload,
        program=program,
        trace=trace,
        run=run,
        timing=timing,
        vrp_result=vrp_result,
        vrs_result=vrs_result,
        mechanism=mechanism,
        threshold_nj=threshold_nj,
        conventional_vrp=conventional_vrp,
        pipeline=pipeline,
    )


# ----------------------------------------------------------------------
# Trace-snapshot replay (analysis without simulation)
# ----------------------------------------------------------------------
def artifact_from_evaluation(evaluation: WorkloadEvaluation) -> "SimulationArtifact":
    """Package a live evaluation's simulation outputs for the trace store."""
    from ..sim.snapshot import SimulationArtifact

    summary = evaluation.summarize()
    return SimulationArtifact(
        trace=evaluation.trace,
        instructions=summary.instructions,
        output=list(summary.output),
        vrp=summary.vrp,
        vrs=summary.vrs,
        runtime_specialization=summary.runtime_specialization,
    )


def replay_summary(
    workload: Workload,
    artifact: "SimulationArtifact",
    mechanism: str = "none",
    threshold_nj: float = 50.0,
    conventional_vrp: bool = False,
    machine_config: Optional[MachineConfig] = None,
) -> EvaluationSummary:
    """Rebuild a full evaluation summary from a trace snapshot.

    Runs the timing model, the fused multi-policy energy accountant and
    the columnar distribution aggregation over the restored trace — the
    exact pipeline a live :meth:`WorkloadEvaluation.summarize` runs — but
    performs **zero** simulator steps: the functional outputs (dynamic
    instruction count, program output, VRP/VRS statistics) come from the
    artifact.  Because trace, kernels and accumulation order are
    identical, the replayed summary is bit-identical to a fresh one.

    The timing walk dominates a replay's cost, so it routes through the
    compiled timing kernel by default (``REPRO_TIMING_KERNEL`` selects;
    both kernel tiers are bit-exact, keeping replayed summaries
    identical to cold ones).
    """
    trace = artifact.trace
    timing = OutOfOrderModel(machine_config).run(trace)
    accountant = MultiPolicyEnergyAccountant(
        {name: policy_for(name) for name in POLICY_NAMES}
    )
    energies = accountant.account(trace, timing)
    width_distribution, counted_widths, result_sizes, operation_types = aggregate_trace(trace)
    return EvaluationSummary(
        workload=workload.name,
        mechanism=mechanism,
        threshold_nj=threshold_nj,
        conventional_vrp=conventional_vrp,
        instructions=artifact.instructions,
        output=list(artifact.output),
        timing=timing,
        energies=energies,
        width_distribution=width_distribution,
        counted_widths=counted_widths,
        result_sizes=result_sizes,
        operation_types=operation_types,
        vrp=restore_vrp_stat_keys(artifact.vrp),
        vrs=artifact.vrs,
        runtime_specialization=artifact.runtime_specialization,
    )


# ----------------------------------------------------------------------
# Deprecated compatibility shims over the experiment engine
#
# The blessed surface is the ExperimentEngine session API —
# ``engine.evaluate(point)`` / ``engine.map(points)`` /
# ``engine.sweep(spec)`` / ``engine.compute(point)`` on
# ``default_engine()`` — re-exported from ``repro.experiments``.  The
# free functions below predate it and are kept as thin delegating shims
# so existing scripts keep working; each emits a DeprecationWarning.
# ----------------------------------------------------------------------
def compute_evaluation(
    workload: Workload,
    mechanism: str = "none",
    threshold_nj: float = 50.0,
    conventional_vrp: bool = False,
    machine_config: Optional[MachineConfig] = None,
) -> WorkloadEvaluation:
    """Build, transform and simulate one workload configuration (uncached).

    .. deprecated:: PR6
        Use :meth:`ExperimentEngine.compute` (the uncached live path) on
        :func:`~repro.experiments.engine.default_engine`.
    """
    _deprecated("compute_evaluation", "ExperimentEngine.compute", stacklevel=3)
    return _compute_evaluation(
        workload,
        mechanism=mechanism,
        threshold_nj=threshold_nj,
        conventional_vrp=conventional_vrp,
        machine_config=machine_config,
    )


def clear_cache() -> None:
    """Drop all in-process cached evaluations (used by tests).

    The persistent on-disk store is left alone; use
    ``python -m repro.experiments clear`` or ``ResultStore.clear()`` for
    that.
    """
    from .engine import default_engine

    default_engine().clear_memory()


def evaluate_workload(
    workload: Workload,
    mechanism: str = "none",
    threshold_nj: float = 50.0,
    conventional_vrp: bool = False,
    machine_config: Optional[MachineConfig] = None,
) -> WorkloadEvaluation:
    """Build, transform and simulate one workload configuration.

    ``mechanism`` is one of ``"none"``, ``"vrp"`` or ``"vrs"``.  Results are
    memoized for the whole process and persisted to the result store, so
    tests and benchmark targets can freely re-request configurations — even
    across processes.

    .. deprecated:: PR6
        Use ``default_engine().evaluate(ExperimentConfig(...))``.
    """
    from .engine import ExperimentConfig, default_engine

    _deprecated("evaluate_workload", "ExperimentEngine.evaluate", stacklevel=3)
    config = ExperimentConfig(
        workload=workload.name,
        mechanism=mechanism,
        threshold_nj=threshold_nj,
        conventional_vrp=conventional_vrp,
        machine_config=machine_config,
    )
    return default_engine().evaluate(config, workload=workload)


def evaluate_suite(
    mechanism: str = "none",
    threshold_nj: float = 50.0,
    conventional_vrp: bool = False,
) -> dict[str, WorkloadEvaluation]:
    """Evaluate every workload of the SpecInt95-analogue suite.

    Configurations missing from both the in-process memo and the result
    store are fanned out across the engine's worker pool.

    .. deprecated:: PR6
        Use ``default_engine().map_suite(...)``.
    """
    from .engine import default_engine

    _deprecated("evaluate_suite", "ExperimentEngine.map_suite", stacklevel=3)
    return default_engine().map_suite(
        mechanism=mechanism,
        threshold_nj=threshold_nj,
        conventional_vrp=conventional_vrp,
    )
