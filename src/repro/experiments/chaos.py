"""Deterministic seeded fault injection at named probe points.

The chaos harness is the failure-path counterpart of the coexec seam
philosophy (PR 7): instead of trusting that the supervision, retry and
crash-consistency machinery works, named probe points are compiled into
the runtime (worker entry, store publish, ...) and a single environment
variable arms them deterministically::

    REPRO_CHAOS="<seed>:<point>=<action>[@<occurrence>][,<point>=<action>[@<occurrence>]...]"

Actions:

``kill``
    SIGKILL the current process at the probe (a worker dying mid-task).
``raise[:<Label>]``
    Raise :class:`ChaosInjectedError` at the probe (a transient worker
    exception; the optional label names the scenario in the message).
``sleep:<seconds>``
    Block at the probe (a hung worker, for deadline/reaping tests).
``truncate[:<bytes>]``
    At a *blob* probe (:func:`chaos_blob`), cut the payload to the given
    byte count (default: half) — a torn store write.

``@<occurrence>`` arms the rule for the N-th hit of the point only
(1-based, default 1).  Every rule fires **at most once**: within one
process via an in-memory marker, and across processes (fork workers
inherit ``REPRO_CHAOS``) via ``O_CREAT|O_EXCL`` marker files under the
directory named by ``REPRO_CHAOS_STATE`` — so a retried task is *not*
re-killed, which is exactly what makes "a SIGKILL'd worker's point is
retried bit-identically" a deterministic, testable property.

The ``<seed>`` prefix is part of the spec so distinct chaos scenarios
have distinct identities (it salts the cross-process marker names); the
injected faults themselves are deterministic functions of the occurrence
counters, never of wall-clock or PRNG state.
"""

from __future__ import annotations

import errno
import hashlib
import logging
import os
import signal
import time
from dataclasses import dataclass
from typing import Optional

__all__ = [
    "ChaosConfig",
    "ChaosInjectedError",
    "ChaosRule",
    "active_chaos",
    "chaos_blob",
    "chaos_probe",
    "parse_chaos_spec",
    "reset_chaos",
]

_log = logging.getLogger(__name__)

#: Probe points compiled into the runtime.  Parsing rejects unknown
#: points so a typo'd spec fails loudly instead of silently injecting
#: nothing.
KNOWN_POINTS = (
    "worker-task",      # pool worker entry (engine._compute_summary_for)
    "store-save",       # summary publish (ResultStore._save)
    "store-save-trace", # snapshot publish (ResultStore._save_trace)
    "sweep-group",      # sweep group scoring (sweep.run_sweep)
)


class ChaosInjectedError(RuntimeError):
    """The error raised by an armed ``raise`` rule (clearly injected)."""


@dataclass(frozen=True)
class ChaosRule:
    """One armed ``point=action[@occurrence]`` clause."""

    point: str
    action: str                   # "kill" | "raise" | "sleep" | "truncate"
    occurrence: int = 1           # fire on the N-th hit (1-based)
    label: str = ""               # raise message label
    seconds: float = 0.0          # sleep duration
    truncate_to: Optional[int] = None  # byte count; None = half the blob


@dataclass
class ChaosConfig:
    """A parsed ``REPRO_CHAOS`` spec plus its firing state."""

    seed: int
    rules: tuple[ChaosRule, ...]
    state_dir: Optional[str] = None

    def __post_init__(self) -> None:
        self._hits: dict[str, int] = {}
        self._fired: set[tuple[str, int]] = set()

    # -- firing bookkeeping --------------------------------------------
    def _marker_name(self, rule: ChaosRule, index: int) -> str:
        material = f"{self.seed}:{rule.point}:{rule.action}:{rule.occurrence}:{index}"
        return "chaos-" + hashlib.sha256(material.encode()).hexdigest()[:16]

    def _claim(self, rule: ChaosRule, index: int) -> bool:
        """Atomically claim one rule firing (once per process *and*, with a
        state directory, once across every process sharing the spec)."""
        token = (rule.point, index)
        if token in self._fired:
            return False
        if self.state_dir is not None:
            path = os.path.join(self.state_dir, self._marker_name(rule, index))
            try:
                fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except OSError as error:
                if error.errno == errno.EEXIST:
                    self._fired.add(token)
                    return False
                # Unwritable state dir: fall back to per-process one-shot.
            else:
                os.close(fd)
        self._fired.add(token)
        return True

    # -- probes ---------------------------------------------------------
    def hit(self, point: str) -> Optional[ChaosRule]:
        """Record one hit of ``point``; return the rule to fire, if any."""
        count = self._hits.get(point, 0) + 1
        self._hits[point] = count
        for index, rule in enumerate(self.rules):
            if rule.point != point or rule.occurrence != count:
                continue
            if self._claim(rule, index):
                return rule
        return None


def parse_chaos_spec(spec: str, state_dir: Optional[str] = None) -> ChaosConfig:
    """Parse ``<seed>:<point>=<action>[@k][,...]`` into a :class:`ChaosConfig`."""
    head, sep, body = spec.partition(":")
    if not sep:
        raise ValueError(
            f"invalid REPRO_CHAOS spec {spec!r}: expected '<seed>:<point>=<action>[@k],...'"
        )
    try:
        seed = int(head, 0)
    except ValueError:
        raise ValueError(f"invalid REPRO_CHAOS seed {head!r}: expected an integer") from None
    rules = []
    for clause in body.split(","):
        clause = clause.strip()
        if not clause:
            continue
        point, sep, action_spec = clause.partition("=")
        if not sep:
            raise ValueError(f"invalid REPRO_CHAOS clause {clause!r}: missing '='")
        point = point.strip()
        if point not in KNOWN_POINTS:
            raise ValueError(
                f"unknown chaos probe point {point!r}; known points: {', '.join(KNOWN_POINTS)}"
            )
        action_spec, at, occurrence_text = action_spec.partition("@")
        occurrence = 1
        if at:
            try:
                occurrence = int(occurrence_text)
            except ValueError:
                raise ValueError(
                    f"invalid chaos occurrence {occurrence_text!r} in {clause!r}"
                ) from None
            if occurrence < 1:
                raise ValueError(f"chaos occurrence must be >= 1 in {clause!r}")
        action, _, argument = action_spec.partition(":")
        action = action.strip()
        label = ""
        seconds = 0.0
        truncate_to: Optional[int] = None
        if action == "kill":
            pass
        elif action == "raise":
            label = argument or "injected"
        elif action == "sleep":
            try:
                seconds = float(argument)
            except ValueError:
                raise ValueError(f"invalid chaos sleep duration in {clause!r}") from None
        elif action == "truncate":
            if argument:
                try:
                    truncate_to = int(argument)
                except ValueError:
                    raise ValueError(f"invalid chaos truncate size in {clause!r}") from None
        else:
            raise ValueError(
                f"unknown chaos action {action!r} in {clause!r}; "
                "expected kill, raise, sleep or truncate"
            )
        rules.append(
            ChaosRule(
                point=point,
                action=action,
                occurrence=occurrence,
                label=label,
                seconds=seconds,
                truncate_to=truncate_to,
            )
        )
    return ChaosConfig(seed=seed, rules=tuple(rules), state_dir=state_dir)


# ----------------------------------------------------------------------
# Process-wide active configuration (lazily read from the environment)
# ----------------------------------------------------------------------
_ACTIVE: Optional[ChaosConfig] = None
_ACTIVE_SPEC: Optional[str] = None


def active_chaos() -> Optional[ChaosConfig]:
    """The armed :class:`ChaosConfig`, or None when ``REPRO_CHAOS`` is unset.

    Re-parsed whenever the environment variable changes, so tests can arm
    and disarm scenarios with ``monkeypatch.setenv`` without touching
    module state; firing state is preserved while the spec is stable.
    """
    global _ACTIVE, _ACTIVE_SPEC
    spec = os.environ.get("REPRO_CHAOS", "")
    if not spec:
        _ACTIVE = _ACTIVE_SPEC = None
        return None
    if spec != _ACTIVE_SPEC:
        _ACTIVE = parse_chaos_spec(spec, state_dir=os.environ.get("REPRO_CHAOS_STATE") or None)
        _ACTIVE_SPEC = spec
    return _ACTIVE


def reset_chaos() -> None:
    """Forget parsed spec and firing state (tests)."""
    global _ACTIVE, _ACTIVE_SPEC
    _ACTIVE = _ACTIVE_SPEC = None


def chaos_probe(point: str) -> None:
    """Execute the armed action for ``point``, if any (no-op when unarmed).

    ``kill`` SIGKILLs the calling process (SIGKILL cannot be caught, so
    this faithfully models an OOM kill); ``raise`` raises
    :class:`ChaosInjectedError`; ``sleep`` blocks; ``truncate`` rules are
    ignored here (they only apply to :func:`chaos_blob`).
    """
    config = active_chaos()
    if config is None:
        return
    rule = config.hit(point)
    if rule is None:
        return
    if rule.action == "kill":
        _log.warning("chaos: SIGKILL at probe %r (seed %d)", point, config.seed)
        os.kill(os.getpid(), signal.SIGKILL)
    elif rule.action == "raise":
        raise ChaosInjectedError(f"chaos[{config.seed}]: injected {rule.label} at {point}")
    elif rule.action == "sleep":
        _log.warning(
            "chaos: sleeping %.3fs at probe %r (seed %d)", rule.seconds, point, config.seed
        )
        time.sleep(rule.seconds)


def chaos_blob(point: str, blob: bytes) -> bytes:
    """Pass ``blob`` through the armed transform for ``point``, if any.

    Only ``truncate`` rules transform; ``kill``/``raise``/``sleep`` rules
    on a blob probe behave as in :func:`chaos_probe` (the hit is shared).
    """
    config = active_chaos()
    if config is None:
        return blob
    rule = config.hit(point)
    if rule is None:
        return blob
    if rule.action == "truncate":
        cut = rule.truncate_to if rule.truncate_to is not None else len(blob) // 2
        cut = max(0, min(len(blob), cut))
        _log.warning(
            "chaos: truncating %d-byte blob to %d at probe %r (seed %d)",
            len(blob),
            cut,
            point,
            config.seed,
        )
        return blob[:cut]
    if rule.action == "kill":
        _log.warning("chaos: SIGKILL at probe %r (seed %d)", point, config.seed)
        os.kill(os.getpid(), signal.SIGKILL)
    elif rule.action == "raise":
        raise ChaosInjectedError(f"chaos[{config.seed}]: injected {rule.label} at {point}")
    elif rule.action == "sleep":
        time.sleep(rule.seconds)
    return blob
