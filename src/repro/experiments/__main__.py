"""Command-line interface to the experiment engine and result store.

Usage::

    python -m repro.experiments run [--workload NAME ...] [--mechanism M]
                                    [--threshold NJ] [--conventional-vrp]
                                    [--policy P] [--jobs N]
                                    [--pipeline auto|fused|materialized] [--json]
    python -m repro.experiments sweep [--workload NAME ...] [--config NAME ...]
                                      [--policy P ...] [--mechanism M]
                                      [--threshold NJ] [--conventional-vrp]
                                      [--pipeline auto|fused|materialized] [--json]
    python -m repro.experiments profile [--workload NAME] [--mechanism M]
                                        [--dispatch TIER] [--top N]
    python -m repro.experiments diverge [--workload NAME | --program FILE]
                                        [--tiers A B] [--mode sim|timing|energy]
                                        [--kernels A B] [--inject SPEC|auto]
                                        [--max-instructions N] [--shrink]
                                        [--out DIR] [--replay DIR] [--json]
    python -m repro.experiments ls
    python -m repro.experiments clear [--yes]

``run`` evaluates the requested configurations (all eight suite workloads
by default) through the engine — memo, then persistent store, then a
parallel compute fan-out — and prints one row per workload.  ``--policy
all`` prints one energy column per registered gating policy
(``gating.registry()``); every summary carries all of them because cold
evaluations account the whole policy set in a single fused trace walk.
``--pipeline`` selects the cold-compute path (``docs/fused.md``):
``fused`` streams simulate→time→account per record without materializing
a trace, ``materialized`` builds the classic trace, and ``auto`` (the
default) streams whenever no trace snapshot would be persisted anyway.
The report's footer names the pipeline that cold rows ran through; the
choice is bit-exact either way.

``sweep`` evaluates a design-space *matrix* — machine configs × gating
policies × workloads — through the batched sweep path
(``ExperimentEngine.sweep``; see ``docs/sweeps.md``): one snapshot replay
or simulation per workload, one multi-config timing-kernel walk per
cache/predictor shape group, one fused accounting walk per trace.  From a
warm store the whole matrix completes with zero simulator calls.  The
default matrix (8 configs × 6 policies × 8 workloads = 384 points)
reproduces the paper's ED² comparisons (Figures 11/15) across machines.

``diverge`` is the correctness side of the tooling: it co-executes two
simulator tiers in lockstep (or bisects two analysis kernels) over one
program and reports the *first* diverging step instead of an end-of-run
summary mismatch — optionally seeding a single-instruction fault,
shrinking the failing program, and writing a self-contained reproducer
under ``.repro-failures/`` (see ``docs/coexec.md``).

``profile`` runs one workload's full build → transform → simulate →
account pipeline under ``cProfile`` (bypassing every cache layer) and
prints the top-N functions by cumulative time — the standard
before/after evidence for performance work.  ``ls`` and ``clear``
inspect and empty the content-addressed result store.
"""

from __future__ import annotations

import argparse
import json
import logging
import sys
import time

from ..hardware import gating
from ..workloads import SUITE_NAMES
from .engine import ExperimentConfig, _resolve_pipeline, default_engine
from .report import format_percent, format_table
from .runner import POLICY_NAMES
from .store import ResultStore
from .sweep import SweepResult, SweepSpec, default_sweep_configs


# ----------------------------------------------------------------------
# Shared argument plumbing (run / profile / sweep)
# ----------------------------------------------------------------------
def _add_config_arguments(parser: argparse.ArgumentParser, repeatable_workload: bool) -> None:
    """The experiment-configuration arguments every evaluating command shares."""
    if repeatable_workload:
        parser.add_argument(
            "--workload",
            action="append",
            metavar="NAME",
            help="workload to evaluate (repeatable; default: the whole suite)",
        )
    else:
        parser.add_argument(
            "--workload",
            default="ijpeg",
            metavar="NAME",
            help="workload to profile (default: ijpeg)",
        )
    parser.add_argument(
        "--mechanism",
        choices=("none", "vrp", "vrs"),
        default="none",
        help="width mechanism to apply (default: none)",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=50.0,
        metavar="NJ",
        help="VRS specialization-cost threshold in nanojoules (default: 50)",
    )
    parser.add_argument(
        "--conventional-vrp",
        action="store_true",
        help="use conventional (non-useful-range) VRP",
    )


def _check_workloads(workloads: list[str]) -> int:
    """Print an error and return 2 on unknown workload names, else 0."""
    unknown = sorted(set(workloads) - set(SUITE_NAMES))
    if unknown:
        print(
            f"unknown workload(s): {', '.join(unknown)}; "
            f"the suite is: {', '.join(SUITE_NAMES)}",
            file=sys.stderr,
        )
        return 2
    return 0


def _experiment_configs(args: argparse.Namespace, workloads: list[str]) -> list[ExperimentConfig]:
    """One ExperimentConfig per workload from the shared arguments."""
    return [
        ExperimentConfig(
            workload=name,
            mechanism=args.mechanism,
            threshold_nj=args.threshold,
            conventional_vrp=args.conventional_vrp,
        )
        for name in workloads
    ]


# ----------------------------------------------------------------------
# run
# ----------------------------------------------------------------------
def _cmd_run(args: argparse.Namespace) -> int:
    engine = default_engine()
    workloads = args.workload or list(SUITE_NAMES)
    status = _check_workloads(workloads)
    if status:
        return status
    configs = _experiment_configs(args, workloads)
    # Resolve up front so the report can say which pipeline cold rows ran
    # through (warm rows come from the store and never touch either).
    pipeline = _resolve_pipeline(args.pipeline, engine.store)
    start = time.perf_counter()
    evaluations = engine.map(configs, jobs=args.jobs, pipeline=pipeline)
    elapsed = time.perf_counter() - start

    if args.json:
        policies = list(POLICY_NAMES) if args.policy == "all" else [args.policy]
        payload = {
            "mechanism": args.mechanism,
            "threshold_nj": args.threshold,
            "conventional_vrp": args.conventional_vrp,
            "pipeline": pipeline,
            "seconds": elapsed,
            "rows": [
                {
                    "workload": evaluation.workload.name,
                    "instructions": evaluation.total_dynamic_instructions,
                    "cycles": evaluation.outcome("baseline").cycles,
                    "source": "computed" if evaluation.freshly_computed else "store",
                    "energy_nj": {
                        name: evaluation.outcome(name).energy.total for name in policies
                    },
                    "ed2": {name: evaluation.outcome(name).ed2 for name in policies},
                }
                for evaluation in evaluations
            ],
        }
        json.dump(payload, sys.stdout, indent=2)
        print()
        return 0

    title = f"mechanism={args.mechanism} policy={args.policy}"
    if args.mechanism == "vrs":
        title += f" threshold={args.threshold:g}nJ"
    rows = []
    if args.policy == "all":
        # Every summary materializes all gating policies from one fused
        # trace walk, so the whole matrix is available without re-walking.
        headers = ["workload", "instructions", "cycles"]
        headers += [f"E({name})" for name in POLICY_NAMES] + ["source"]
        for evaluation in evaluations:
            rows.append(
                [
                    evaluation.workload.name,
                    evaluation.total_dynamic_instructions,
                    evaluation.outcome("baseline").cycles,
                ]
                + [evaluation.outcome(name).energy.total for name in POLICY_NAMES]
                + ["computed" if evaluation.freshly_computed else "store"]
            )
    else:
        headers = ["workload", "instructions", "cycles", "energy (nJ)", "ED^2", "source"]
        for evaluation in evaluations:
            outcome = evaluation.outcome(args.policy)
            rows.append(
                [
                    evaluation.workload.name,
                    evaluation.total_dynamic_instructions,
                    outcome.cycles,
                    outcome.energy.total,
                    outcome.ed2,
                    "computed" if evaluation.freshly_computed else "store",
                ]
            )
    print(format_table(headers, rows, title=title))
    cold = sum(1 for evaluation in evaluations if evaluation.freshly_computed)
    print(
        f"{len(evaluations)} configuration(s) in {elapsed:.2f}s "
        f"({cold} cold via the {pipeline} pipeline)"
    )
    return 0


# ----------------------------------------------------------------------
# sweep
# ----------------------------------------------------------------------
def _cmd_sweep(args: argparse.Namespace) -> int:
    engine = default_engine()
    workloads = args.workload or list(SUITE_NAMES)
    status = _check_workloads(workloads)
    if status:
        return status

    available = dict(default_sweep_configs())
    config_names = args.config or list(available)
    unknown = sorted(set(config_names) - set(available))
    if unknown:
        print(
            f"unknown machine config(s): {', '.join(unknown)}; "
            f"available: {', '.join(available)}",
            file=sys.stderr,
        )
        return 2
    configs = tuple((name, available[name]) for name in config_names)

    # The policy axis enumerates the public registry; "all" (the default)
    # means every registered policy.
    if not args.policy or "all" in args.policy:
        policies = tuple(gating.registry())
    else:
        policies = tuple(dict.fromkeys(args.policy))

    spec = SweepSpec.cartesian(
        workloads=workloads,
        configs=configs,
        policies=policies,
        mechanism=args.mechanism,
        threshold_nj=args.threshold,
        conventional_vrp=args.conventional_vrp,
    )
    start = time.perf_counter()
    result = SweepResult.collect(engine.sweep(spec, pipeline=args.pipeline))
    elapsed = time.perf_counter() - start
    result.seconds = elapsed

    # ED² savings need the baseline policy's rows as the reference.
    savings = result.ed2_savings() if "baseline" in policies else None

    if args.json:
        payload = result.to_json_dict()
        if savings is not None:
            payload["ed2_savings"] = [
                {"config": config, "policy": policy, "savings": cells}
                for (config, policy), cells in savings.items()
            ]
        payload["pareto"] = [row.to_json_dict() for row in result.pareto_frontier()]
        json.dump(payload, sys.stdout, indent=2)
        print()
        return 0

    title = f"sweep: {len(config_names)} configs x {len(policies)} policies x {len(workloads)} workloads ({len(result)} points)"
    if savings is not None:
        headers = ["config", "policy"] + list(workloads) + ["mean"]
        rows = []
        for (config, policy), cells in savings.items():
            if policy == "baseline":
                continue  # savings vs itself: identically zero
            values = [cells[name] for name in workloads]
            rows.append(
                [config, policy]
                + [format_percent(value) for value in values]
                + [format_percent(sum(values) / len(values))]
            )
        print(format_table(headers, rows, title=title + " - ED^2 savings vs baseline policy"))
        print()
    else:
        print(title + " (no baseline policy on the axis; ED^2 savings omitted)")
        print()

    pareto_rows = []
    for name in workloads:
        for row in result.pareto_frontier(name):
            pareto_rows.append(
                [name, row.config, row.policy, row.cycles, row.energy_nj]
            )
    print(
        format_table(
            ["workload", "config", "policy", "cycles", "energy (nJ)"],
            pareto_rows,
            title="Pareto frontier (cycles vs energy, per workload)",
        )
    )
    rate = len(result) / elapsed * 60.0 if elapsed > 0 else float("inf")
    # Per-row provenance: how each trace signature was resolved ("fused"
    # rows streamed through the fused pipeline, no trace ever existed).
    sources: dict[str, int] = {}
    for row in result:
        sources[row.source] = sources.get(row.source, 0) + 1
    provenance = ", ".join(f"{name}={count}" for name, count in sorted(sources.items()))
    print(
        f"{len(result)} points in {elapsed:.2f}s ({rate:,.0f} points/minute), "
        f"{result.simulations} cold simulation(s); row sources: {provenance}"
    )
    return 0


# ----------------------------------------------------------------------
# profile
# ----------------------------------------------------------------------
def _cmd_profile(args: argparse.Namespace) -> int:
    """cProfile one workload's cold evaluation pipeline (no cache layers)."""
    import cProfile
    import io
    import os
    import pstats

    from ..sim.machine import _default_dispatch
    from ..workloads import workload_by_name

    status = _check_workloads([args.workload])
    if status:
        return status
    previous_dispatch = os.environ.get("REPRO_SIM_DISPATCH")
    if args.dispatch is not None:
        os.environ["REPRO_SIM_DISPATCH"] = args.dispatch
    # Resolve through the machine's own vocabulary so the printed label
    # matches the tier that actually ran (e.g. "off" means reference).
    dispatch = _default_dispatch()

    workload = workload_by_name(args.workload)
    engine = default_engine()
    profiler = cProfile.Profile()
    start = time.perf_counter()
    try:
        profiler.enable()
        evaluation = engine.compute(
            ExperimentConfig(
                workload=args.workload,
                mechanism=args.mechanism,
                threshold_nj=args.threshold,
                conventional_vrp=args.conventional_vrp,
            ),
            workload=workload,
        )
        evaluation.summarize()
        profiler.disable()
    finally:
        if args.dispatch is not None:
            if previous_dispatch is None:
                os.environ.pop("REPRO_SIM_DISPATCH", None)
            else:
                os.environ["REPRO_SIM_DISPATCH"] = previous_dispatch
    elapsed = time.perf_counter() - start

    stream = io.StringIO()
    pstats.Stats(profiler, stream=stream).sort_stats("cumulative").print_stats(args.top)
    print(
        f"profile: workload={args.workload} mechanism={args.mechanism} "
        f"dispatch={dispatch} ({elapsed:.2f}s, "
        f"{evaluation.total_dynamic_instructions} dynamic instructions)"
    )
    print(stream.getvalue().rstrip())
    return 0


# ----------------------------------------------------------------------
# diverge
# ----------------------------------------------------------------------
def _diverge_program(args: argparse.Namespace) -> tuple[str, object] | int:
    """Resolve the program under test to ``(source text, Program)``."""
    from pathlib import Path

    from ..asm import assemble_program
    from ..ir.printer import format_program
    from ..workloads import workload_by_name

    if args.program is not None:
        source = Path(args.program).read_text(encoding="utf-8")
        return source, assemble_program(source)
    name = args.workload or "li"
    status = _check_workloads([name])
    if status:
        return status
    workload = workload_by_name(name)
    program = workload.build()
    workload.apply_input(program, "ref")
    # Round-trip through the printer so the program under test and the
    # reproducer's program.asm are the same text.
    source = format_program(program)
    return source, assemble_program(source)


def _diverge_report(divergence, args: argparse.Namespace, extra: dict | None = None) -> int:
    if args.json:
        payload = {"divergence": None if divergence is None else divergence.to_json_dict()}
        if extra:
            payload.update(extra)
        json.dump(payload, sys.stdout, indent=2)
        print()
    elif divergence is None:
        print("no divergence: both sides agree")
    else:
        print(divergence.describe())
        if extra:
            for key, value in extra.items():
                print(f"{key}: {value}")
    return 0 if divergence is None else 1


def _cmd_diverge(args: argparse.Namespace) -> int:
    from pathlib import Path

    from ..asm import assemble_program
    from ..coexec import (
        Fault,
        Lockstep,
        compare_accounting,
        compare_timing,
        eligible_faults,
        replay_reproducer,
        resolve_fault_uid,
        shrink_source,
        write_reproducer,
    )
    from ..sim.machine import Machine

    if args.replay is not None:
        replayed, recorded = replay_reproducer(Path(args.replay))
        faithful = replayed is not None and replayed.signature() == recorded.signature()
        if args.json:
            payload = {
                "faithful": faithful,
                "recorded": recorded.to_json_dict(),
                "replayed": None if replayed is None else replayed.to_json_dict(),
            }
            json.dump(payload, sys.stdout, indent=2)
            print()
        elif faithful:
            print(f"reproducer replays faithfully:\n{recorded.describe()}")
        elif replayed is None:
            print("reproducer no longer diverges (recorded divergence below)")
            print(recorded.describe())
        else:
            print("reproducer diverges DIFFERENTLY than recorded:")
            print(f"recorded:\n{recorded.describe()}\nreplayed:\n{replayed.describe()}")
        return 0 if faithful else 1

    resolved = _diverge_program(args)
    if isinstance(resolved, int):
        return resolved
    source, program = resolved

    if args.mode in ("timing", "energy"):
        trace = Machine(program, max_instructions=args.max_instructions).run(
            collect_trace=True
        ).trace
        if args.mode == "timing":
            divergence = compare_timing(trace, kernels=tuple(args.kernels))
        else:
            divergence = compare_accounting(trace)
        return _diverge_report(divergence, args)

    fault = None
    if args.inject is not None:
        if args.inject == "auto":
            machine = Machine(program, max_instructions=args.max_instructions)
            executed = set(machine.run(collect_trace=True).trace.uid_counts())
            candidates = eligible_faults(program, executed_uids=executed)
            if not candidates:
                print("no executed mutable instruction to inject into", file=sys.stderr)
                return 2
            fault = candidates[0]
        else:
            fault = Fault.parse(args.inject)
            if resolve_fault_uid(fault, program) is None:
                print(f"fault site {args.inject!r} not found or not mutable", file=sys.stderr)
                return 2

    tiers = tuple(args.tiers)
    divergence = Lockstep(
        program, tiers=tiers, max_instructions=args.max_instructions, fault=fault
    ).run()
    extra: dict = {}
    if fault is not None:
        extra["fault"] = fault.spec()

    if divergence is not None and args.shrink:
        # Deleting lines can turn a terminating program into a spinner, so
        # candidate runs get a budget scaled to where the original run
        # diverged: a candidate that would only diverge far beyond that is
        # rejected (both tiers hit the limit identically = agreement)
        # instead of burning the full --max-instructions budget.
        shrink_limit = min(args.max_instructions, max(10_000, 4 * divergence.step + 1_000))

        def check(candidate: str):
            try:
                candidate_program = assemble_program(candidate)
            except Exception:
                return None
            if fault is not None and resolve_fault_uid(fault, candidate_program) is None:
                return None
            try:
                return Lockstep(
                    candidate_program,
                    tiers=tiers,
                    max_instructions=shrink_limit,
                    fault=fault,
                ).run()
            except Exception:
                return None

        source, divergence, checks = shrink_source(source, check)
        # The reproducer records the limit the shrunk divergence was
        # found under, so a replay re-runs the identical comparison.
        directory = write_reproducer(
            source,
            divergence,
            tiers=tiers,
            max_instructions=shrink_limit,
            fault=fault,
            directory=Path(args.out) if args.out is not None else None,
        )
        extra["shrunk_lines"] = len(source.splitlines())
        extra["checks"] = checks
        extra["reproducer"] = str(directory)
    return _diverge_report(divergence, args, extra)


def _cmd_ls(_args: argparse.Namespace) -> int:
    store = ResultStore()
    if not store.enabled:
        print("result store is disabled (REPRO_RESULT_STORE=off)")
        return 0
    entries = store.entries()
    print(f"store root: {store.root}")
    if not entries:
        print("(empty)")
        return 0
    rows = []
    now = time.time()
    for entry in entries:
        config = entry.mechanism
        if entry.mechanism == "vrs":
            config += f"@{entry.threshold_nj:g}nJ"
        if entry.conventional_vrp:
            config += " (conventional)"
        rows.append(
            [
                entry.key[:12],
                entry.workload,
                config,
                f"{entry.size_bytes / 1024:.1f} KiB",
                f"{(now - entry.created) / 60:.1f} min ago",
            ]
        )
    print(format_table(["key", "workload", "mechanism", "size", "created"], rows))
    print(f"{len(entries)} entr{'y' if len(entries) == 1 else 'ies'}")
    return 0


def _cmd_fsck(args: argparse.Namespace) -> int:
    store = ResultStore()
    if not store.enabled:
        print("result store is disabled (REPRO_RESULT_STORE=off)")
        return 0
    report = store.fsck(repair=not args.no_repair)
    if args.json:
        print(json.dumps(report.to_json_dict(), indent=2, sort_keys=True))
        return 0 if report.clean else 1
    print(f"store root: {store.root}")
    print(
        f"entries: {report.ok_entries}/{report.scanned_entries} ok, "
        f"traces: {report.ok_traces}/{report.scanned_traces} ok, "
        f"stale temp files reaped: {report.reaped_tmp}"
    )
    if report.clean:
        print("store is clean")
        return 0
    verb = "quarantined" if report.repaired else "found (run without --no-repair to quarantine)"
    print(f"{len(report.quarantined)} corrupt file(s) {verb}:")
    for path, reason in report.quarantined:
        print(f"  {path}: {reason}")
    return 1


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from ..service import EvaluationService

    service = EvaluationService(
        host=args.host,
        port=args.port,
        workers=args.workers,
        jobs=args.jobs,
    )
    try:
        return asyncio.run(service.serve())
    except KeyboardInterrupt:
        return 0


def _cmd_clear(args: argparse.Namespace) -> int:
    store = ResultStore()
    if not store.enabled:
        print("result store is disabled (REPRO_RESULT_STORE=off)")
        return 0
    count = len(store.entries())
    if count and not args.yes:
        try:
            reply = input(f"delete {count} stored result(s) under {store.root}? [y/N] ")
        except EOFError:  # non-interactive stdin: treat as "no"
            reply = ""
        if reply.strip().lower() not in ("y", "yes"):
            print("aborted")
            return 1
    removed = store.clear()
    print(f"removed {removed} entr{'y' if removed == 1 else 'ies'}")
    return 0


def main(argv: list[str] | None = None) -> int:
    # All diagnostics (store reap/eviction warnings, engine fallbacks,
    # service logs) go to stderr so that `--json` stdout stays a single
    # machine-parseable document.
    logging.basicConfig(
        stream=sys.stderr,
        level=logging.WARNING,
        format="%(levelname)s %(name)s: %(message)s",
    )
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Evaluate paper configurations through the parallel experiment engine.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    run_parser = subparsers.add_parser("run", help="evaluate workload configurations")
    _add_config_arguments(run_parser, repeatable_workload=True)
    run_parser.add_argument(
        "--policy",
        choices=POLICY_NAMES + ("all",),
        default="baseline",
        help=(
            "gating policy for the reported energy column, or 'all' for one "
            "energy column per registered policy (default: baseline)"
        ),
    )
    run_parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for cold configurations (default: REPRO_JOBS or CPU count)",
    )
    run_parser.add_argument(
        "--pipeline",
        choices=("auto", "fused", "materialized"),
        default="auto",
        help=(
            "cold-compute path: 'fused' streams simulate->time->account without "
            "materializing a trace, 'materialized' builds the classic trace, "
            "'auto' streams whenever no trace snapshot would be persisted "
            "(default: auto; both are bit-exact)"
        ),
    )
    run_parser.add_argument(
        "--json",
        action="store_true",
        help="emit machine-readable JSON instead of tables",
    )
    run_parser.set_defaults(func=_cmd_run)

    sweep_parser = subparsers.add_parser(
        "sweep", help="evaluate a batched design-space matrix (configs x policies x workloads)"
    )
    _add_config_arguments(sweep_parser, repeatable_workload=True)
    sweep_parser.add_argument(
        "--config",
        action="append",
        choices=tuple(name for name, _ in default_sweep_configs()),
        metavar="NAME",
        help="machine config for the sweep axis (repeatable; default: all eight)",
    )
    sweep_parser.add_argument(
        "--policy",
        action="append",
        choices=POLICY_NAMES + ("all",),
        metavar="NAME",
        help="gating policy for the sweep axis (repeatable; default: all registered)",
    )
    sweep_parser.add_argument(
        "--pipeline",
        choices=("auto", "fused", "materialized"),
        default="auto",
        help=(
            "cold-group path: 'fused' streams every cold trace signature, "
            "'materialized' simulates and snapshots, 'auto' streams cold "
            "single-config groups and materializes multi-config groups "
            "(default: auto; warm snapshots always replay first)"
        ),
    )
    sweep_parser.add_argument(
        "--json",
        action="store_true",
        help="emit machine-readable JSON instead of tables",
    )
    sweep_parser.set_defaults(func=_cmd_sweep)

    profile_parser = subparsers.add_parser(
        "profile", help="cProfile one workload's cold evaluation pipeline"
    )
    _add_config_arguments(profile_parser, repeatable_workload=False)
    profile_parser.add_argument(
        "--dispatch",
        choices=("block", "fast", "reference"),
        default=None,
        help="simulator dispatch tier (sets REPRO_SIM_DISPATCH; default: environment)",
    )
    profile_parser.add_argument(
        "--top",
        type=int,
        default=25,
        metavar="N",
        help="number of functions to print, sorted by cumulative time (default: 25)",
    )
    profile_parser.set_defaults(func=_cmd_profile)

    diverge_parser = subparsers.add_parser(
        "diverge",
        help="co-execute two simulator tiers (or analysis kernels) and report the first divergence",
    )
    target = diverge_parser.add_mutually_exclusive_group()
    target.add_argument(
        "--workload",
        metavar="NAME",
        help="suite workload to co-execute (default: li)",
    )
    target.add_argument(
        "--program",
        metavar="FILE",
        help="assembler source file to co-execute instead of a workload",
    )
    diverge_parser.add_argument(
        "--tiers",
        nargs=2,
        choices=("reference", "fast", "block"),
        default=("reference", "block"),
        metavar=("A", "B"),
        help="simulator tier pair to compare (default: reference block)",
    )
    diverge_parser.add_argument(
        "--mode",
        choices=("sim", "timing", "energy"),
        default="sim",
        help=(
            "what to compare: simulator tiers in lockstep, timing kernels over "
            "one trace, or per-policy vs fused energy accounting (default: sim)"
        ),
    )
    diverge_parser.add_argument(
        "--kernels",
        nargs=2,
        choices=("reference", "compiled", "compiled-lane"),
        default=("reference", "compiled"),
        metavar=("A", "B"),
        help="timing-kernel pair for --mode timing (default: reference compiled)",
    )
    diverge_parser.add_argument(
        "--inject",
        metavar="FUNC:BLOCK:INDEX",
        help=(
            "seed a flip-low-bit fault at one instruction of the second (block) "
            "tier, or 'auto' for the first executed mutable site"
        ),
    )
    diverge_parser.add_argument(
        "--max-instructions",
        type=int,
        default=20_000_000,
        metavar="N",
        help="dynamic instruction limit per run (default: 20,000,000)",
    )
    diverge_parser.add_argument(
        "--shrink",
        action="store_true",
        help="on divergence, minimize the program and write a reproducer",
    )
    diverge_parser.add_argument(
        "--out",
        metavar="DIR",
        help="reproducer output directory (default: .repro-failures/lockstep-<digest>)",
    )
    diverge_parser.add_argument(
        "--replay",
        metavar="DIR",
        help="replay a previously written reproducer instead of running anew",
    )
    diverge_parser.add_argument(
        "--json",
        action="store_true",
        help="emit machine-readable JSON instead of text",
    )
    diverge_parser.set_defaults(func=_cmd_diverge)

    ls_parser = subparsers.add_parser("ls", help="list persisted results")
    ls_parser.set_defaults(func=_cmd_ls)

    fsck_parser = subparsers.add_parser(
        "fsck",
        help="verify every store entry and trace snapshot, quarantining corrupt files",
    )
    fsck_parser.add_argument(
        "--no-repair",
        action="store_true",
        help="report corruption without quarantining anything",
    )
    fsck_parser.add_argument(
        "--json", action="store_true", help="emit the report as JSON"
    )
    fsck_parser.set_defaults(func=_cmd_fsck)

    clear_parser = subparsers.add_parser("clear", help="empty the result store")
    clear_parser.add_argument("--yes", action="store_true", help="skip the confirmation prompt")
    clear_parser.set_defaults(func=_cmd_clear)

    serve_parser = subparsers.add_parser(
        "serve",
        help="run the evaluation service (HTTP job API over the engine)",
    )
    serve_parser.add_argument(
        "--host", default="127.0.0.1", help="bind address (default: 127.0.0.1)"
    )
    serve_parser.add_argument(
        "--port",
        type=int,
        default=8321,
        help="listen port; 0 picks an ephemeral port, printed on the ready line (default: 8321)",
    )
    serve_parser.add_argument(
        "--workers",
        type=int,
        default=2,
        metavar="N",
        help="concurrent jobs the service executes (default: 2)",
    )
    serve_parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="engine worker processes per job (default: REPRO_JOBS or CPU count)",
    )
    serve_parser.set_defaults(func=_cmd_serve)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
