"""Batched design-space sweeps: many (config, policy, workload) points.

The paper's headline results are matrices — gating policies × machine
configurations × workloads (Figures 11 and 15, the ED² tables).  This
module evaluates such a matrix as *one* batched computation instead of
one engine round-trip per point:

* one simulation (or, from a warm store, one snapshot replay with zero
  simulator steps) per distinct ``(workload, mechanism, threshold)``
  trace signature,
* one multi-config timing-kernel walk per shape group of machine
  configurations (:func:`repro.uarch.tkernel.run_compiled_many` — every
  lane bit-exact against the single-config compiled kernel and the
  reference scoreboard walk),
* one fused energy-accounting trace walk per trace, branched per
  machine configuration from shared totals
  (:meth:`repro.power.MultiPolicyEnergyAccountant.account_many`).

:class:`SweepSpec` describes the matrix (cartesian axes or an explicit
point list), :meth:`repro.experiments.engine.ExperimentEngine.sweep`
streams one :class:`SweepRow` per point, and :class:`SweepResult`
collects rows and derives the paper-style reports (per-workload Pareto
frontiers over (cycles, energy), ED² savings matrices vs the baseline
policy).  Every row is bit-identical to what the one-point-at-a-time
path (``engine.evaluate`` with the same machine config) reports for the
same point; the batching only removes redundant work, never changes the
arithmetic.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Iterable, Iterator, Mapping, Optional, Sequence

from ..hardware import gating
from ..power import MultiPolicyEnergyAccountant
from ..uarch import CacheConfig, MachineConfig, OutOfOrderModel, TimingResult
from ..uarch.ooo import _default_kernel
from ..uarch.tkernel import run_compiled_many
from ..workloads import SUITE_NAMES, Workload, workload_by_name

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from ..sim.snapshot import SimulationArtifact
    from .engine import ExperimentEngine

__all__ = [
    "SweepPoint",
    "SweepSpec",
    "SweepRow",
    "SweepResult",
    "default_sweep_configs",
]

_log = logging.getLogger(__name__)


# ----------------------------------------------------------------------
# The default machine-configuration axis
# ----------------------------------------------------------------------
def default_sweep_configs() -> tuple[tuple[str, MachineConfig], ...]:
    """Eight named machine configurations spanning the design space.

    ``table2`` is the paper's baseline machine; the others vary the axes
    the paper discusses (issue width, instruction window, cache size,
    memory latency, frontend depth).  Seven of the eight share the
    baseline cache/predictor geometry, so the multi-config timing kernel
    scores them in one batched trace walk; ``l1-16k`` changes the cache
    shape and is timed as its own (singleton) shape group — both paths
    stay exercised by default.
    """
    base = MachineConfig()
    return (
        ("table2", base),
        (
            "narrow-2",
            replace(base, fetch_width=2, decode_width=2, issue_width=2, retire_width=2),
        ),
        (
            "wide-8",
            replace(
                base,
                fetch_width=8,
                decode_width=8,
                issue_width=8,
                retire_width=8,
                int_alus=6,
                int_muls=2,
                lsq_ports=4,
            ),
        ),
        ("window-32", replace(base, max_in_flight=32)),
        ("window-128", replace(base, max_in_flight=128)),
        (
            "l1-16k",
            replace(
                base,
                icache=CacheConfig(16 * 1024, 2, 32, 1, 6),
                dcache=CacheConfig(16 * 1024, 2, 32, 1, 6),
            ),
        ),
        (
            "slow-memory",
            replace(base, memory_first_chunk_cycles=40, memory_interchunk_cycles=8),
        ),
        (
            "shallow-front",
            replace(base, frontend_depth=1, mispredict_redirect_penalty=1),
        ),
    )


# ----------------------------------------------------------------------
# Spec: the matrix of points
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SweepPoint:
    """One (workload, machine config, gating policy) cell of a sweep.

    ``config`` names an entry of the owning spec's machine-configuration
    axis; the mechanism/threshold fields select the *trace* the point is
    scored on (points sharing them share one simulation or replay).
    """

    workload: str
    config: str
    policy: str
    mechanism: str = "none"
    threshold_nj: float = 50.0
    conventional_vrp: bool = False


@dataclass(frozen=True)
class SweepSpec:
    """A design-space sweep matrix.

    Either a cartesian product of the ``workloads`` × ``configs`` ×
    ``policies`` axes (with the scalar mechanism fields applied to every
    point), or — when ``points`` is set — an explicit point list whose
    ``config`` names are resolved against the ``configs`` axis.  Use the
    :meth:`cartesian` / :meth:`explicit` builders rather than the raw
    constructor; they normalize mappings and apply the defaults (all
    suite workloads, :func:`default_sweep_configs`, every policy in
    ``gating.registry()``).
    """

    workloads: tuple[str, ...]
    configs: tuple[tuple[str, MachineConfig], ...]
    policies: tuple[str, ...]
    mechanism: str = "none"
    threshold_nj: float = 50.0
    conventional_vrp: bool = False
    points: Optional[tuple[SweepPoint, ...]] = None

    # -- construction --------------------------------------------------
    @staticmethod
    def _normalize_configs(
        configs: Optional[
            Mapping[str, MachineConfig] | Sequence[tuple[str, MachineConfig]]
        ],
    ) -> tuple[tuple[str, MachineConfig], ...]:
        if configs is None:
            return default_sweep_configs()
        if isinstance(configs, Mapping):
            items = tuple(configs.items())
        else:
            items = tuple((name, config) for name, config in configs)
        names = [name for name, _ in items]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate machine-config names in sweep axis: {names}")
        return items

    @classmethod
    def cartesian(
        cls,
        workloads: Optional[Sequence[str]] = None,
        configs: Optional[
            Mapping[str, MachineConfig] | Sequence[tuple[str, MachineConfig]]
        ] = None,
        policies: Optional[Sequence[str]] = None,
        mechanism: str = "none",
        threshold_nj: float = 50.0,
        conventional_vrp: bool = False,
    ) -> "SweepSpec":
        """The full cross product of the three axes (the common case)."""
        return cls(
            workloads=tuple(workloads) if workloads is not None else SUITE_NAMES,
            configs=cls._normalize_configs(configs),
            policies=(
                tuple(policies) if policies is not None else tuple(gating.registry())
            ),
            mechanism=mechanism,
            threshold_nj=threshold_nj,
            conventional_vrp=conventional_vrp,
        )

    @classmethod
    def explicit(
        cls,
        points: Iterable[SweepPoint],
        configs: Optional[
            Mapping[str, MachineConfig] | Sequence[tuple[str, MachineConfig]]
        ] = None,
    ) -> "SweepSpec":
        """An explicit point list (e.g. a Pareto refinement, a figure row)."""
        point_tuple = tuple(points)
        return cls(
            workloads=(),
            configs=cls._normalize_configs(configs),
            policies=(),
            points=point_tuple,
        )

    # -- resolution ----------------------------------------------------
    def config_map(self) -> dict[str, MachineConfig]:
        """Machine configurations of the sweep axis, by name."""
        return dict(self.configs)

    def iter_points(self) -> Iterator[SweepPoint]:
        """Every point of the matrix, in deterministic workload-major order.

        Workload-major ordering means a streaming consumer sees all rows
        of one trace signature together — each workload is resolved
        (replayed or simulated) exactly once, then fully scored.
        """
        if self.points is not None:
            yield from self.points
            return
        for workload in self.workloads:
            for config_name, _ in self.configs:
                for policy in self.policies:
                    yield SweepPoint(
                        workload=workload,
                        config=config_name,
                        policy=policy,
                        mechanism=self.mechanism,
                        threshold_nj=self.threshold_nj,
                        conventional_vrp=self.conventional_vrp,
                    )

    def __len__(self) -> int:
        if self.points is not None:
            return len(self.points)
        return len(self.workloads) * len(self.configs) * len(self.policies)


# ----------------------------------------------------------------------
# Rows and collected results
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SweepRow:
    """One scored sweep point.

    ``source`` records trace provenance: ``"replayed"`` (rebuilt from a
    stored binary snapshot, zero simulator steps), ``"computed"`` (this
    sweep ran the materialized simulator and warmed the store),
    ``"fused"`` (this sweep ran the streaming fused pipeline — no trace
    was ever built, so nothing could be snapshotted) or ``"error"`` (the
    point's trace-signature group failed; the numeric fields are
    zero-filled and ``error`` names the classified failure).  The three
    healthy sources score bit-identically.
    """

    workload: str
    config: str
    policy: str
    mechanism: str
    threshold_nj: float
    conventional_vrp: bool
    cycles: int
    instructions: int
    energy_nj: float
    ed2: float
    source: str
    error: Optional[str] = None

    @property
    def failed(self) -> bool:
        return self.error is not None

    def to_json_dict(self) -> dict:
        return {
            "workload": self.workload,
            "config": self.config,
            "policy": self.policy,
            "mechanism": self.mechanism,
            "threshold_nj": self.threshold_nj,
            "conventional_vrp": self.conventional_vrp,
            "cycles": self.cycles,
            "instructions": self.instructions,
            "energy_nj": self.energy_nj,
            "ed2": self.ed2,
            "source": self.source,
            "error": self.error,
        }


@dataclass
class SweepResult:
    """Collected sweep rows plus the paper-style derived reports."""

    rows: list[SweepRow]
    seconds: Optional[float] = None

    @classmethod
    def collect(
        cls, rows: Iterable[SweepRow], seconds: Optional[float] = None
    ) -> "SweepResult":
        return cls(rows=list(rows), seconds=seconds)

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[SweepRow]:
        return iter(self.rows)

    # -- lookup --------------------------------------------------------
    def row(self, workload: str, config: str, policy: str) -> SweepRow:
        """The (unique) row at one matrix cell."""
        for candidate in self.rows:
            if (
                candidate.workload == workload
                and candidate.config == config
                and candidate.policy == policy
            ):
                return candidate
        raise KeyError(f"no sweep row for ({workload!r}, {config!r}, {policy!r})")

    @property
    def workloads(self) -> tuple[str, ...]:
        seen: dict[str, None] = {}
        for row in self.rows:
            seen.setdefault(row.workload)
        return tuple(seen)

    @property
    def failures(self) -> list[SweepRow]:
        """Error-carrying rows (``on_error="keep"`` degradation)."""
        return [row for row in self.rows if row.failed]

    @property
    def simulations(self) -> int:
        """Distinct trace signatures this sweep had to simulate cold.

        Counts both materialized (``"computed"``) and streaming
        (``"fused"``) cold runs; only snapshot replays are free.
        """
        signatures = {
            (row.workload, row.mechanism, row.threshold_nj, row.conventional_vrp)
            for row in self.rows
            if row.source in ("computed", "fused")
        }
        return len(signatures)

    # -- reports -------------------------------------------------------
    def ed2_savings(
        self, baseline_policy: str = "baseline", baseline_config: Optional[str] = None
    ) -> dict[tuple[str, str], dict[str, float]]:
        """ED² savings per (config, policy), per workload — the Figure 11/15 view.

        Each cell is ``1 - ED²(point) / ED²(baseline)`` where the
        baseline is the ``baseline_policy`` row of the *same* workload —
        under the same machine config by default, or under a fixed
        ``baseline_config`` to additionally charge/credit the machine
        change itself.  (Energy×delay² is the paper's figure of merit:
        §6, Figures 11 and 15.)
        """
        baselines: dict[tuple[str, str], float] = {}
        for row in self.rows:
            if row.policy == baseline_policy and not row.failed:
                baselines[(row.workload, row.config)] = row.ed2
        savings: dict[tuple[str, str], dict[str, float]] = {}
        for row in self.rows:
            if row.failed:  # error rows carry no arithmetic
                continue
            reference_config = baseline_config if baseline_config is not None else row.config
            base = baselines.get((row.workload, reference_config))
            if base is None:
                raise KeyError(
                    f"sweep has no {baseline_policy!r} row for workload "
                    f"{row.workload!r} under config {reference_config!r}; "
                    "include the baseline policy in the sweep to report savings"
                )
            cell = savings.setdefault((row.config, row.policy), {})
            cell[row.workload] = 1.0 - (row.ed2 / base if base > 0.0 else 0.0)
        return savings

    def pareto_frontier(self, workload: Optional[str] = None) -> list[SweepRow]:
        """Rows not dominated in (cycles, energy) — lower is better in both.

        With ``workload`` given, the frontier over that workload's rows;
        otherwise frontiers are computed per workload and concatenated
        (points of different workloads are never comparable).  Dominance
        is weak-with-a-strict-side: a row falls iff some other row of the
        same workload is no worse on both axes and strictly better on
        one.  Output preserves row order.
        """
        if workload is None:
            frontier: list[SweepRow] = []
            for name in self.workloads:
                frontier.extend(self.pareto_frontier(name))
            return frontier
        rows = [row for row in self.rows if row.workload == workload and not row.failed]
        frontier = []
        for row in rows:
            dominated = any(
                other.cycles <= row.cycles
                and other.energy_nj <= row.energy_nj
                and (other.cycles < row.cycles or other.energy_nj < row.energy_nj)
                for other in rows
            )
            if not dominated:
                frontier.append(row)
        return frontier

    def to_json_dict(self) -> dict:
        return {
            "rows": [row.to_json_dict() for row in self.rows],
            "seconds": self.seconds,
            "simulations": self.simulations,
        }


# ----------------------------------------------------------------------
# Execution (driven by ExperimentEngine.sweep)
# ----------------------------------------------------------------------
def _sweep_timings(
    trace, configs: Sequence[MachineConfig]
) -> list[TimingResult]:
    """Batched timing of one trace under many configs.

    Routes through the multi-config compiled kernel unless the process
    pinned ``REPRO_TIMING_KERNEL=reference``, in which case every config
    runs the reference scoreboard walk — the tiers are bit-identical, so
    the choice never changes a row.
    """
    if _default_kernel() == "reference":
        return [OutOfOrderModel(config).run_reference(trace) for config in configs]
    return run_compiled_many(trace, list(configs))


def _load_snapshot_artifact(
    engine: "ExperimentEngine",
    workload: Workload,
    mechanism: str,
    threshold_nj: float,
    conventional_vrp: bool,
) -> Optional["SimulationArtifact"]:
    """The stored binary snapshot for one trace signature, if warm."""
    from .engine import ExperimentConfig, _snapshot_key

    store = engine.store
    if not store.trace_enabled:
        return None
    config = ExperimentConfig(
        workload=workload.name,
        mechanism=mechanism,
        threshold_nj=threshold_nj,
        conventional_vrp=conventional_vrp,
    )
    return store.load_trace(_snapshot_key(config, workload))


def _compute_artifact(
    engine: "ExperimentEngine",
    workload: Workload,
    mechanism: str,
    threshold_nj: float,
    conventional_vrp: bool,
) -> "SimulationArtifact":
    """Cold materialized simulation for one trace signature.

    Persists both the summary and the binary snapshot (exactly like
    ``engine.evaluate`` would), so the next sweep over the same signature
    is a zero-simulation replay.
    """
    from .engine import ExperimentConfig, _save_snapshot
    from .runner import _compute_evaluation, artifact_from_evaluation

    config = ExperimentConfig(
        workload=workload.name,
        mechanism=mechanism,
        threshold_nj=threshold_nj,
        conventional_vrp=conventional_vrp,
    )
    store = engine.store
    evaluation = _compute_evaluation(
        workload,
        mechanism=mechanism,
        threshold_nj=threshold_nj,
        conventional_vrp=conventional_vrp,
    )
    if store.enabled:
        store.save(engine.key_for(config, workload), evaluation.summarize())
        _save_snapshot(store, config, workload, evaluation)
    return artifact_from_evaluation(evaluation)


def _score_group(
    engine: "ExperimentEngine",
    workload: Workload,
    mechanism: str,
    threshold_nj: float,
    conventional_vrp: bool,
    configs: Sequence[MachineConfig],
    policies: Mapping[str, object],
    pipeline: str,
):
    """Resolve and score one trace-signature group.

    Returns ``(source, timings, instructions, energies)`` — the shared
    per-group work that :func:`run_sweep` fans out into rows.  Isolated
    in a helper so a fault anywhere in the resolution (simulate, replay,
    time, account) is attributable to exactly one group.  ``policies``
    is pre-resolved by the caller: an unknown policy name is a spec
    error and must raise rather than degrade into error rows.
    """
    accountant = MultiPolicyEnergyAccountant(dict(policies))

    artifact = _load_snapshot_artifact(
        engine, workload, mechanism, threshold_nj, conventional_vrp
    )
    if artifact is None and (
        pipeline == "fused" or (pipeline == "auto" and len(configs) == 1)
    ):
        source = "fused"
        trace, timings, instructions = _fused_group(
            workload, mechanism, threshold_nj, conventional_vrp, configs
        )
    else:
        if artifact is not None:
            source = "replayed"
        else:
            source = "computed"
            artifact = _compute_artifact(
                engine, workload, mechanism, threshold_nj, conventional_vrp
            )
        trace = artifact.trace
        instructions = artifact.instructions
        timings = _sweep_timings(trace, configs)

    energies = accountant.account_many(trace, timings)
    return source, timings, instructions, energies


def run_sweep(
    engine: "ExperimentEngine",
    spec: SweepSpec,
    workloads: Optional[Mapping[str, Workload]] = None,
    pipeline: str = "auto",
    on_error: str = "keep",
) -> Iterator[SweepRow]:
    """Stream one :class:`SweepRow` per point of ``spec``.

    Points are grouped by trace signature ``(workload, mechanism,
    threshold, conventional_vrp)``; each group costs one trace
    resolution, one batched multi-config timing pass over the group's
    distinct machine configs, and one fused accounting walk branched per
    config — regardless of how many (config, policy) cells it scores.
    ``workloads`` optionally maps names to hand-built workload objects
    (tests, custom programs); unnamed workloads resolve through the suite
    registry.

    ``pipeline`` selects the *cold* path per group; a warm snapshot
    always replays first regardless (a replay is cheaper than any
    simulation, and bit-identical).  ``"fused"`` streams every cold
    group: one fused simulation per distinct machine config, shape
    aggregation taken from the first (shapes are config-independent),
    and nothing is persisted because no trace ever exists.
    ``"materialized"`` forces the classic simulate-then-snapshot path.
    ``"auto"`` (after consulting ``REPRO_PIPELINE``) streams cold
    *single-config* groups — where fused is a strict win — and
    materializes multi-config groups, where one simulation plus a
    batched timing walk beats one fused simulation per config.

    ``on_error`` selects the partial-failure semantics per trace-signature
    group: ``"keep"`` (the default) yields one error-carrying row
    (``source="error"``, zero-filled numbers) per affected point and
    continues to the next group, so one broken workload cannot abort a
    whole design-space sweep; ``"raise"`` propagates the classified
    failure.  Spec errors (an unknown machine-config name) always raise —
    they are caller bugs, not runtime faults.
    """
    from ..sim.fusedc import PIPELINES, default_pipeline
    from .chaos import chaos_probe
    from .resilience import classify_failure

    if pipeline == "auto":
        pipeline = default_pipeline()
    if pipeline != "auto" and pipeline not in PIPELINES:
        raise ValueError(
            f"unknown pipeline {pipeline!r}; expected one of {', '.join(PIPELINES)}"
        )
    if on_error not in ("raise", "keep"):
        raise ValueError(f"unknown on_error mode {on_error!r}; expected 'raise' or 'keep'")

    points = list(spec.iter_points())
    config_map = spec.config_map()
    groups: dict[tuple, list[int]] = {}
    for index, point in enumerate(points):
        signature = (
            point.workload,
            point.mechanism,
            point.threshold_nj,
            point.conventional_vrp,
        )
        groups.setdefault(signature, []).append(index)

    for (name, mechanism, threshold_nj, conventional_vrp), indices in groups.items():
        if workloads is not None and name in workloads:
            workload = workloads[name]
        else:
            workload = workload_by_name(name)

        config_names: list[str] = []
        policy_names: list[str] = []
        for index in indices:
            point = points[index]
            if point.config not in config_names:
                config_names.append(point.config)
            if point.policy not in policy_names:
                policy_names.append(point.policy)
        try:
            configs = [config_map[config_name] for config_name in config_names]
        except KeyError as error:
            raise KeyError(
                f"sweep point references machine config {error.args[0]!r} "
                f"which is not on the spec's config axis "
                f"({', '.join(config_map) or 'empty'})"
            ) from None

        policies = {policy_name: gating.get(policy_name) for policy_name in policy_names}
        try:
            chaos_probe("sweep-group")
            source, timings, instructions, energies = _score_group(
                engine,
                workload,
                mechanism,
                threshold_nj,
                conventional_vrp,
                configs,
                policies,
                pipeline,
            )
        except Exception as exc:
            failure = classify_failure(exc)
            if on_error == "raise":
                raise failure from exc
            _log.warning(
                "sweep group (%s/%s/%g/%s) failed, yielding %d error row(s): %s",
                name,
                mechanism,
                threshold_nj,
                conventional_vrp,
                len(indices),
                failure.describe(),
            )
            for index in indices:
                point = points[index]
                yield SweepRow(
                    workload=point.workload,
                    config=point.config,
                    policy=point.policy,
                    mechanism=point.mechanism,
                    threshold_nj=point.threshold_nj,
                    conventional_vrp=point.conventional_vrp,
                    cycles=0,
                    instructions=0,
                    energy_nj=0.0,
                    ed2=0.0,
                    source="error",
                    error=failure.describe(),
                )
            continue

        position = {config_name: i for i, config_name in enumerate(config_names)}

        for index in indices:
            point = points[index]
            at = position[point.config]
            breakdown = energies[at][point.policy]
            yield SweepRow(
                workload=point.workload,
                config=point.config,
                policy=point.policy,
                mechanism=point.mechanism,
                threshold_nj=point.threshold_nj,
                conventional_vrp=point.conventional_vrp,
                cycles=timings[at].cycles,
                instructions=instructions,
                energy_nj=breakdown.total,
                ed2=breakdown.energy_delay_squared(),
                source=source,
            )


def _fused_group(
    workload: Workload,
    mechanism: str,
    threshold_nj: float,
    conventional_vrp: bool,
    configs: Sequence[MachineConfig],
):
    """Score one cold trace-signature group through the fused pipeline.

    One fused simulation per machine config — no trace is ever
    materialized, so memory stays flat in the instruction count.  The
    shape aggregate is config-independent (widths come from the
    architectural execution, not the timing model), so the first run's
    aggregate stands in for the trace in the shared accounting walk.
    Nothing is persisted: there is no trace to snapshot, and a fused
    summary under a *sweep* key would alias the default machine config.
    """
    from ..sim.machine import Machine
    from .runner import _compute_evaluation

    evaluation = _compute_evaluation(
        workload,
        mechanism=mechanism,
        threshold_nj=threshold_nj,
        conventional_vrp=conventional_vrp,
        machine_config=configs[0],
        pipeline="fused",
    )
    timings = [evaluation.timing]
    if len(configs) > 1:
        machine = Machine(evaluation.program)
        for config in configs[1:]:
            outcome = machine.run(pipeline="fused", machine_config=config)
            timings.append(outcome.fused.timing)
    return evaluation.trace, timings, evaluation.run.instructions
