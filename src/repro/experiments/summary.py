"""Serializable summaries of one workload evaluation.

The persistent result store (:mod:`repro.experiments.store`) keeps the
*outcomes* of a simulation — timing, per-policy energy breakdowns, dynamic
width/size/operation distributions and the VRP/VRS statistics the figure
functions consume — but never the raw trace, which is three orders of
magnitude larger and cheap to regenerate when genuinely needed.  This module
defines that summary record plus the trace-aggregation helpers shared by the
live path (fresh simulation) and the figure modules.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import TYPE_CHECKING, Optional

from ..isa import OpKind, Width
from ..isa.opcodes import OPERATION_TYPE
from ..power import EnergyBreakdown
from ..uarch import TimingResult

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from ..core.vrp import VRPResult
    from ..core.vrs import VRSResult
    from ..ir import Program
    from ..sim import RunResult, Trace

__all__ = [
    "COUNTED_KINDS",
    "EvaluationSummary",
    "SUMMARY_FORMAT_VERSION",
    "aggregate_trace",
    "counted_width_counts",
    "operation_type_width_counts",
    "restore_vrp_stat_keys",
    "result_size_histogram",
    "runtime_specialization_fractions",
    "vrp_stats",
    "vrs_stats",
]

#: Bump when the summary schema changes; stored entries with another format
#: version are treated as misses.
SUMMARY_FORMAT_VERSION = 1

#: Instruction kinds counted in the width distributions: the paper's
#: technique applies to integer computation, not to control flow.
COUNTED_KINDS = frozenset(
    {
        OpKind.ALU,
        OpKind.MUL,
        OpKind.LOGICAL,
        OpKind.SHIFT,
        OpKind.COMPARE,
        OpKind.CMOV,
        OpKind.MASK,
        OpKind.EXTEND,
        OpKind.MOVE,
        OpKind.LOAD,
        OpKind.STORE,
    }
)


# ----------------------------------------------------------------------
# Trace aggregation helpers
# ----------------------------------------------------------------------
def aggregate_trace(
    trace: "Trace",
) -> tuple[dict[Width, int], dict[Width, int], dict[int, int], dict[str, dict[Width, int]]]:
    """All four dynamic distributions, computed columnarly.

    Returns ``(width_distribution, counted_width_counts,
    result_size_histogram, operation_type_width_counts)`` — semantically
    identical to the old fused record walk, but derived entirely from the
    trace's two cached aggregations: the three width distributions are
    static facts scaled by the per-uid dynamic counts
    (:meth:`~repro.sim.trace.Trace.uid_counts`), and the result-size
    histogram is the result-sig marginal of the accounting shapes
    (:meth:`~repro.sim.trace.Trace.shape_counts` — already cached whenever
    the energy accountant has run).  No per-record walk happens here.
    """
    width_distribution: dict[Width, int] = {w: 0 for w in Width.all_widths()}
    counted: dict[Width, int] = {w: 0 for w in Width.all_widths()}
    sizes = {size: 0 for size in range(1, 9)}
    per_type: dict[str, dict[Width, int]] = {}
    static = trace.static

    # Result sizes first: a shape's result sig *is* significant_bytes of
    # the record's result, so the histogram is an exact integer marginal.
    # (Computing shapes first also lets uid_counts derive from them.)
    for (_, _, rsig), count in trace.shape_counts().items():
        if rsig >= 0:
            sizes[rsig] += count

    for uid, count in trace.uid_counts().items():
        entry = static[uid]
        kind = entry.kind
        width = entry.memory_width if entry.memory_width is not None else entry.width
        width_distribution[width] += count
        if kind in COUNTED_KINDS:
            counted[width] += count
            if kind not in (OpKind.LOAD, OpKind.STORE, OpKind.MOVE):
                op_type = OPERATION_TYPE[entry.opcode]
                widths = per_type.setdefault(op_type, {w: 0 for w in Width.all_widths()})
                widths[entry.width] += count
    return width_distribution, counted, sizes, per_type


def counted_width_counts(trace: "Trace") -> dict[Width, int]:
    """Dynamic width counts restricted to :data:`COUNTED_KINDS`.

    Derived from :func:`aggregate_trace` so the counting semantics cannot
    drift between the live accessors and the persisted summaries.
    """
    return aggregate_trace(trace)[1]


def result_size_histogram(trace: "Trace") -> dict[int, int]:
    """Histogram of result-value sizes in significant bytes (Figure 12)."""
    return aggregate_trace(trace)[2]


def operation_type_width_counts(trace: "Trace") -> dict[str, dict[Width, int]]:
    """Dynamic per-operation-type width counts (Table 3).

    Loads, stores and moves are excluded: the table lists computation
    classes only.
    """
    return aggregate_trace(trace)[3]


def runtime_specialization_fractions(
    program: "Program", run: "RunResult", vrs_result: "VRSResult"
) -> dict[str, float]:
    """Fraction of executed instructions that are specialized code / guards
    (Figure 6)."""
    guard_uids = vrs_result.guard_uids
    counts = run.instruction_counts(program)
    total = sum(counts.values()) or 1
    specialized = 0
    guards = 0
    for inst in program.instructions():
        count = counts.get(inst.uid, 0)
        if count == 0:
            continue
        if inst.uid in guard_uids or inst.is_guard:
            guards += count
        elif inst.origin is not None:
            specialized += count
    return {
        "specialized_instructions": specialized / total,
        "specialization_comparisons": guards / total,
    }


def restore_vrp_stat_keys(vrp: Optional[dict]) -> Optional[dict]:
    """Rebuild the int bit-count keys of persisted VRP statistics.

    JSON stringifies the ``static_width_distribution`` keys; every path
    that rehydrates stored VRP stats (summary round trips, trace-snapshot
    replays) must restore them identically so live, restored and replayed
    ``vrp_statistics()`` are observationally the same.
    """
    if vrp is None or "static_width_distribution" not in vrp:
        return vrp
    return dict(
        vrp,
        static_width_distribution={
            int(bits): count for bits, count in vrp["static_width_distribution"].items()
        },
    )


def vrp_stats(vrp_result: "VRPResult") -> dict[str, object]:
    """The VRP statistics worth keeping once the result object is gone."""
    return {
        "narrowed_instructions": vrp_result.narrowed_instructions(),
        "static_width_distribution": {
            int(width): count for width, count in vrp_result.static_width_distribution().items()
        },
        "analysis_seconds": vrp_result.analysis_seconds,
        "global_rounds": vrp_result.global_rounds,
    }


def vrs_stats(vrs_result: "VRSResult") -> dict[str, object]:
    """The VRS statistics consumed by Figures 4 and 5."""
    return {
        "points_profiled": vrs_result.points_profiled,
        "points_specialized": vrs_result.points_specialized,
        "points_dependent": vrs_result.points_dependent,
        "points_no_benefit": vrs_result.points_no_benefit,
        "static_specialized_instructions": vrs_result.static_specialized_instructions,
        "static_eliminated_instructions": vrs_result.static_eliminated_instructions,
    }


# ----------------------------------------------------------------------
# The summary record
# ----------------------------------------------------------------------
@dataclass
class EvaluationSummary:
    """Everything the figure/table experiments need from one configuration.

    All fields survive a JSON round trip; :class:`Width` keys are encoded as
    their bit counts.
    """

    workload: str
    mechanism: str
    threshold_nj: float
    conventional_vrp: bool
    instructions: int
    output: list[int]
    timing: TimingResult
    energies: dict[str, EnergyBreakdown]
    width_distribution: dict[Width, int]
    counted_widths: dict[Width, int]
    result_sizes: dict[int, int]
    operation_types: dict[str, dict[Width, int]]
    vrp: Optional[dict] = None
    vrs: Optional[dict] = None
    runtime_specialization: Optional[dict] = None
    format_version: int = SUMMARY_FORMAT_VERSION
    extra: dict = field(default_factory=dict)
    #: Partial-failure record (``{"kind": ..., "message": ...}``) for an
    #: evaluation that could not complete — see ``docs/resilience.md``.
    #: ``None`` on every successful evaluation; added via ``data.get`` so
    #: existing stored entries keep their format version.
    failure: Optional[dict] = None

    @property
    def failed(self) -> bool:
        """True when this summary records a failed evaluation."""
        return self.failure is not None

    @classmethod
    def from_failure(
        cls,
        workload: str,
        mechanism: str,
        threshold_nj: float,
        conventional_vrp: bool,
        kind: str,
        message: str,
    ) -> "EvaluationSummary":
        """An error-carrying summary for a point that could not be evaluated.

        Timing/energy/distribution fields are zero-filled placeholders; the
        truth lives in ``failure`` (``kind`` names the
        :class:`~repro.experiments.resilience.EvaluationError` class).
        Failed summaries are never persisted to the result store — they
        exist so ``map(on_error="keep")`` and sweeps can degrade
        gracefully instead of aborting.
        """
        zero_timing = TimingResult(
            cycles=0,
            instructions=0,
            branch_lookups=0,
            branch_mispredictions=0,
            icache_accesses=0,
            icache_misses=0,
            dcache_accesses=0,
            dcache_misses=0,
            l2_accesses=0,
            l2_misses=0,
            loads=0,
            stores=0,
        )
        return cls(
            workload=workload,
            mechanism=mechanism,
            threshold_nj=threshold_nj,
            conventional_vrp=conventional_vrp,
            instructions=0,
            output=[],
            timing=zero_timing,
            energies={},
            width_distribution={w: 0 for w in Width.all_widths()},
            counted_widths={w: 0 for w in Width.all_widths()},
            result_sizes={size: 0 for size in range(1, 9)},
            operation_types={},
            failure={"kind": kind, "message": message},
        )

    # ------------------------------------------------------------------
    # JSON round trip
    # ------------------------------------------------------------------
    def to_json_dict(self) -> dict:
        return {
            "format_version": self.format_version,
            "workload": self.workload,
            "mechanism": self.mechanism,
            "threshold_nj": self.threshold_nj,
            "conventional_vrp": self.conventional_vrp,
            "instructions": self.instructions,
            "output": list(self.output),
            "timing": asdict(self.timing),
            "energies": {name: asdict(breakdown) for name, breakdown in self.energies.items()},
            "width_distribution": {int(w): c for w, c in self.width_distribution.items()},
            "counted_widths": {int(w): c for w, c in self.counted_widths.items()},
            "result_sizes": {int(size): c for size, c in self.result_sizes.items()},
            "operation_types": {
                op_type: {int(w): c for w, c in widths.items()}
                for op_type, widths in self.operation_types.items()
            },
            "vrp": self.vrp,
            "vrs": self.vrs,
            "runtime_specialization": self.runtime_specialization,
            "extra": self.extra,
            "failure": self.failure,
        }

    @classmethod
    def from_json_dict(cls, data: dict) -> "EvaluationSummary":
        if data["format_version"] != SUMMARY_FORMAT_VERSION:
            raise ValueError(
                f"summary format {data['format_version']!r} != {SUMMARY_FORMAT_VERSION}"
            )
        vrp = restore_vrp_stat_keys(data.get("vrp"))
        return cls(
            workload=data["workload"],
            mechanism=data["mechanism"],
            threshold_nj=data["threshold_nj"],
            conventional_vrp=data["conventional_vrp"],
            instructions=data["instructions"],
            output=list(data["output"]),
            timing=TimingResult(**data["timing"]),
            energies={
                name: EnergyBreakdown(**breakdown) for name, breakdown in data["energies"].items()
            },
            width_distribution=_width_keys(data["width_distribution"]),
            counted_widths=_width_keys(data["counted_widths"]),
            result_sizes={int(size): count for size, count in data["result_sizes"].items()},
            operation_types={
                op_type: _width_keys(widths) for op_type, widths in data["operation_types"].items()
            },
            vrp=vrp,
            vrs=data.get("vrs"),
            runtime_specialization=data.get("runtime_specialization"),
            format_version=data["format_version"],
            extra=data.get("extra", {}),
            failure=data.get("failure"),
        )


def _width_keys(mapping: dict) -> dict[Width, int]:
    """Rebuild ``Width`` keys from their JSON encoding (bit counts)."""
    return {Width(int(bits)): count for bits, count in mapping.items()}
