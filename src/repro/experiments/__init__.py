"""Experiment harness: the engine session API plus one function per paper artefact.

The blessed programmatic surface is the :class:`ExperimentEngine` session
API on :func:`default_engine`:

* ``engine.evaluate(point)`` — resolve one :class:`ExperimentConfig`
  through memo → store → snapshot replay → compute,
* ``engine.map(points)`` / ``engine.map_suite(...)`` — many points, in
  parallel where possible,
* ``engine.sweep(spec)`` — a batched design-space matrix
  (:class:`SweepSpec` → streamed :class:`SweepRow` rows; see
  ``docs/sweeps.md``),
* ``engine.compute(point)`` — the uncached live pipeline (trace attached).

Evaluation is fault tolerant (see ``docs/resilience.md``): the pool
fan-out runs under :func:`supervised_map` with retries and staged
degradation, ``on_error="keep"`` turns per-point failures into
error-carrying summaries/rows instead of aborted sweeps,
:meth:`ResultStore.fsck` verifies and quarantines corrupt store files,
and the :mod:`~repro.experiments.chaos` harness injects deterministic
faults for testing (``REPRO_CHAOS``).

The legacy free functions (``evaluate_program``, ``evaluate_workload``,
``evaluate_suite``, ``compute_evaluation``) are deprecated shims over the
default engine, kept for compatibility.

| Paper artefact | Function |
|---|---|
| Table 1   | :func:`table1_alu_energy_matrix` |
| Table 3   | :func:`table3_operation_distribution` |
| Figure 2  | :func:`figure02_vrp_width_distribution` |
| Figure 3  | :func:`figure03_vrp_energy_by_structure` |
| Figure 4  | :func:`figure04_profiled_point_distribution` |
| Figure 5  | :func:`figure05_static_specialized_instructions` |
| Figure 6  | :func:`figure06_runtime_specialized_instructions` |
| Figure 7  | :func:`figure07_width_by_mechanism` |
| Figure 8  | :func:`figure08_energy_savings_by_benchmark` |
| Figure 9  | :func:`figure09_energy_by_structure` |
| Figure 10 | :func:`figure10_execution_time_savings` |
| Figure 11 | :func:`figure11_ed2_savings` |
| Figure 12 | :func:`figure12_data_size_distribution` |
| Figure 13 | :func:`figure13_hardware_energy_savings` |
| Figure 14 | :func:`figure14_hardware_energy_by_structure` |
| Figure 15 | :func:`figure15_combined_ed2_savings` |
| §6 headline | :func:`headline_ed2_summary` |
| §4.1 overhead | :func:`vrp_analysis_overhead` |
"""

from .distributions import (
    dynamic_width_fractions,
    figure02_vrp_width_distribution,
    figure07_width_by_mechanism,
    figure12_data_size_distribution,
    table3_operation_distribution,
)
from .energy import (
    STRUCTURE_ORDER,
    VRS_THRESHOLDS_NJ,
    figure03_vrp_energy_by_structure,
    figure08_energy_savings_by_benchmark,
    figure09_energy_by_structure,
    figure13_hardware_energy_savings,
    figure14_hardware_energy_by_structure,
    table1_alu_energy_matrix,
)
from .chaos import ChaosInjectedError, chaos_probe, parse_chaos_spec, reset_chaos
from .engine import ExperimentConfig, ExperimentEngine, default_engine, reset_default_engine
from .report import format_percent, format_table
from .resilience import (
    CorruptEntry,
    EvaluationError,
    ResourceExhausted,
    RetryPolicy,
    SimulationFault,
    TaskTimeout,
    WorkerCrash,
    classify_failure,
    supervised_map,
)
from .runner import (
    POLICY_NAMES,
    SimulationOutcome,
    WorkloadEvaluation,
    clear_cache,
    compute_evaluation,
    evaluate_program,
    evaluate_suite,
    evaluate_workload,
    policy_for,
)
from .store import FsckReport, ResultStore, StoreEntry, config_key, default_store_root
from .summary import EvaluationSummary
from .sweep import (
    SweepPoint,
    SweepResult,
    SweepRow,
    SweepSpec,
    default_sweep_configs,
)
from .specialization import (
    figure04_profiled_point_distribution,
    figure05_static_specialized_instructions,
    figure06_runtime_specialized_instructions,
)
from .timing import (
    FIGURE15_CONFIGURATIONS,
    figure10_execution_time_savings,
    figure11_ed2_savings,
    figure15_combined_ed2_savings,
    headline_ed2_summary,
    vrp_analysis_overhead,
)

__all__ = [
    "dynamic_width_fractions",
    "figure02_vrp_width_distribution",
    "figure07_width_by_mechanism",
    "figure12_data_size_distribution",
    "table3_operation_distribution",
    "STRUCTURE_ORDER",
    "VRS_THRESHOLDS_NJ",
    "figure03_vrp_energy_by_structure",
    "figure08_energy_savings_by_benchmark",
    "figure09_energy_by_structure",
    "figure13_hardware_energy_savings",
    "figure14_hardware_energy_by_structure",
    "table1_alu_energy_matrix",
    "format_percent",
    "format_table",
    "ExperimentConfig",
    "ExperimentEngine",
    "default_engine",
    "reset_default_engine",
    "SweepPoint",
    "SweepResult",
    "SweepRow",
    "SweepSpec",
    "default_sweep_configs",
    "ResultStore",
    "StoreEntry",
    "FsckReport",
    "config_key",
    "default_store_root",
    "EvaluationSummary",
    "ChaosInjectedError",
    "chaos_probe",
    "parse_chaos_spec",
    "reset_chaos",
    "CorruptEntry",
    "EvaluationError",
    "ResourceExhausted",
    "RetryPolicy",
    "SimulationFault",
    "TaskTimeout",
    "WorkerCrash",
    "classify_failure",
    "supervised_map",
    "POLICY_NAMES",
    "SimulationOutcome",
    "WorkloadEvaluation",
    "clear_cache",
    "compute_evaluation",
    "evaluate_program",
    "evaluate_suite",
    "evaluate_workload",
    "policy_for",
    "figure04_profiled_point_distribution",
    "figure05_static_specialized_instructions",
    "figure06_runtime_specialized_instructions",
    "FIGURE15_CONFIGURATIONS",
    "figure10_execution_time_savings",
    "figure11_ed2_savings",
    "figure15_combined_ed2_savings",
    "headline_ed2_summary",
    "vrp_analysis_overhead",
]
