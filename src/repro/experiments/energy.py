"""Energy-savings experiments (Figures 3, 8, 9, 13 and 14, Table 1).

Savings are always reported relative to the baseline machine (no value
range mechanism, no hardware compression), matching the paper.
"""

from __future__ import annotations

from ..core import ALU_ENERGY_SAVINGS_NJ
from ..isa import Width
from ..power import STRUCTURES
from ..workloads import SUITE_NAMES
from .engine import default_engine

__all__ = [
    "VRS_THRESHOLDS_NJ",
    "STRUCTURE_ORDER",
    "table1_alu_energy_matrix",
    "figure03_vrp_energy_by_structure",
    "figure08_energy_savings_by_benchmark",
    "figure09_energy_by_structure",
    "figure13_hardware_energy_savings",
    "figure14_hardware_energy_by_structure",
]

#: The specialization-cost configurations swept by the paper (nanojoules).
VRS_THRESHOLDS_NJ = (110.0, 90.0, 70.0, 50.0, 30.0)

#: Structures in the order the paper's bar charts use.
STRUCTURE_ORDER = (
    "rename",
    "branch_predictor",
    "instruction_queue",
    "rob",
    "rename_buffers",
    "lsq",
    "register_file",
    "icache",
    "dcache_l1",
    "dcache_l2",
    "alu",
    "result_bus",
)


def table1_alu_energy_matrix() -> dict[Width, dict[Width, float]]:
    """Table 1: ALU energy savings (nJ) per source→destination width change."""
    return {dest: dict(row) for dest, row in ALU_ENERGY_SAVINGS_NJ.items()}


# ----------------------------------------------------------------------
# Software-scheme energy savings
# ----------------------------------------------------------------------
def _suite_structure_savings(
    mechanism: str, policy: str, threshold_nj: float = 50.0
) -> dict[str, float]:
    """Average per-structure savings of a configuration vs the baseline."""
    baseline = default_engine().map_suite(mechanism="none")
    configured = default_engine().map_suite(mechanism=mechanism, threshold_nj=threshold_nj)
    sums = {name: 0.0 for name in list(STRUCTURES) + ["processor"]}
    for name in SUITE_NAMES:
        base = baseline[name].outcome("baseline").energy
        other = configured[name].outcome(policy).energy
        for structure, saving in other.savings_vs(base).items():
            sums[structure] += saving
    return {structure: total / len(SUITE_NAMES) for structure, total in sums.items()}


def figure03_vrp_energy_by_structure() -> dict[str, float]:
    """Figure 3: per-structure energy savings of VRP (software gating)."""
    return _suite_structure_savings("vrp", "software")


def figure09_energy_by_structure(
    thresholds: tuple[float, ...] = VRS_THRESHOLDS_NJ,
) -> dict[str, dict[str, float]]:
    """Figure 9: per-structure savings of VRP and of VRS at each threshold."""
    results = {"vrp": _suite_structure_savings("vrp", "software")}
    for threshold in thresholds:
        results[f"vrs_{int(threshold)}nj"] = _suite_structure_savings(
            "vrs", "software", threshold_nj=threshold
        )
    return results


def figure08_energy_savings_by_benchmark(
    thresholds: tuple[float, ...] = VRS_THRESHOLDS_NJ,
) -> dict[str, dict[str, float]]:
    """Figure 8: whole-processor energy savings per benchmark.

    Returns ``{configuration: {benchmark: fractional saving, ..., "average": x}}``.
    """
    baseline = default_engine().map_suite(mechanism="none")
    results: dict[str, dict[str, float]] = {}

    def add(config_name: str, mechanism: str, threshold: float = 50.0) -> None:
        configured = default_engine().map_suite(mechanism=mechanism, threshold_nj=threshold)
        per_benchmark: dict[str, float] = {}
        for name in SUITE_NAMES:
            base = baseline[name].outcome("baseline").energy
            other = configured[name].outcome("software").energy
            per_benchmark[name] = other.savings_vs(base)["processor"]
        per_benchmark["average"] = sum(per_benchmark.values()) / len(SUITE_NAMES)
        results[config_name] = per_benchmark

    add("vrp", "vrp")
    for threshold in thresholds:
        add(f"vrs_{int(threshold)}nj", "vrs", threshold)
    return results


# ----------------------------------------------------------------------
# Hardware-scheme energy savings
# ----------------------------------------------------------------------
def figure13_hardware_energy_savings() -> dict[str, dict[str, float]]:
    """Figure 13: per-benchmark energy savings of the two hardware schemes."""
    baseline = default_engine().map_suite(mechanism="none")
    results: dict[str, dict[str, float]] = {}
    for config_name, policy in (("size_compression", "hw-size"), ("significance_compression", "hw-significance")):
        per_benchmark: dict[str, float] = {}
        for name in SUITE_NAMES:
            base = baseline[name].outcome("baseline").energy
            other = baseline[name].outcome(policy).energy
            per_benchmark[name] = other.savings_vs(base)["processor"]
        per_benchmark["average"] = sum(per_benchmark.values()) / len(SUITE_NAMES)
        results[config_name] = per_benchmark
    return results


def figure14_hardware_energy_by_structure() -> dict[str, dict[str, float]]:
    """Figure 14: per-structure energy savings of the two hardware schemes."""
    baseline = default_engine().map_suite(mechanism="none")
    results: dict[str, dict[str, float]] = {}
    for config_name, policy in (("size_compression", "hw-size"), ("significance_compression", "hw-significance")):
        sums = {name: 0.0 for name in list(STRUCTURES) + ["processor"]}
        for name in SUITE_NAMES:
            base = baseline[name].outcome("baseline").energy
            other = baseline[name].outcome(policy).energy
            for structure, saving in other.savings_vs(base).items():
                sums[structure] += saving
        results[config_name] = {
            structure: total / len(SUITE_NAMES) for structure, total in sums.items()
        }
    return results
