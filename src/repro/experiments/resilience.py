"""Supervised execution: error taxonomy, retry policy, staged degradation.

The fault-tolerance substrate under the experiment engine's process-pool
fan-out (and, for :class:`ResourceExhausted`, under the simulator's
resource budgets).  Three pieces:

* a structured :class:`EvaluationError` taxonomy that classifies every
  failure as *transient* (worth retrying: a killed worker, a corrupt
  store entry that was evicted, a task deadline) or *permanent* (a
  deterministic simulation fault, an exhausted resource budget —
  retrying would reproduce it exactly),
* :class:`RetryPolicy`: bounded retries with exponential backoff and
  *deterministic* jitter (SHA-256 over a caller token, never a PRNG —
  two runs of the same scenario back off identically),
* :func:`supervised_map`: the ``ProcessPoolExecutor`` fan-out with
  per-task deadlines, hung-worker reaping, and staged degradation —
  ``retry-task`` → ``replace-worker`` → ``fresh-pool`` → ``serial`` —
  each stage logged with a structured warning instead of the silent
  fallback it replaces.

This module deliberately imports nothing from the rest of the package
(stdlib only): the simulator raises :class:`ResourceExhausted` through a
lazy import, so no ``sim`` ↔ ``experiments`` cycle can form.
"""

from __future__ import annotations

import hashlib
import logging
import time
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

__all__ = [
    "CorruptEntry",
    "DEGRADATION_STAGES",
    "EvaluationError",
    "JobCancelled",
    "ResourceExhausted",
    "RetryPolicy",
    "SimulationFault",
    "TaskOutcome",
    "TaskTimeout",
    "WorkerCrash",
    "classify_failure",
    "supervised_map",
]

_log = logging.getLogger(__name__)

#: Degradation stages of :func:`supervised_map`, in escalation order.
DEGRADATION_STAGES = ("retry-task", "replace-worker", "fresh-pool", "serial")


# ----------------------------------------------------------------------
# Failure taxonomy
# ----------------------------------------------------------------------
class EvaluationError(Exception):
    """Base of the structured failure taxonomy.

    ``transient`` says whether retrying the same task can succeed:
    a crashed worker or an evicted corrupt entry can, a deterministic
    simulation fault or an exhausted resource budget cannot.
    """

    transient = False

    @property
    def kind(self) -> str:
        return type(self).__name__

    def describe(self) -> str:
        return f"{self.kind}: {self}"


class WorkerCrash(EvaluationError):
    """A worker process died abruptly (OOM kill, segfault, SIGKILL)."""

    transient = True


class TaskTimeout(EvaluationError):
    """A task exceeded its deadline and its worker was reaped."""

    transient = True


class ResourceExhausted(EvaluationError):
    """A resource budget (wall time, instructions, arena bytes) was hit.

    Permanent: the simulation is deterministic, so a retry burns the
    same budget to the same cliff.  Raised by ``Machine.run`` when
    budgets are configured (see ``docs/resilience.md``).
    """

    transient = False


class CorruptEntry(EvaluationError):
    """A store entry or snapshot failed verification and was quarantined.

    Transient: the corrupt bytes are out of the way, so recomputing (and
    re-persisting) the entry succeeds.
    """

    transient = True


class SimulationFault(EvaluationError):
    """The simulated program itself failed (illegal op, bad address, limit).

    Permanent: deterministic programs fail deterministically.
    """

    transient = False


class JobCancelled(EvaluationError):
    """The owning job was cancelled before its evaluation finished.

    Raised by the evaluation service when a queued job is abandoned at
    shutdown (a *hard* stop — a plain SIGTERM drains instead).  Permanent
    by definition: the cancellation was a decision, not a fault, so
    retrying inside the same run would un-cancel it.
    """

    transient = False


def classify_failure(error: BaseException) -> EvaluationError:
    """Wrap an arbitrary exception into the taxonomy (idempotent).

    Pool-infrastructure failures become :class:`WorkerCrash`; simulator
    errors become :class:`SimulationFault`; anything unrecognized is a
    permanent :class:`SimulationFault` too — guessing "transient" for an
    unknown failure turns one bug into ``max_attempts`` bugs.
    """
    if isinstance(error, EvaluationError):
        return error
    name = type(error).__name__
    if name in ("BrokenProcessPool", "BrokenExecutor") or isinstance(
        error, (EOFError, BrokenPipeError, ConnectionError)
    ):
        wrapped: EvaluationError = WorkerCrash(f"{name}: {error}")
    elif name == "SimulationLimitExceeded":
        wrapped = ResourceExhausted(f"{name}: {error}")
    elif isinstance(error, (TimeoutError, OSError)):
        wrapped = WorkerCrash(f"{name}: {error}")
    elif name == "ChaosInjectedError":
        wrapped = WorkerCrash(f"{name}: {error}")
    else:
        wrapped = SimulationFault(f"{name}: {error}")
    wrapped.__cause__ = error
    return wrapped


# ----------------------------------------------------------------------
# Retry policy
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff with deterministic jitter.

    ``delay_for(attempt, token)`` grows ``base_delay_s * 2**attempt``
    capped at ``max_delay_s``, then spreads it by up to ``jitter``
    (fractional) using a SHA-256 hash of ``(token, attempt)`` — fully
    deterministic for a given token, so chaos tests replay the exact
    schedule while distinct tasks still de-synchronize.
    """

    max_attempts: int = 3
    base_delay_s: float = 0.05
    max_delay_s: float = 2.0
    jitter: float = 0.25

    def delay_for(self, attempt: int, token: str = "") -> float:
        delay = min(self.base_delay_s * (2.0 ** max(0, attempt - 1)), self.max_delay_s)
        if self.jitter > 0.0:
            digest = hashlib.sha256(f"{token}:{attempt}".encode()).digest()
            unit = int.from_bytes(digest[:8], "big") / float(1 << 64)
            delay *= 1.0 + self.jitter * (2.0 * unit - 1.0)
        return max(0.0, delay)

    def should_retry(self, attempt: int, error: EvaluationError) -> bool:
        """True when ``error`` is transient and attempts remain."""
        return error.transient and attempt < self.max_attempts

    def sleep(self, attempt: int, token: str = "") -> float:
        delay = self.delay_for(attempt, token)
        if delay > 0.0:
            time.sleep(delay)
        return delay


# ----------------------------------------------------------------------
# Supervised fan-out
# ----------------------------------------------------------------------
@dataclass
class TaskOutcome:
    """Terminal state of one supervised task."""

    index: int
    value: object = None
    error: Optional[EvaluationError] = None
    attempts: int = 1
    stage: str = "pool"  # where the terminal attempt ran: "pool" | "serial"

    @property
    def ok(self) -> bool:
        return self.error is None


@dataclass
class _Pending:
    index: int
    attempts: int = 0
    started: float = field(default_factory=time.monotonic)


def _kill_pool_processes(executor) -> None:
    """SIGKILL every worker of ``executor`` (hung-worker reaping).

    The resulting ``BrokenProcessPool`` is the *intended* signal: the
    supervisor catches it and escalates one degradation stage.
    """
    import os
    import signal

    processes = getattr(executor, "_processes", None) or {}
    for process in list(processes.values()):
        try:
            os.kill(process.pid, signal.SIGKILL)
        except (OSError, AttributeError):
            pass


def supervised_map(
    fn: Callable,
    tasks: Sequence[tuple],
    worker_count: int,
    *,
    task_timeout_s: Optional[float] = None,
    retry: Optional[RetryPolicy] = None,
    max_pool_failures: int = 2,
    on_result: Optional[Callable[[int, object], None]] = None,
    logger: Optional[logging.Logger] = None,
) -> list[TaskOutcome]:
    """Run ``fn(*task)`` for every task under supervision.

    Per-task deadlines (``task_timeout_s``: if no task completes within
    the window and some are running, their workers are reaped), bounded
    retries for transient failures (``retry``), and staged degradation:
    the first pool collapse is answered by rebuilding the pool
    (``replace-worker``), the second by a fresh pool (``fresh-pool``),
    the third by finishing in-process (``serial``).  Every escalation is
    logged as a structured warning.  ``on_result`` runs in the parent on
    each success *in arrival order* (persist-as-they-arrive semantics).

    Permanent failures never raise from here: each lands in its task's
    :class:`TaskOutcome.error` and the caller decides whether to raise or
    degrade gracefully.  Returns one outcome per task, in task order.

    Raises :class:`OSError`/:class:`RuntimeError` subclasses only if the
    *initial* pool cannot even be created; callers treat that exactly
    like the final ``serial`` stage.
    """
    log = logger if logger is not None else _log
    policy = retry if retry is not None else RetryPolicy()
    outcomes: list[Optional[TaskOutcome]] = [None] * len(tasks)

    def run_serial(indices: Sequence[int], attempts: dict[int, int]) -> None:
        for index in indices:
            attempt = attempts.get(index, 0) + 1
            try:
                value = fn(*tasks[index])
            except BaseException as error:  # noqa: BLE001 - classified below
                outcomes[index] = TaskOutcome(
                    index=index,
                    error=classify_failure(error),
                    attempts=attempt,
                    stage="serial",
                )
                continue
            if on_result is not None:
                on_result(index, value)
            outcomes[index] = TaskOutcome(
                index=index, value=value, attempts=attempt, stage="serial"
            )

    if worker_count <= 1 or len(tasks) <= 1:
        run_serial(range(len(tasks)), {})
        return [outcome for outcome in outcomes if outcome is not None]

    import multiprocessing
    from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
    from concurrent.futures.process import BrokenProcessPool

    def make_pool() -> ProcessPoolExecutor:
        context = multiprocessing.get_context(
            "fork" if "fork" in multiprocessing.get_all_start_methods() else None
        )
        return ProcessPoolExecutor(max_workers=worker_count, mp_context=context)

    executor = make_pool()  # initial creation failure propagates (see docstring)
    attempts: dict[int, int] = {}
    unfinished: set[int] = set(range(len(tasks)))
    pool_failures = 0

    def submit_all(indices) -> dict:
        futures = {}
        for index in indices:
            attempts[index] = attempts.get(index, 0) + 1
            futures[executor.submit(fn, *tasks[index])] = _Pending(
                index=index, attempts=attempts[index]
            )
        return futures

    futures = submit_all(sorted(unfinished))
    try:
        while futures:
            done, _ = wait(
                set(futures), timeout=task_timeout_s, return_when=FIRST_COMPLETED
            )
            if not done:
                # Deadline: nothing finished inside the window.  Reap the
                # pool — SIGKILL models the hung/hogging worker being torn
                # down — and let the BrokenProcessPool surface below on
                # the next result fetch.
                running = sorted(
                    pending.index
                    for future, pending in futures.items()
                    if future.running()
                )
                log.warning(
                    "supervised map: no task completed within %.1fs deadline; "
                    "reaping worker(s) running task(s) %s",
                    task_timeout_s,
                    running or "unknown",
                )
                for index in running:
                    # A reaped task consumed an attempt; charge a timeout
                    # if its budget is gone so it does not retry forever.
                    if attempts.get(index, 0) >= policy.max_attempts:
                        outcomes[index] = TaskOutcome(
                            index=index,
                            error=TaskTimeout(
                                f"task {index} exceeded its {task_timeout_s:.1f}s deadline "
                                f"{attempts[index]} time(s)"
                            ),
                            attempts=attempts[index],
                        )
                        unfinished.discard(index)
                _kill_pool_processes(executor)
                done, _ = wait(set(futures), timeout=30.0, return_when=FIRST_COMPLETED)
                if not done:
                    raise BrokenProcessPool("reaped workers did not surface")
            retry_later: list[int] = []
            try:
                for future in done:
                    pending = futures.pop(future)
                    index = pending.index
                    if outcomes[index] is not None:  # already charged a timeout
                        continue
                    try:
                        value = future.result()
                    except BrokenProcessPool:
                        raise
                    except BaseException as error:  # noqa: BLE001 - classified
                        failure = classify_failure(error)
                        if policy.should_retry(pending.attempts, failure):
                            delay = policy.sleep(pending.attempts, token=f"task-{index}")
                            log.warning(
                                "supervised map degradation stage 'retry-task': "
                                "task %d failed (%s), retry %d/%d after %.3fs backoff",
                                index,
                                failure.describe(),
                                pending.attempts,
                                policy.max_attempts - 1,
                                delay,
                            )
                            retry_later.append(index)
                        else:
                            outcomes[index] = TaskOutcome(
                                index=index,
                                error=failure,
                                attempts=pending.attempts,
                            )
                            unfinished.discard(index)
                        continue
                    if on_result is not None:
                        on_result(index, value)
                    outcomes[index] = TaskOutcome(
                        index=index, value=value, attempts=pending.attempts
                    )
                    unfinished.discard(index)
            except (BrokenProcessPool, OSError, EOFError, BrokenPipeError) as error:
                pool_failures += 1
                crash = classify_failure(error)
                # Cancel bookkeeping for in-flight futures; unfinished
                # tasks are resubmitted (or run serially) below.
                for future in list(futures):
                    futures.pop(future)
                try:
                    executor.shutdown(wait=False, cancel_futures=True)
                except Exception:
                    pass
                # Charge the crash against every unfinished task so a
                # poison task that kills its worker cannot loop forever.
                exhausted = [
                    index
                    for index in sorted(unfinished)
                    if not policy.should_retry(attempts.get(index, 0), crash)
                ]
                for index in exhausted:
                    outcomes[index] = TaskOutcome(
                        index=index,
                        error=WorkerCrash(
                            f"worker died {attempts.get(index, 0)} time(s) running "
                            f"task {index} ({crash})"
                        ),
                        attempts=attempts.get(index, 0),
                    )
                    unfinished.discard(index)
                if not unfinished:
                    break
                stage = (
                    "replace-worker"
                    if pool_failures == 1
                    else "fresh-pool"
                    if pool_failures <= max_pool_failures
                    else "serial"
                )
                log.warning(
                    "supervised map degradation stage %r: pool failure #%d "
                    "(%s); %d task(s) unfinished",
                    stage,
                    pool_failures,
                    crash.describe(),
                    len(unfinished),
                )
                if stage == "serial":
                    run_serial(sorted(unfinished), attempts)
                    unfinished.clear()
                    break
                policy.sleep(pool_failures, token="pool")
                executor = make_pool()
                futures = submit_all(sorted(unfinished))
                continue
            if retry_later:
                futures.update(submit_all(retry_later))
    finally:
        try:
            executor.shutdown(wait=False, cancel_futures=True)
        except Exception:
            pass

    for index in range(len(tasks)):
        if outcomes[index] is None:  # defensive: never drop a task silently
            outcomes[index] = TaskOutcome(
                index=index,
                error=WorkerCrash(f"task {index} was lost by the pool"),
                attempts=attempts.get(index, 0),
            )
    return [outcome for outcome in outcomes if outcome is not None]
