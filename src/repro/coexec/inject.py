"""Seeded single-instruction semantic faults for the block tier.

A :class:`Fault` names one static instruction *positionally* —
``(function, block, index)`` rather than by uid — because uids are
assigned in assembly order and therefore shift whenever the shrinker
reassembles a reduced program, while the surviving instruction keeps its
position inside its block.  ``resolve_fault_uid`` maps the position back
to the uid of the current program (or ``None`` once the site has been
shrunk away or is not mutable).

The mutation itself rides the block compiler's ``mutate_result`` seam
(:func:`repro.sim.blockc.compile_blocks`): the result expression of the
targeted instruction is rewritten before it is assigned, so the corrupted
value flows into the register writeback, the emitted trace record, and
any later uses inside the same compiled unit — exactly like a real
miscompilation would.  The default ``flip-low-bit`` mutation XORs bit 0,
which always changes the value, never leaves the signed-64 register
range, and works uniformly for ALU results, comparison booleans, CMOV
selections, and LDA addresses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Optional

from ..ir import Program
from ..isa import Opcode, OpKind
from ..sim.blockc import BlockProgram, compile_blocks
from ..sim.machine import Machine

__all__ = [
    "Fault",
    "MUTATIONS",
    "resolve_fault_uid",
    "eligible_faults",
    "compile_faulty_block_program",
]

#: Named result-expression rewrites.  ``flip-low-bit`` is the canonical
#: one: guaranteed to change the value and preserve all invariants.
MUTATIONS: dict[str, Callable[[str], str]] = {
    "flip-low-bit": lambda expr: f"(({expr}) ^ 1)",
}

#: Instruction kinds whose result expression the block compiler exposes
#: to mutation (plus LDA, which shares OpKind.MOVE with unmutable moves).
_MUTABLE_KINDS = frozenset(
    {
        OpKind.ALU,
        OpKind.MUL,
        OpKind.LOGICAL,
        OpKind.SHIFT,
        OpKind.COMPARE,
        OpKind.CMOV,
        OpKind.MASK,
        OpKind.EXTEND,
    }
)


def _is_mutable(inst) -> bool:
    if inst.dest is None:
        return False
    if inst.kind in _MUTABLE_KINDS:
        return True
    return inst.kind is OpKind.MOVE and inst.op is Opcode.LDA


@dataclass(frozen=True)
class Fault:
    """A positional single-instruction semantic fault specification."""

    function: str
    block: str
    index: int
    mutation: str = "flip-low-bit"

    def __post_init__(self) -> None:
        if self.mutation not in MUTATIONS:
            raise ValueError(
                f"unknown mutation {self.mutation!r}; expected one of {sorted(MUTATIONS)}"
            )

    @classmethod
    def parse(cls, spec: str, mutation: str = "flip-low-bit") -> "Fault":
        """Parse a ``function:block:index`` CLI spec."""
        parts = spec.split(":")
        if len(parts) != 3:
            raise ValueError(f"fault spec must be FUNCTION:BLOCK:INDEX, got {spec!r}")
        function, block, index_text = parts
        try:
            index = int(index_text)
        except ValueError:
            raise ValueError(f"fault index must be an integer, got {index_text!r}") from None
        return cls(function, block, index, mutation)

    def spec(self) -> str:
        return f"{self.function}:{self.block}:{self.index}"


def resolve_fault_uid(fault: Fault, program: Program) -> Optional[int]:
    """The uid of the fault's instruction in *program*, or None.

    None means the site does not exist in this program (wrong name,
    index out of range — e.g. after shrinking) or names an instruction
    whose result the block compiler cannot mutate.
    """
    for function in program.iter_functions():
        if function.name != fault.function:
            continue
        for block in function.iter_blocks():
            if block.label != fault.block:
                continue
            if not 0 <= fault.index < len(block.instructions):
                return None
            inst = block.instructions[fault.index]
            if not _is_mutable(inst):
                return None
            return inst.uid
    return None


def eligible_faults(
    program: Program, executed_uids: Optional[Iterable[int]] = None
) -> list[Fault]:
    """All mutable fault sites in *program*, in static order.

    With ``executed_uids`` (e.g. the uids appearing in a reference
    trace), only sites that actually execute are returned — a fault at a
    dead instruction can never diverge.
    """
    executed = None if executed_uids is None else frozenset(executed_uids)
    faults: list[Fault] = []
    for function in program.iter_functions():
        for block in function.iter_blocks():
            for index, inst in enumerate(block.instructions):
                if not _is_mutable(inst):
                    continue
                if executed is not None and inst.uid not in executed:
                    continue
                faults.append(Fault(function.name, block.label, index))
    return faults


def compile_faulty_block_program(
    machine: Machine, uid: int, mutation: str = "flip-low-bit"
) -> BlockProgram:
    """Block-compile the machine's program with one mutated instruction.

    The result is never installed in the machine's block-program cache —
    it exists only for the faulted side of a lockstep run.
    """
    rewrite = MUTATIONS[mutation]
    return compile_blocks(
        machine,
        True,
        mutate_result=lambda inst, expr: rewrite(expr) if inst.uid == uid else expr,
    )
