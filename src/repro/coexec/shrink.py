"""Program minimization and self-contained divergence reproducers.

When a lockstep run diverges, the failing program is usually a full
workload — tens of thousands of dynamic instructions across dozens of
functions.  :func:`shrink_source` reduces it with a greedy delta-debugging
pass (ddmin) over the assembler text: candidate reductions drop chunks of
lines, and a candidate survives only if it still assembles *and* still
diverges.  The assembler is the family filter — every candidate that
parses is by construction a member of the same program family the
hypothesis generators and the workload suite draw from, and everything
else (dangling labels, unbalanced ``.func``/``.endfunc``) is rejected by
the ``check`` callback returning ``None``.

The shrunk program plus everything needed to replay it — the tier pair,
instruction limit, arguments, the seeded fault (if any) and the recorded
:class:`~repro.coexec.lockstep.Divergence` — is written as a reproducer
directory::

    .repro-failures/lockstep-<sha256(program)[:12]>/
        repro.json      # version, tiers, config, fault, divergence
        program.asm     # the minimized program, assembler syntax

Reproducers are plain files: attach them to a bug report, or replay with
``python -m repro.experiments diverge --replay <dir>``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Callable, Optional

from ..asm import assemble_program
from .inject import Fault
from .lockstep import Divergence, Lockstep, program_digest

__all__ = [
    "REPRO_ROOT",
    "REPRO_VERSION",
    "shrink_source",
    "write_reproducer",
    "load_reproducer",
    "replay_reproducer",
]

#: Default reproducer directory, relative to the current working tree.
REPRO_ROOT = Path(".repro-failures")

REPRO_VERSION = 1

Check = Callable[[str], Optional[Divergence]]


def _lines(source: str) -> list[str]:
    return source.splitlines()


def shrink_source(
    source: str, check: Check, max_checks: int = 2000
) -> tuple[str, Divergence, int]:
    """Minimize *source* while ``check`` still reports a divergence.

    ``check`` maps candidate source text to the divergence it produces,
    or ``None`` when the candidate is uninteresting — it fails to
    assemble, the fault site no longer resolves, or the tiers agree.
    ``check(source)`` must be non-None to start.

    Greedy ddmin over lines: chunks of halving size are deleted while
    deletions keep reproducing, repeating until a full pass at chunk
    size 1 removes nothing (or ``max_checks`` candidate evaluations are
    spent).  Returns ``(minimized source, its divergence, checks used)``.
    """
    divergence = check(source)
    if divergence is None:
        raise ValueError("the initial program does not diverge; nothing to shrink")
    lines = _lines(source)
    checks = 0
    changed = True
    while changed and checks < max_checks:
        changed = False
        chunk = max(len(lines) // 2, 1)
        while chunk >= 1 and checks < max_checks:
            start = 0
            while start < len(lines) and checks < max_checks:
                candidate = lines[:start] + lines[start + chunk :]
                checks += 1
                result = check("\n".join(candidate) + "\n") if candidate else None
                if result is not None:
                    lines = candidate
                    divergence = result
                    changed = True
                    # The chunk at ``start`` is gone; the next chunk now
                    # begins at the same index.
                else:
                    start += chunk
            if chunk == 1:
                break
            chunk //= 2
    return "\n".join(lines) + "\n", divergence, checks


# ----------------------------------------------------------------------
# Reproducer files
# ----------------------------------------------------------------------
def write_reproducer(
    source: str,
    divergence: Divergence,
    *,
    tiers: tuple[str, str],
    max_instructions: int,
    arguments: Optional[list[int]] = None,
    fault: Optional[Fault] = None,
    root: Optional[Path] = None,
    directory: Optional[Path] = None,
) -> Path:
    """Write a self-contained reproducer directory; returns its path.

    ``directory`` pins the exact output directory; otherwise the
    reproducer lands under ``root`` (default :data:`REPRO_ROOT`) in a
    directory named by the program digest, so identical reproducers
    overwrite rather than accumulate.
    """
    if directory is None:
        base = REPRO_ROOT if root is None else Path(root)
        directory = base / f"lockstep-{program_digest(source)}"
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    (directory / "program.asm").write_text(source, encoding="utf-8")
    payload = {
        "version": REPRO_VERSION,
        "kind": "lockstep",
        "tiers": list(tiers),
        "max_instructions": max_instructions,
        "arguments": list(arguments) if arguments is not None else None,
        "fault": {
            "function": fault.function,
            "block": fault.block,
            "index": fault.index,
            "mutation": fault.mutation,
        }
        if fault is not None
        else None,
        "divergence": divergence.to_json_dict(),
        "program": "program.asm",
    }
    (directory / "repro.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return directory


def load_reproducer(path: Path) -> dict:
    """Parse a reproducer directory into its JSON payload (+ source).

    Raises ``ValueError`` for unknown versions or kinds rather than
    misreplaying a future format.
    """
    path = Path(path)
    payload = json.loads((path / "repro.json").read_text(encoding="utf-8"))
    if payload.get("version") != REPRO_VERSION:
        raise ValueError(f"unsupported reproducer version {payload.get('version')!r}")
    if payload.get("kind") != "lockstep":
        raise ValueError(f"unsupported reproducer kind {payload.get('kind')!r}")
    payload["source"] = (path / payload["program"]).read_text(encoding="utf-8")
    return payload


def replay_reproducer(path: Path) -> tuple[Optional[Divergence], Divergence]:
    """Re-run a reproducer; returns ``(replayed, recorded)`` divergences.

    The reproducer is faithful when ``replayed`` is not None and
    ``replayed.signature() == recorded.signature()``.
    """
    payload = load_reproducer(path)
    recorded = Divergence.from_json_dict(payload["divergence"])
    fault = None
    if payload["fault"] is not None:
        spec = payload["fault"]
        fault = Fault(spec["function"], spec["block"], spec["index"], spec["mutation"])
    program = assemble_program(payload["source"])
    replayed = Lockstep(
        program,
        tiers=tuple(payload["tiers"]),
        max_instructions=payload["max_instructions"],
        arguments=payload["arguments"],
        fault=fault,
    ).run()
    return replayed, recorded
