"""First-divergence bisection for the analysis kernels.

The simulator tiers are one replication hazard; the analysis kernels are
the other.  The timing model has three implementations that promise
bit-identical :class:`~repro.uarch.TimingResult` streams — the readable
reference walk (:meth:`OutOfOrderModel.run_reference`), the compiled walk
(:func:`run_compiled`) and one lane of the multi-configuration walk
(:func:`run_compiled_many`) — and the energy accountant has the
per-policy and fused multi-policy walks.  When two of them disagree over
a full trace, the summary diff says nothing about *where* the streams
split, so :func:`compare_timing` / :func:`compare_accounting` bisect over
trace prefixes: both kernels are pure functions of the trace prefix, so
"agrees on ``trace[:k]``" is monotone in ``k`` and a standard invariant
bisection finds the exact first record whose inclusion makes the results
differ.

Prefix traces are rebuilt with ``Trace(records=trace.records[:k],
static=trace.static)`` — the explicit-column ingestion path — so the
kernels under test see an ordinary trace, not a special replay mode.

:func:`compare_fused` extends the same idea to the streaming fused
pipeline (``repro.sim.fusedc``), which never materializes a trace: a
probe run snapshots the fused timing state after every record, each
snapshot projects onto the prefix :class:`TimingResult` the compiled
kernel would report for the materialized prefix, and the standard
bisection pins the first record where the projections split.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Sequence

from ..hardware import gating
from ..power import EnergyAccountant, MultiPolicyEnergyAccountant
from ..sim.trace import Trace
from ..uarch import MachineConfig, OutOfOrderModel, TimingResult, run_compiled, run_compiled_many
from .lockstep import Divergence, _jsonify

__all__ = [
    "TIMING_COMPARATORS",
    "run_timing",
    "compare_timing",
    "compare_accounting",
    "compare_fused",
]

#: The timing-kernel implementations the comparator can pit against each
#: other.  ``compiled-lane`` runs the multi-configuration kernel with a
#: companion config alongside the one under test, so the genuinely
#: multi-lane walk executes (a single deduplicated config would fall back
#: to ``run_compiled``).
TIMING_COMPARATORS = ("reference", "compiled", "compiled-lane")


def _companion(config: MachineConfig) -> MachineConfig:
    """A second config in the same lane-shape group as *config*.

    Differs only in a cycle-valued parameter, which keeps both configs in
    one ``_lane_shape`` group of :func:`run_compiled_many` — forcing the
    true multi-lane walk rather than the single-config fallback.
    """
    return dataclasses.replace(
        config, mispredict_redirect_penalty=config.mispredict_redirect_penalty + 1
    )


def run_timing(kernel: str, trace: Trace, config: MachineConfig) -> TimingResult:
    """Run one timing-kernel implementation over *trace*."""
    if kernel == "reference":
        return OutOfOrderModel(config).run_reference(trace)
    if kernel == "compiled":
        return run_compiled(trace, config)
    if kernel == "compiled-lane":
        return run_compiled_many(trace, [config, _companion(config)])[0]
    raise ValueError(f"unknown timing kernel {kernel!r}; expected one of {TIMING_COMPARATORS}")


def _prefix(trace: Trace, length: int) -> Trace:
    return Trace(records=trace.records[:length], static=trace.static)


def _timing_fields(expected: TimingResult, actual: TimingResult) -> dict:
    return {
        field.name: [getattr(expected, field.name), getattr(actual, field.name)]
        for field in dataclasses.fields(TimingResult)
        if getattr(expected, field.name) != getattr(actual, field.name)
    }


def _bisect(trace: Trace, differs) -> int:
    """Smallest prefix length at which ``differs`` holds.

    ``differs(k)`` must be monotone: False at some ``lo`` (0 — both
    kernels agree on the empty trace), True at ``hi = len(trace)``
    (checked by the caller).  Returns the minimal diverging ``hi``; the
    record whose inclusion splits the streams is ``trace[hi - 1]``.
    """
    lo, hi = 0, len(trace)
    while hi - lo > 1:
        mid = (lo + hi) // 2
        if differs(mid):
            hi = mid
        else:
            lo = mid
    return hi


def _localize(
    trace: Trace,
    kind: str,
    names: tuple[str, str],
    differs,
    fields_at,
) -> Divergence:
    hi = _bisect(trace, differs)
    record = trace[hi - 1]
    static = trace.static.get(record.uid) if trace.static is not None else None
    return Divergence(
        kind=kind,
        step=hi - 1,
        tiers=names,
        uid=record.uid,
        block=(static.function, static.block) if static is not None else None,
        fields=fields_at(hi),
    )


def compare_timing(
    trace: Trace,
    config: Optional[MachineConfig] = None,
    kernels: tuple[str, str] = ("reference", "compiled"),
) -> Optional[Divergence]:
    """First record where two timing kernels' results split, or None.

    Runs both kernels over the full trace first; only on disagreement
    does the O(n log n) prefix bisection run.
    """
    for kernel in kernels:
        if kernel not in TIMING_COMPARATORS:
            raise ValueError(
                f"unknown timing kernel {kernel!r}; expected one of {TIMING_COMPARATORS}"
            )
    if config is None:
        config = MachineConfig()
    full_a = run_timing(kernels[0], trace, config)
    full_b = run_timing(kernels[1], trace, config)
    if full_a == full_b:
        return None

    def differs(length: int) -> bool:
        prefix = _prefix(trace, length)
        return run_timing(kernels[0], prefix, config) != run_timing(kernels[1], prefix, config)

    def fields_at(length: int) -> dict:
        prefix = _prefix(trace, length)
        return _timing_fields(
            run_timing(kernels[0], prefix, config), run_timing(kernels[1], prefix, config)
        )

    return _localize(trace, "timing", tuple(kernels), differs, fields_at)


def _account_split(trace: Trace, timing: TimingResult, policies: dict):
    """(per-policy, fused) energy results for one trace+timing."""
    separate = {
        name: EnergyAccountant(policy).account(trace, timing)
        for name, policy in policies.items()
    }
    fused = MultiPolicyEnergyAccountant(policies).account(trace, timing)
    return separate, fused


def _energy_fields(separate: dict, fused: dict) -> dict:
    fields: dict = {}
    for name in separate:
        for field_name, (va, vb) in separate[name].diff(fused[name]).items():
            fields[f"{name}.{field_name}"] = [_jsonify(va), _jsonify(vb)]
    return fields


def compare_accounting(
    trace: Trace,
    config: Optional[MachineConfig] = None,
    policies: Optional[Sequence[str]] = None,
) -> Optional[Divergence]:
    """First record where per-policy and fused accounting split, or None.

    Each policy accounted alone (the reference composition the paper's
    tables assume) is compared against one fused multi-policy walk over
    all of them.  On disagreement, the first diverging record is found by
    the same prefix bisection as :func:`compare_timing`, recomputing the
    prefix's timing with the reference model so the accountants always
    see a (trace, timing) pair that belongs together.
    """
    if config is None:
        config = MachineConfig()
    names = list(policies) if policies is not None else sorted(gating.registry())
    named = {name: gating.get(name) for name in names}

    def split_at(length: Optional[int]):
        prefix = trace if length is None else _prefix(trace, length)
        timing = OutOfOrderModel(config).run_reference(prefix)
        return _account_split(prefix, timing, named)

    separate, fused = split_at(None)
    if separate == fused:
        return None

    def differs(length: int) -> bool:
        prefix_separate, prefix_fused = split_at(length)
        return prefix_separate != prefix_fused

    def fields_at(length: int) -> dict:
        prefix_separate, prefix_fused = split_at(length)
        return _energy_fields(prefix_separate, prefix_fused)

    return _localize(trace, "energy", ("per-policy", "fused"), differs, fields_at)


def _record_shape_key(record) -> tuple:
    """The accounting-shape key of one trace record.

    Mirrors the per-record grouping of :meth:`Trace.shape_counts` —
    ``(uid, bytes of per-source significant-byte counts, result
    significant-byte count or -1)`` — so an aggregate-count mismatch can
    be walked back to the first dynamic record carrying an affected key.
    """
    from ..isa.widths import significant_bytes

    result = -1 if record.result is None else significant_bytes(record.result)
    return (
        record.uid,
        bytes(significant_bytes(value) for value in record.srcs),
        result,
    )


def compare_fused(
    program,
    config: Optional[MachineConfig] = None,
    max_instructions: int = 20_000_000,
) -> Optional[Divergence]:
    """First record where the fused pipeline splits from the materialized
    oracle, or None.

    Runs the program twice: once materialized (trace + compiled timing
    kernel — the oracle) and once through the fused streaming tier with
    the per-record probe enabled, which snapshots the timing-kernel state
    after every record.  On a timing mismatch the probe stream lets a
    prefix bisection find the exact record where the fused state first
    projects onto a different prefix :class:`TimingResult` than the
    compiled kernel computes over the materialized prefix — without ever
    re-running the fused simulation.  On a shape-aggregate mismatch the
    differing shape keys are walked back to the first dynamic record
    carrying one.  The differential suite routes its failures through
    this function so a red assertion names a record, not two summaries.
    """
    from ..sim.fusedc import timing_from_probe
    from ..sim.machine import Machine

    if config is None:
        config = MachineConfig()
    machine = Machine(program, max_instructions=max_instructions)
    reference = machine.run(collect_trace=True)
    trace = reference.trace
    oracle_timing = run_compiled(trace, config)

    probes: list[tuple] = []
    fused_run = machine._run_fused(config, None, "block", probe_sink=probes)
    fused = fused_run.fused

    names = ("materialized", "fused")

    # Architectural divergence would mean the fused codegen broke the
    # block tier's own semantics; surface it before any analysis diff.
    if fused_run.instructions != reference.instructions or fused_run.output != reference.output:
        fields: dict = {}
        if fused_run.instructions != reference.instructions:
            fields["instructions"] = [reference.instructions, fused_run.instructions]
        if fused_run.output != reference.output:
            fields["output"] = [_jsonify(tuple(reference.output)), _jsonify(tuple(fused_run.output))]
        return Divergence(kind="fused-arch", step=0, tiers=names, fields=fields)

    if fused.timing != oracle_timing and len(probes) == len(trace):

        def differs(length: int) -> bool:
            return timing_from_probe(probes[length - 1], length) != run_compiled(
                _prefix(trace, length), config
            )

        def fields_at(length: int) -> dict:
            return _timing_fields(
                run_compiled(_prefix(trace, length), config),
                timing_from_probe(probes[length - 1], length),
            )

        return _localize(trace, "fused-timing", names, differs, fields_at)
    if fused.timing != oracle_timing:
        # The probe stream is incomplete (shorter/longer than the trace),
        # so prefix projection is meaningless; report the summary diff.
        return Divergence(
            kind="fused-timing",
            step=len(trace) - 1,
            tiers=names,
            fields=_timing_fields(oracle_timing, fused.timing),
        )

    oracle_shapes = dict(trace.shape_counts())
    fused_shapes = fused.shapes.shape_counts()
    if fused_shapes != oracle_shapes:
        differing = {
            key
            for key in set(oracle_shapes) | set(fused_shapes)
            if oracle_shapes.get(key) != fused_shapes.get(key)
        }
        for step, record in enumerate(trace.records):
            key = _record_shape_key(record)
            if key in differing:
                static = trace.static.get(record.uid)
                return Divergence(
                    kind="fused-shapes",
                    step=step,
                    tiers=names,
                    uid=record.uid,
                    block=(static.function, static.block) if static is not None else None,
                    fields={
                        str(key): [oracle_shapes.get(key), fused_shapes.get(key)]
                        for key in sorted(differing)
                    },
                )
        # Counts differ but no materialized record carries an affected
        # key (fused invented a shape): no step is attributable.
        return Divergence(
            kind="fused-shapes",
            step=len(trace) - 1,
            tiers=names,
            fields={
                str(key): [oracle_shapes.get(key), fused_shapes.get(key)]
                for key in sorted(differing)
            },
        )
    return None
