"""Lockstep co-execution and first-divergence bisection.

The repo's differential guarantees — three bit-identical simulator
tiers, three timing-kernel implementations, per-policy vs fused energy
accounting — are enforced end-to-end by summary equality.  This package
turns a summary mismatch into an actionable report: the exact first
diverging dynamic step, its static instruction, a per-field diff, and a
minimized self-contained reproducer.  See ``docs/coexec.md``.
"""

from .inject import (
    MUTATIONS,
    Fault,
    compile_faulty_block_program,
    eligible_faults,
    resolve_fault_uid,
)
from .kernels import (
    TIMING_COMPARATORS,
    compare_accounting,
    compare_fused,
    compare_timing,
    run_timing,
)
from .lockstep import Divergence, Lockstep, first_divergence
from .shrink import (
    REPRO_ROOT,
    load_reproducer,
    replay_reproducer,
    shrink_source,
    write_reproducer,
)

__all__ = [
    "Divergence",
    "Lockstep",
    "first_divergence",
    "Fault",
    "MUTATIONS",
    "eligible_faults",
    "resolve_fault_uid",
    "compile_faulty_block_program",
    "TIMING_COMPARATORS",
    "run_timing",
    "compare_timing",
    "compare_accounting",
    "compare_fused",
    "REPRO_ROOT",
    "shrink_source",
    "write_reproducer",
    "load_reproducer",
    "replay_reproducer",
]
