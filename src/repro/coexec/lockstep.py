"""Lockstep co-execution of two simulator tiers with first-divergence reports.

The :class:`Lockstep` driver runs any two of the machine's dispatch tiers
(``reference``, ``fast``, ``block``) over the same program, each on its own
private run state (registers, memory, trace, output, counters), advancing
them in *checkpoint units* — one instruction for the per-record tiers, one
compiled unit for the block tier — and comparing the architectural state at
every checkpoint:

* the emitted trace records (operand values, results, effective addresses,
  branch outcomes — every instruction emits exactly one record, so record
  index == dynamic step index),
* the program counter and the register file,
* the program output.

The first mismatch stops the run and becomes a structured
:class:`Divergence` (dynamic step index, basic block, instruction uid,
per-field expected/actual diff) instead of the end-of-run summary mismatch
the differential tests would otherwise report.  When both sides halt in
agreement the driver additionally compares final memory contents and the
block/call counters.

Tier errors are part of the comparison: the tiers promise *identical
exceptions* (same type, same args) for invalid programs and exceeded
instruction limits, but not identical partial traces once an error
propagates (the block tier hoists the limit check to block granularity), so
two runs that fail identically — with equal records over their common
prefix — count as agreement, while one-sided or differing failures are
reported as an ``outcome`` divergence.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Optional

from ..ir import Program
from ..sim.blockc import BlockProgram, compile_blocks
from ..sim.machine import (
    DISPATCH_TIERS,
    Machine,
    SimulationError,
    SimulationLimitExceeded,
)
from ..sim.trace import FLAG_MEM, FLAG_RESULT, Trace, _SRC_SHIFT
from .inject import Fault, compile_faulty_block_program, resolve_fault_uid

__all__ = ["Divergence", "Lockstep", "first_divergence"]

#: TraceRecord fields, in the order they appear in the named tuple.
_RECORD_FIELDS = (
    "uid",
    "address",
    "srcs",
    "result",
    "mem_address",
    "taken",
    "next_address",
)


def _jsonify(value):
    """Make a compared value JSON-representable (tuples become lists)."""
    if isinstance(value, tuple):
        return [_jsonify(item) for item in value]
    return value


@dataclass
class Divergence:
    """The first observable disagreement between two co-executed runs.

    ``kind`` classifies what diverged first:

    * ``record`` — a trace record differs (the common case: wrong result,
      operand, address or branch outcome at one dynamic instruction),
    * ``control`` — one side executed past the other's clean halt, or the
      program counters split without a record-level difference,
    * ``registers`` / ``output`` / ``memory`` / ``counters`` —
      architectural state differs although the records agree,
    * ``outcome`` — the runs failed differently (or only one failed).

    ``step`` is the 0-based dynamic instruction index of the divergence,
    ``uid`` / ``block`` locate the static instruction when one is
    attributable, and ``fields`` maps each differing field to its
    ``[expected, actual]`` pair (expected = first tier, actual = second).
    """

    kind: str
    step: int
    tiers: tuple[str, str]
    uid: Optional[int] = None
    block: Optional[tuple[str, str]] = None
    fields: dict = field(default_factory=dict)

    def signature(self) -> tuple:
        """Hashable identity used to decide two divergences are the same.

        Instruction uids are allocated from a process-global counter, so
        the same program assembled twice (or in another process — e.g. a
        reproducer replay) carries different uids for identical
        instructions.  The signature therefore identifies the static
        site by ``block`` and treats uid-valued diffs as presence-only.
        """
        return (
            self.kind,
            self.step,
            tuple(self.block) if self.block else None,
            tuple(
                sorted(
                    (name, None if name == "uid" else repr(pair))
                    for name, pair in self.fields.items()
                )
            ),
        )

    def describe(self) -> str:
        where = f"step {self.step}"
        if self.uid is not None:
            where += f", uid {self.uid}"
        if self.block is not None:
            where += f", block {self.block[0]}/{self.block[1]}"
        lines = [
            f"{self.kind} divergence between tiers {self.tiers[0]} and {self.tiers[1]} at {where}"
        ]
        for name, (expected, actual) in sorted(self.fields.items()):
            lines.append(f"  {name}: {self.tiers[0]}={expected!r} {self.tiers[1]}={actual!r}")
        return "\n".join(lines)

    def to_json_dict(self) -> dict:
        return {
            "kind": self.kind,
            "step": self.step,
            "tiers": list(self.tiers),
            "uid": self.uid,
            "block": list(self.block) if self.block else None,
            "fields": {name: _jsonify(list(pair)) for name, pair in self.fields.items()},
        }

    @classmethod
    def from_json_dict(cls, payload: dict) -> "Divergence":
        return cls(
            kind=payload["kind"],
            step=payload["step"],
            tiers=tuple(payload["tiers"]),
            uid=payload["uid"],
            block=tuple(payload["block"]) if payload.get("block") else None,
            fields={name: list(pair) for name, pair in payload.get("fields", {}).items()},
        )


class _Cursor:
    """One tier's resumable execution over its own private run state.

    Every tier drives the machine's *own* compiled artifacts — the
    reference tier through the single-step generator
    (:meth:`Machine._reference_steps`), the fast tier through its bound
    handler closures, the block tier through a bound
    :class:`BlockProgram` — so lockstep observes exactly the code the
    normal ``Machine.run`` paths execute, including the block tier's
    mid-block landing fallback onto the fast handlers.
    """

    def __init__(
        self,
        machine: Machine,
        tier: str,
        arguments: Optional[list[int]] = None,
        block_program: Optional[BlockProgram] = None,
    ) -> None:
        if tier not in DISPATCH_TIERS:
            raise ValueError(f"unknown dispatch tier {tier!r}; expected one of {DISPATCH_TIERS}")
        self.machine = machine
        self.tier = tier
        self.regs, self.memory, self.pc = machine._init_run_state(arguments)
        self.trace: Trace = machine._new_trace()
        self.output: list[int] = []
        self.block_counts: dict[tuple[str, str], int] = {}
        self.call_counts: dict[str, int] = {}
        self.executed = 0
        self.halted = False
        self.error: Optional[BaseException] = None
        self._limit = machine.max_instructions
        self._gen = None
        self._handlers = None
        self._funcs = None
        self._lengths = None
        if tier == "reference":
            self._gen = machine._reference_steps(
                self.regs,
                self.memory,
                self.pc,
                self.trace,
                self.output,
                self.block_counts,
                self.call_counts,
                None,
            )
        elif tier == "fast":
            self._bind_fast()
        else:
            program = block_program
            if program is None:
                program = machine._block_programs.get(True)
                if program is None:
                    program = compile_blocks(machine, True)
                    machine._block_programs[True] = program
            rows_extend, arena_extend, mem_append, spill = self.trace.block_emitters()
            self._funcs = program.bind(
                self.regs,
                self.memory.load,
                self.memory.store,
                self.memory._pages.get,
                self.memory._page,
                self.output.append,
                self.block_counts,
                self.call_counts,
                program.consts,
                rows_extend,
                arena_extend,
                mem_append,
                spill,
            )
            self._lengths = program.lengths

    @property
    def live(self) -> bool:
        return not self.halted and self.error is None

    def _bind_fast(self) -> None:
        self._handlers = self.machine._compile_handlers(
            self.regs,
            self.memory,
            self.trace,
            self.output,
            self.block_counts,
            self.call_counts,
            None,
        )

    def advance_unit(self) -> int:
        """Execute one checkpoint unit; returns instructions executed.

        One instruction for the reference/fast tiers, one compiled unit
        for the block tier (falling back to per-instruction stepping
        after a mid-block landing, exactly like ``Machine._run_block``).
        Any tier failure is captured as this cursor's ``error`` outcome.
        """
        if not self.live:
            return 0
        try:
            if self._funcs is not None:
                return self._step_block()
            if self._handlers is not None:
                return self._step_fast()
            return self._step_reference()
        except Exception as exc:  # the outcome side of the comparison
            self.error = exc
            return 0

    def _step_reference(self) -> int:
        try:
            self.pc = next(self._gen)
        except StopIteration:  # pragma: no cover - halt yields first
            self.halted = True
            return 0
        self.executed += 1
        if self.pc < 0:
            self.halted = True
        return 1

    def _step_fast(self) -> int:
        self.executed += 1
        if self.executed > self._limit:
            raise self._limit_error()
        try:
            handler = self._handlers[self.pc]
        except IndexError:
            raise _past_the_end() from None
        self.pc = handler()
        if self.pc < 0:
            self.halted = True
        return 1

    def _step_block(self) -> int:
        if not 0 <= self.pc < len(self._funcs):
            raise _past_the_end()
        unit = self._funcs[self.pc]
        if unit is None:
            # A computed control transfer landed mid-block: the real tier
            # finishes the run per-instruction on the fast handlers,
            # sharing all state — mirror that permanently.
            self._funcs = None
            self._lengths = None
            self._bind_fast()
            return self._step_fast()
        count = self._lengths[self.pc]
        self.executed += count
        if self.executed > self._limit:
            raise self._limit_error()
        self.pc = unit()
        if self.pc < 0:
            self.halted = True
        return count

    def _limit_error(self) -> SimulationLimitExceeded:
        return SimulationLimitExceeded(
            f"exceeded the limit of {self._limit} dynamic instructions"
        )


def _past_the_end() -> SimulationError:
    return SimulationError("program counter ran past the end of the program")


class Lockstep:
    """Co-execute two dispatch tiers and report their first divergence.

    Args:
        program: the program to run (both tiers share its static form).
        tiers: an ordered pair from :data:`~repro.sim.machine.DISPATCH_TIERS`;
            the first tier is reported as *expected*, the second as
            *actual*.  The same tier may appear twice (useful with a
            seeded fault).
        max_instructions: per-run dynamic instruction limit.
        arguments: optional entry-function arguments, as in ``Machine.run``.
        fault: optional seeded single-instruction semantic fault
            (:class:`~repro.coexec.inject.Fault`), compiled into the
            **second** tier, which must be ``block``.
    """

    def __init__(
        self,
        program: Program,
        tiers: tuple[str, str] = ("reference", "block"),
        max_instructions: int = 20_000_000,
        arguments: Optional[list[int]] = None,
        fault: Optional[Fault] = None,
    ) -> None:
        if len(tiers) != 2:
            raise ValueError(f"lockstep compares exactly two tiers, got {tiers!r}")
        for tier in tiers:
            if tier not in DISPATCH_TIERS:
                raise ValueError(
                    f"unknown dispatch tier {tier!r}; expected one of {DISPATCH_TIERS}"
                )
        self.tiers = tuple(tiers)
        self.arguments = arguments
        self.fault = fault
        self.machine = Machine(program, max_instructions=max_instructions)
        self._faulty_program: Optional[BlockProgram] = None
        if fault is not None:
            if self.tiers[1] != "block":
                raise ValueError(
                    "a seeded fault mutates the block compiler, so the second tier "
                    f"must be 'block' (got {self.tiers[1]!r})"
                )
            uid = resolve_fault_uid(fault, program)
            if uid is None:
                raise ValueError(f"fault site {fault} not found or not mutable")
            self.fault_uid = uid
            self._faulty_program = compile_faulty_block_program(self.machine, uid, fault.mutation)

    # ------------------------------------------------------------------
    def run(self) -> Optional[Divergence]:
        """Co-execute both tiers; None on agreement, else the first divergence."""
        a = _Cursor(self.machine, self.tiers[0], self.arguments)
        b = _Cursor(
            self.machine, self.tiers[1], self.arguments, block_program=self._faulty_program
        )
        # Compared-prefix cursors into the raw trace columns: record index,
        # value-arena offset, memory-address offset.  Comparing the columns
        # directly keeps the agreement path O(n) overall — the per-record
        # view caches assume a finished trace and are only materialized
        # once a divergence has been localized (the run stops there).
        self._ws = self._vws = self._mws = 0
        while a.live or b.live:
            if a.live:
                a.advance_unit()
            if b.live:
                if b.executed < a.executed:
                    while b.live and b.executed < a.executed:
                        b.advance_unit()
                elif not a.live:
                    # The first tier is finished; let the second run on so a
                    # late halt shows up as extra records, not a hang.
                    b.advance_unit()
            divergence = self._checkpoint(a, b)
            if divergence is not None:
                return divergence
        return self._final(a, b)

    # ------------------------------------------------------------------
    # Comparison
    # ------------------------------------------------------------------
    def _locate(self, uid: Optional[int]) -> Optional[tuple[str, str]]:
        if uid is None:
            return None
        entry = self.machine.static_info.get(uid)
        if entry is None:
            return None
        return (entry.function, entry.block)

    def _record_divergence(self, a: _Cursor, b: _Cursor, index: int) -> Divergence:
        # Materializing the record view is only safe once emission has
        # stopped mattering — the run ends at this divergence — so drop
        # the traces' (stale) derived caches first.
        a.trace.invalidate_aggregation_caches()
        b.trace.invalidate_aggregation_caches()
        record_a = a.trace[index]
        record_b = b.trace[index]
        fields = {
            name: [_jsonify(va), _jsonify(vb)]
            for name, va, vb in zip(_RECORD_FIELDS, record_a, record_b)
            if va != vb
        }
        return Divergence(
            kind="record",
            step=index,
            tiers=self.tiers,
            uid=record_a.uid,
            block=self._locate(record_a.uid),
            fields=fields,
        )

    def _compare_records(self, a: _Cursor, b: _Cursor, end: int) -> Optional[Divergence]:
        """Compare the raw trace columns over ``[self._ws, end)``.

        Advances the compared-prefix cursors on agreement; on mismatch
        localizes the first differing record and reports it.  Works on
        the columnar internals (``_rows``/``_arena``/``_mem``/``_big``)
        because both traces come from the same machine: equal rows imply
        equal uids, flags and (derived) addresses, and equal per-record
        value counts, so the arena and memory columns line up.
        """
        ws = self._ws
        if ws >= end:
            return None
        rows_a, rows_b = a.trace._rows, b.trace._rows
        if rows_a[ws:end] != rows_b[ws:end]:
            index = next(i for i in range(ws, end) if rows_a[i] != rows_b[i])
            return self._record_divergence(a, b, index)
        values = 0
        mems = 0
        for meta in rows_a[ws:end]:
            flags = meta & 0xFF
            values += ((flags >> _SRC_SHIFT) & 7) + (1 if flags & FLAG_RESULT else 0)
            if flags & FLAG_MEM:
                mems += 1
        v_end = self._vws + values
        m_end = self._mws + mems
        arena_a, arena_b = a.trace._arena, b.trace._arena
        big_a, big_b = a.trace._big, b.trace._big
        arena_differs = arena_a[self._vws : v_end] != arena_b[self._vws : v_end]
        if not arena_differs and (big_a or big_b):
            window_a = {k: v for k, v in big_a.items() if self._vws <= k < v_end}
            window_b = {k: v for k, v in big_b.items() if self._vws <= k < v_end}
            arena_differs = window_a != window_b
        mem_a, mem_b = a.trace._mem, b.trace._mem
        mem_differs = mem_a[self._mws : m_end] != mem_b[self._mws : m_end]
        if arena_differs or mem_differs:
            position, mem_cursor = self._vws, self._mws
            for index in range(ws, end):
                flags = rows_a[index] & 0xFF
                count = ((flags >> _SRC_SHIFT) & 7) + (1 if flags & FLAG_RESULT else 0)
                for offset in range(position, position + count):
                    va = big_a.get(offset, arena_a[offset])
                    vb = big_b.get(offset, arena_b[offset])
                    if va != vb:
                        return self._record_divergence(a, b, index)
                if flags & FLAG_MEM:
                    if mem_a[mem_cursor] != mem_b[mem_cursor]:
                        return self._record_divergence(a, b, index)
                    mem_cursor += 1
                position += count
            raise AssertionError("column mismatch did not localize to a record")
        self._ws, self._vws, self._mws = end, v_end, m_end
        return None

    def _checkpoint(self, a: _Cursor, b: _Cursor) -> Optional[Divergence]:
        len_a, len_b = len(a.trace._rows), len(b.trace._rows)
        end = min(len_a, len_b)
        divergence = self._compare_records(a, b, end)
        if divergence is not None:
            return divergence
        if len_a != len_b:
            # The common prefix agrees but one side produced more records.
            # That is only a divergence when the shorter side stopped
            # *cleanly* — a failed run legitimately truncates its trace
            # (the block tier's hoisted limit check), and the two errors
            # are compared in the final phase instead.
            short, long = (a, b) if len_a < len_b else (b, a)
            if short.halted and short.error is None:
                long.trace.invalidate_aggregation_caches()
                extra = long.trace[end]
                # The record tuples get their (process-global, unstable)
                # uid stripped — the divergence's own uid/block carry it.
                fields = {
                    "executed": [a.executed, b.executed],
                    "record": [
                        _jsonify((None,) + tuple(a.trace[end])[1:]) if len_a > end else None,
                        _jsonify((None,) + tuple(b.trace[end])[1:]) if len_b > end else None,
                    ],
                }
                return Divergence(
                    kind="control",
                    step=end,
                    tiers=self.tiers,
                    uid=extra.uid,
                    block=self._locate(extra.uid),
                    fields=fields,
                )
            return None
        if a.live and b.live and a.executed == b.executed:
            if a.pc != b.pc:
                return Divergence(
                    kind="control",
                    step=a.executed,
                    tiers=self.tiers,
                    fields={"pc": [a.pc, b.pc]},
                )
            if a.regs != b.regs:
                fields = {
                    f"r{i}": [a.regs[i], b.regs[i]]
                    for i in range(32)
                    if a.regs[i] != b.regs[i]
                }
                return Divergence(
                    kind="registers", step=a.executed, tiers=self.tiers, fields=fields
                )
            if a.output != b.output:
                return Divergence(
                    kind="output",
                    step=a.executed,
                    tiers=self.tiers,
                    fields={"output": [_jsonify(tuple(a.output)), _jsonify(tuple(b.output))]},
                )
        return None

    def _final(self, a: _Cursor, b: _Cursor) -> Optional[Divergence]:
        divergence = self._checkpoint(a, b)
        if divergence is not None:
            return divergence
        if a.error is not None or b.error is not None:
            same = (
                a.error is not None
                and b.error is not None
                and type(a.error) is type(b.error)
                and a.error.args == b.error.args
            )
            if same:
                return None
            return Divergence(
                kind="outcome",
                step=min(a.executed, b.executed),
                tiers=self.tiers,
                fields={
                    "error": [
                        repr(a.error) if a.error is not None else None,
                        repr(b.error) if b.error is not None else None,
                    ],
                    "executed": [a.executed, b.executed],
                },
            )
        if a.output != b.output:
            return Divergence(
                kind="output",
                step=a.executed,
                tiers=self.tiers,
                fields={"output": [_jsonify(tuple(a.output)), _jsonify(tuple(b.output))]},
            )
        if a.regs != b.regs:
            fields = {
                f"r{i}": [a.regs[i], b.regs[i]] for i in range(32) if a.regs[i] != b.regs[i]
            }
            return Divergence(kind="registers", step=a.executed, tiers=self.tiers, fields=fields)
        memory = _memory_difference(a, b)
        if memory is not None:
            return Divergence(
                kind="memory", step=a.executed, tiers=self.tiers, fields=memory
            )
        if a.block_counts != b.block_counts or a.call_counts != b.call_counts:
            fields = {}
            for key in sorted(set(a.block_counts) | set(b.block_counts)):
                va, vb = a.block_counts.get(key), b.block_counts.get(key)
                if va != vb:
                    fields[f"block {key[0]}/{key[1]}"] = [va, vb]
            for key in sorted(set(a.call_counts) | set(b.call_counts)):
                va, vb = a.call_counts.get(key), b.call_counts.get(key)
                if va != vb:
                    fields[f"calls {key}"] = [va, vb]
            return Divergence(kind="counters", step=a.executed, tiers=self.tiers, fields=fields)
        return None


def _memory_difference(a: _Cursor, b: _Cursor) -> Optional[dict]:
    """First differing byte between the two final memories, or None.

    Pages are compared with absent == all-zeroes, because the tiers may
    legitimately differ in which untouched pages they materialized.
    """
    pages_a = a.memory._pages
    pages_b = b.memory._pages
    zero = None
    for index in sorted(set(pages_a) | set(pages_b)):
        page_a = pages_a.get(index)
        page_b = pages_b.get(index)
        if page_a is None or page_b is None:
            if zero is None:
                size = len(page_a if page_a is not None else page_b)
                zero = bytes(size)
            page_a = page_a if page_a is not None else zero
            page_b = page_b if page_b is not None else zero
        if bytes(page_a) == bytes(page_b):
            continue
        for offset, (byte_a, byte_b) in enumerate(zip(page_a, page_b)):
            if byte_a != byte_b:
                address = index * len(page_a) + offset
                return {f"mem[{address:#x}]": [byte_a, byte_b]}
    return None


def first_divergence(
    program: Program,
    tiers: tuple[str, str] = ("reference", "block"),
    max_instructions: int = 20_000_000,
    arguments: Optional[list[int]] = None,
    fault: Optional[Fault] = None,
) -> Optional[Divergence]:
    """Convenience wrapper: build a :class:`Lockstep` and run it once."""
    return Lockstep(
        program,
        tiers=tiers,
        max_instructions=max_instructions,
        arguments=arguments,
        fault=fault,
    ).run()


def program_digest(source: str) -> str:
    """Short stable digest of a program's text (reproducer naming)."""
    return hashlib.sha256(source.encode("utf-8")).hexdigest()[:12]
