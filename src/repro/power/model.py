"""Wattch-like per-structure activity/energy model with operand gating.

Energy is accounted per processor structure as::

    energy = Σ_accesses  E_access × (static_fraction + data_fraction × bytes/8)
             (+ tag overhead for hardware-tagged schemes)

where ``bytes`` is the number of datapath bytes the access actually
activates, as decided by a :class:`~repro.hardware.gating.GatingPolicy`.
Structures that do not carry data values (rename map, branch predictor,
instruction cache, ...) have ``data_fraction = 0`` and are insensitive to
operand gating, matching the paper's Figure 3/9 (their savings come only
from executing fewer instructions under VRS).

The absolute per-access energies are relative Wattch-like weights: the
reproduction targets relative savings, not nanojoules.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..hardware.gating import GatingPolicy, NoGating
from ..sim import Trace
from ..uarch import TimingResult

__all__ = ["StructureParams", "STRUCTURES", "EnergyBreakdown", "EnergyAccountant"]


@dataclass(frozen=True)
class StructureParams:
    """Energy parameters of one processor structure."""

    name: str
    energy_per_access: float
    data_fraction: float
    stores_values: bool = False  # pays the tag-bit overhead of hardware schemes


#: The structures reported in Figures 3, 9, 13 and 14.
STRUCTURES: dict[str, StructureParams] = {
    "rename": StructureParams("rename", 0.6, 0.0),
    "branch_predictor": StructureParams("branch_predictor", 0.8, 0.0),
    "instruction_queue": StructureParams("instruction_queue", 1.6, 0.75, stores_values=True),
    "rob": StructureParams("rob", 0.8, 0.20),
    "rename_buffers": StructureParams("rename_buffers", 1.0, 0.80, stores_values=True),
    "lsq": StructureParams("lsq", 1.0, 0.30, stores_values=True),
    "register_file": StructureParams("register_file", 1.4, 0.80, stores_values=True),
    "icache": StructureParams("icache", 3.0, 0.0),
    "dcache_l1": StructureParams("dcache_l1", 2.8, 0.35, stores_values=True),
    "dcache_l2": StructureParams("dcache_l2", 6.0, 0.20, stores_values=True),
    "alu": StructureParams("alu", 1.8, 0.85),
    "result_bus": StructureParams("result_bus", 1.2, 0.90),
    "clock": StructureParams("clock", 3.0, 0.0),
}

_MUL_ENERGY_FACTOR = 3.0


@dataclass
class EnergyBreakdown:
    """Per-structure energy of one simulated run."""

    by_structure: dict[str, float] = field(default_factory=dict)
    cycles: int = 0
    instructions: int = 0
    policy: str = "baseline"

    @property
    def total(self) -> float:
        return sum(self.by_structure.values())

    def energy_delay_squared(self) -> float:
        """The energy-delay² metric used throughout the paper's evaluation."""
        return self.total * float(self.cycles) ** 2

    def structure(self, name: str) -> float:
        return self.by_structure.get(name, 0.0)

    def savings_vs(self, baseline: "EnergyBreakdown") -> dict[str, float]:
        """Fractional per-structure energy savings relative to ``baseline``."""
        savings: dict[str, float] = {}
        for name, base in baseline.by_structure.items():
            if base <= 0.0:
                savings[name] = 0.0
            else:
                savings[name] = 1.0 - self.by_structure.get(name, 0.0) / base
        savings["processor"] = 1.0 - (self.total / baseline.total if baseline.total else 0.0)
        return savings

    def ed2_savings_vs(self, baseline: "EnergyBreakdown") -> float:
        base = baseline.energy_delay_squared()
        if base <= 0.0:
            return 0.0
        return 1.0 - self.energy_delay_squared() / base


class EnergyAccountant:
    """Walks a trace and produces an :class:`EnergyBreakdown`."""

    def __init__(self, policy: GatingPolicy | None = None) -> None:
        self.policy = policy or NoGating()

    def account(self, trace: Trace, timing: TimingResult) -> EnergyBreakdown:
        policy = self.policy
        static = trace.static
        self._totals = {name: 0.0 for name in STRUCTURES}

        for record in trace.records:
            entry = static[record.uid]
            source_bytes = [policy.value_bytes(entry, value) for value in record.srcs]
            result_bytes = policy.value_bytes(entry, record.result) if record.result is not None else 0

            # Front end / window structures: one access per instruction.
            self._add("rename", 1, None)
            self._add("rob", 2, result_bytes if record.result is not None else None)
            if source_bytes:
                average = sum(source_bytes) / len(source_bytes)
                self._add("instruction_queue", 2, average)
            else:
                self._add("instruction_queue", 2, None)

            # Register file: one read per source, one write per result.
            for nbytes in source_bytes:
                self._add("register_file", 1, nbytes)
            if record.result is not None:
                self._add("register_file", 1, result_bytes)
                self._add("rename_buffers", 1, result_bytes)
                self._add("result_bus", 1, result_bytes)

            # Execution.
            operand_candidates = source_bytes + ([result_bytes] if record.result is not None else [])
            fu_bytes = max(operand_candidates) if operand_candidates else 8
            fu_weight = _MUL_ENERGY_FACTOR if entry.functional_unit == "imul" else 1.0
            self._add("alu", fu_weight, fu_bytes)

            # Memory system.
            if entry.is_load or entry.is_store:
                data_bytes = result_bytes if entry.is_load else (source_bytes[0] if source_bytes else 8)
                self._add("lsq", 2, data_bytes)
                self._add("dcache_l1", 1, data_bytes)
            if entry.is_branch:
                self._add("branch_predictor", 1, None)

        # Structure-level activity known only to the timing model.
        self._add("icache", timing.icache_accesses, None)
        self._add("dcache_l2", timing.l2_accesses, None)
        self._add("branch_predictor", timing.icache_accesses, None)
        self._add("clock", timing.cycles, None)

        breakdown = EnergyBreakdown(
            policy=policy.name, cycles=timing.cycles, instructions=len(trace.records)
        )
        breakdown.by_structure = dict(self._totals)
        return breakdown

    # ------------------------------------------------------------------
    def _add(self, name: str, accesses: float, active_bytes: float | None) -> None:
        """Accumulate the energy of ``accesses`` accesses to ``name``.

        ``active_bytes`` is the number of data bytes the access switches
        (``None`` means the access carries no value information and the full
        width is assumed).  Structures that store values also pay the
        per-value tag overhead of hardware compression schemes.
        """
        params = STRUCTURES[name]
        if active_bytes is None:
            activity = 1.0
        else:
            activity = active_bytes / 8.0
        energy = params.energy_per_access * accesses * (
            (1.0 - params.data_fraction) + params.data_fraction * activity
        )
        if params.stores_values and self.policy.tag_bits:
            energy += (
                params.energy_per_access
                * accesses
                * params.data_fraction
                * self.policy.tag_overhead_fraction
            )
        self._totals[name] += energy
