"""Wattch-like per-structure activity/energy model with operand gating.

Energy is accounted per processor structure as::

    energy = Σ_accesses  E_access × (static_fraction + data_fraction × bytes/8)
             (+ tag overhead for hardware-tagged schemes)

where ``bytes`` is the number of datapath bytes the access actually
activates, as decided by a :class:`~repro.hardware.gating.GatingPolicy`.
Structures that do not carry data values (rename map, branch predictor,
instruction cache, ...) have ``data_fraction = 0`` and are insensitive to
operand gating, matching the paper's Figure 3/9 (their savings come only
from executing fewer instructions under VRS).

The absolute per-access energies are relative Wattch-like weights: the
reproduction targets relative savings, not nanojoules.

Accounting is built around one fused core, the
:class:`MultiPolicyEnergyAccountant`: it walks the trace **once** and
accumulates per-structure totals for an arbitrary set of gating policies
simultaneously — the Wattch trick of accounting many machine
configurations off a single simulation.  The per-record structural
decisions (which structures are touched, access counts, functional-unit
weight) are shared across policies, and every policy that declares a
:attr:`~repro.hardware.gating.GatingPolicy.width_source` has its per-value
widths derived from two shared quantities (the instruction's encoded width
and each value's significant-byte count), so the per-policy work is a
small arithmetic kernel.  The single-policy :class:`EnergyAccountant` is a
thin wrapper over the same core, so there is exactly one accounting
implementation and a fused run is bit-identical to the corresponding
sequence of single-policy runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from ..hardware.gating import GatingPolicy, NoGating, encoded_bytes
from ..sim import Trace
from ..uarch import TimingResult

__all__ = [
    "StructureParams",
    "STRUCTURES",
    "EnergyBreakdown",
    "EnergyAccountant",
    "MultiPolicyEnergyAccountant",
]


@dataclass(frozen=True)
class StructureParams:
    """Energy parameters of one processor structure."""

    name: str
    energy_per_access: float
    data_fraction: float
    stores_values: bool = False  # pays the tag-bit overhead of hardware schemes


#: The structures reported in Figures 3, 9, 13 and 14.
STRUCTURES: dict[str, StructureParams] = {
    "rename": StructureParams("rename", 0.6, 0.0),
    "branch_predictor": StructureParams("branch_predictor", 0.8, 0.0),
    "instruction_queue": StructureParams("instruction_queue", 1.6, 0.75, stores_values=True),
    "rob": StructureParams("rob", 0.8, 0.20),
    "rename_buffers": StructureParams("rename_buffers", 1.0, 0.80, stores_values=True),
    "lsq": StructureParams("lsq", 1.0, 0.30, stores_values=True),
    "register_file": StructureParams("register_file", 1.4, 0.80, stores_values=True),
    "icache": StructureParams("icache", 3.0, 0.0),
    "dcache_l1": StructureParams("dcache_l1", 2.8, 0.35, stores_values=True),
    "dcache_l2": StructureParams("dcache_l2", 6.0, 0.20, stores_values=True),
    "alu": StructureParams("alu", 1.8, 0.85),
    "result_bus": StructureParams("result_bus", 1.2, 0.90),
    "clock": StructureParams("clock", 3.0, 0.0),
}

_MUL_ENERGY_FACTOR = 3.0

#: Structure-level accesses known only to the timing model, accounted once
#: after the trace walk: (structure, attribute of TimingResult).
_TIMING_SITES = (
    ("icache", "icache_accesses"),
    ("dcache_l2", "l2_accesses"),
    ("branch_predictor", "icache_accesses"),
    ("clock", "cycles"),
)

#: Hardware size-class (1/2/5/8 bytes) indexed by significant-byte count.
_SIZE_FROM_SIG = (0, 1, 2, 5, 5, 5, 8, 8, 8)

#: ``GatingPolicy.width_source`` values the fused kernel can precompute.
_MODE_FULL, _MODE_ENCODED, _MODE_SIG, _MODE_SIZE, _MODE_MIN_SIG, _MODE_MIN_SIZE = range(6)
_MODES = {
    "full": _MODE_FULL,
    "encoded": _MODE_ENCODED,
    "significant": _MODE_SIG,
    "size_class": _MODE_SIZE,
    "min:significant": _MODE_MIN_SIG,
    "min:size_class": _MODE_MIN_SIZE,
}


@dataclass
class EnergyBreakdown:
    """Per-structure energy of one simulated run."""

    by_structure: dict[str, float] = field(default_factory=dict)
    cycles: int = 0
    instructions: int = 0
    policy: str = "baseline"

    @property
    def total(self) -> float:
        return sum(self.by_structure.values())

    def energy_delay_squared(self) -> float:
        """The energy-delay² metric used throughout the paper's evaluation."""
        return self.total * float(self.cycles) ** 2

    def structure(self, name: str) -> float:
        return self.by_structure.get(name, 0.0)

    def savings_vs(self, baseline: "EnergyBreakdown") -> dict[str, float]:
        """Fractional per-structure energy savings relative to ``baseline``.

        Covers the union of both breakdowns' structures: a structure present
        only in ``self`` is reported too (with the same convention as any
        structure whose baseline energy is not positive: a saving of 0.0),
        rather than being silently dropped.
        """
        savings: dict[str, float] = {}
        names = list(baseline.by_structure)
        names += [name for name in self.by_structure if name not in baseline.by_structure]
        for name in names:
            base = baseline.by_structure.get(name, 0.0)
            if base <= 0.0:
                savings[name] = 0.0
            else:
                savings[name] = 1.0 - self.by_structure.get(name, 0.0) / base
        savings["processor"] = 1.0 - (self.total / baseline.total if baseline.total else 0.0)
        return savings

    def ed2_savings_vs(self, baseline: "EnergyBreakdown") -> float:
        base = baseline.energy_delay_squared()
        if base <= 0.0:
            return 0.0
        return 1.0 - self.energy_delay_squared() / base

    def diff(self, other: "EnergyBreakdown") -> dict[str, tuple]:
        """Exact field-level differences against ``other``.

        Returns ``{field: (self value, other value)}`` over the scalar
        fields and each differing structure (``by_structure.<name>``);
        empty when the breakdowns are identical.  This is the
        bit-exactness diff the divergence tooling reports — floats are
        compared with ``!=``, not a tolerance, because the per-policy and
        fused accounting paths promise identical float accumulation.
        """
        differences: dict[str, tuple] = {}
        for name in ("cycles", "instructions", "policy"):
            mine, theirs = getattr(self, name), getattr(other, name)
            if mine != theirs:
                differences[name] = (mine, theirs)
        for name in sorted(set(self.by_structure) | set(other.by_structure)):
            mine = self.by_structure.get(name)
            theirs = other.by_structure.get(name)
            if mine != theirs:
                differences[f"by_structure.{name}"] = (mine, theirs)
        return differences


class _PolicyLane:
    """Per-policy accumulation state of one fused accounting walk."""

    __slots__ = (
        "policy",
        "mode",
        "tag_bits",
        "tag_frac",
        "iq_tag",
        "rf_tag",
        "rnb_tag",
        "lsq_tag",
        "l1_tag",
        "totals",
    )

    def __init__(self, policy: GatingPolicy, nstructures: int) -> None:
        self.policy = policy
        source = policy.width_source
        self.mode = _MODES.get(source) if source is not None else None
        self.tag_bits = policy.tag_bits
        self.tag_frac = policy.tag_overhead_fraction
        # Per-value tag overheads are constant per (structure, access count)
        # site; precompute them with the exact expression the per-access
        # accounting uses: E × accesses × data_fraction × tag_fraction.
        if self.tag_bits:
            tf = self.tag_frac
            iq = STRUCTURES["instruction_queue"]
            rf = STRUCTURES["register_file"]
            rnb = STRUCTURES["rename_buffers"]
            lsq = STRUCTURES["lsq"]
            l1 = STRUCTURES["dcache_l1"]
            self.iq_tag = iq.energy_per_access * 2 * iq.data_fraction * tf
            self.rf_tag = rf.energy_per_access * 1 * rf.data_fraction * tf
            self.rnb_tag = rnb.energy_per_access * 1 * rnb.data_fraction * tf
            self.lsq_tag = lsq.energy_per_access * 2 * lsq.data_fraction * tf
            self.l1_tag = l1.energy_per_access * 1 * l1.data_fraction * tf
        else:
            self.iq_tag = self.rf_tag = self.rnb_tag = self.lsq_tag = self.l1_tag = 0.0
        self.totals = [0.0] * nstructures


class MultiPolicyEnergyAccountant:
    """Accounts energy for many gating policies in one trace walk.

    ``policies`` is a sequence of :class:`GatingPolicy` instances (results
    keyed by ``policy.name``) or a mapping of arbitrary result keys to
    policies.  :meth:`account` returns one :class:`EnergyBreakdown` per
    policy, each bit-identical to a single-policy
    ``EnergyAccountant(policy).account(...)`` run over the same trace —
    both paths share this class, and the record aggregation key is
    canonical (independent of which policies participate), so the floats
    accumulate identically no matter how policies are batched.

    When every policy declares a recognized
    :attr:`~GatingPolicy.width_source`, records are aggregated by their
    accounting shape — ``(static uid, per-source significant bytes, result
    significant bytes)`` — and each distinct shape is accounted once, in
    canonical (sorted-key) order, scaled by its dynamic count.  The shape
    counts come from the trace's cached columnar combo aggregation, and
    the canonical order makes the float accumulation independent of record
    order and trace storage.  Policies with an opaque width source
    (``width_source is None``) force the direct per-record path for the
    whole walk, which calls ``value_bytes`` per dynamic value and may
    therefore differ from the aggregated path in last-ulp rounding.
    """

    def __init__(self, policies: Mapping[str, GatingPolicy] | Sequence[GatingPolicy]) -> None:
        if isinstance(policies, Mapping):
            self._named: dict[str, GatingPolicy] = dict(policies)
        else:
            self._named = {}
            for policy in policies:
                if policy.name in self._named:
                    raise ValueError(f"duplicate policy name {policy.name!r}")
                self._named[policy.name] = policy

    @property
    def policies(self) -> dict[str, GatingPolicy]:
        return dict(self._named)

    # ------------------------------------------------------------------
    def account(self, trace: Trace, timing: TimingResult) -> dict[str, EnergyBreakdown]:
        structure_names = list(STRUCTURES)
        lanes = [_PolicyLane(policy, len(structure_names)) for policy in self._named.values()]
        if lanes:
            if all(lane.mode is not None for lane in lanes):
                self._account_aggregated(trace, lanes)
            else:
                self._account_direct(trace, lanes)
            self._account_timing(timing, lanes)
        results: dict[str, EnergyBreakdown] = {}
        for key, lane in zip(self._named, lanes):
            breakdown = EnergyBreakdown(
                policy=lane.policy.name, cycles=timing.cycles, instructions=len(trace)
            )
            breakdown.by_structure = dict(zip(structure_names, lane.totals))
            results[key] = breakdown
        return results

    # ------------------------------------------------------------------
    def account_many(
        self, trace: Trace, timings: Sequence[TimingResult]
    ) -> list[dict[str, EnergyBreakdown]]:
        """Account one trace against many timing results in one walk.

        The expensive part of :meth:`account` — the per-record (or
        per-shape) trace walk — depends only on the trace, not on the
        timing result; only the final :meth:`_account_timing` additions
        (cache/predictor/clock activity counters) and the breakdown's
        ``cycles`` vary with the timing.  ``account_many`` therefore runs
        the trace walk once, then branches per timing result from a copy
        of the shared lane totals, applying the timing additions in the
        exact order :meth:`account` uses.  Every returned breakdown is
        bit-identical to a separate ``account(trace, timing)`` call: the
        shared base totals see the same float additions in the same
        order, and the per-timing additions start from that same base.

        This is what makes a design-space sweep's energy side O(1) trace
        walks per (workload, policy-set) instead of one walk per machine
        configuration (see ``docs/sweeps.md``).
        """
        structure_names = list(STRUCTURES)
        lanes = [_PolicyLane(policy, len(structure_names)) for policy in self._named.values()]
        if lanes:
            if all(lane.mode is not None for lane in lanes):
                self._account_aggregated(trace, lanes)
            else:
                self._account_direct(trace, lanes)
        base_totals = [list(lane.totals) for lane in lanes]
        instructions = len(trace)
        results: list[dict[str, EnergyBreakdown]] = []
        for timing in timings:
            for lane, base in zip(lanes, base_totals):
                lane.totals = list(base)
            if lanes:
                self._account_timing(timing, lanes)
            per_policy: dict[str, EnergyBreakdown] = {}
            for key, lane in zip(self._named, lanes):
                breakdown = EnergyBreakdown(
                    policy=lane.policy.name, cycles=timing.cycles, instructions=instructions
                )
                breakdown.by_structure = dict(zip(structure_names, lane.totals))
                per_policy[key] = breakdown
            results.append(per_policy)
        return results

    # ------------------------------------------------------------------
    # Fast path: canonical record-shape aggregation + per-shape kernel
    # ------------------------------------------------------------------
    @staticmethod
    def _shape_counts(trace: Trace) -> list[tuple[tuple[int, bytes, int], int]]:
        """Dynamic count per record *shape*, in canonical (sorted) order.

        The shape key is always ``(uid, source significant bytes, result
        significant bytes)`` — even for lanes that only need the encoded
        width — so the groupings are identical for every possible policy
        subset.  Shapes are accounted in sorted-key order, which makes the
        accumulation independent of record order and of the storage the
        trace happens to use (the cached columnar aggregation of
        :meth:`~repro.sim.trace.Trace.shape_counts` or its exact
        per-record fallback for overflow traces).
        """
        return sorted(trace.shape_counts().items())

    def _account_aggregated(self, trace: Trace, lanes: list[_PolicyLane]) -> None:
        """One aggregation builds shape counts; one pass accounts them."""
        static = trace.static
        counts = self._shape_counts(trace)

        # Per-structure constants of the arithmetic kernel, in the exact
        # shapes the per-access formula uses: EA = E × accesses,
        # OMDF = 1 - data_fraction, DF = data_fraction, and the
        # byte-independent energies of data_fraction-0 structures.
        index = {name: i for i, name in enumerate(STRUCTURES)}
        i_rename = index["rename"]
        i_rob = index["rob"]
        i_iq = index["instruction_queue"]
        i_rf = index["register_file"]
        i_rnb = index["rename_buffers"]
        i_bus = index["result_bus"]
        i_alu = index["alu"]
        i_lsq = index["lsq"]
        i_l1 = index["dcache_l1"]
        i_bp = index["branch_predictor"]

        def ea(name: str, accesses: float) -> float:
            return STRUCTURES[name].energy_per_access * accesses

        def omdf(name: str) -> float:
            return 1.0 - STRUCTURES[name].data_fraction

        def df(name: str) -> float:
            return STRUCTURES[name].data_fraction

        def none_energy(name: str, accesses: float) -> float:
            return ea(name, accesses) * (omdf(name) + df(name) * 1.0)

        rename_e = none_energy("rename", 1)
        rob_ea, rob_omdf, rob_df = ea("rob", 2), omdf("rob"), df("rob")
        rob_none = none_energy("rob", 2)
        iq_ea, iq_omdf, iq_df = ea("instruction_queue", 2), omdf("instruction_queue"), df(
            "instruction_queue"
        )
        iq_none = none_energy("instruction_queue", 2)
        rf_ea, rf_omdf, rf_df = ea("register_file", 1), omdf("register_file"), df("register_file")
        rnb_ea, rnb_omdf, rnb_df = (
            ea("rename_buffers", 1),
            omdf("rename_buffers"),
            df("rename_buffers"),
        )
        bus_ea, bus_omdf, bus_df = ea("result_bus", 1), omdf("result_bus"), df("result_bus")
        alu_ea_one, alu_ea_mul = ea("alu", 1.0), ea("alu", _MUL_ENERGY_FACTOR)
        alu_omdf, alu_df = omdf("alu"), df("alu")
        lsq_ea, lsq_omdf, lsq_df = ea("lsq", 2), omdf("lsq"), df("lsq")
        l1_ea, l1_omdf, l1_df = ea("dcache_l1", 1), omdf("dcache_l1"), df("dcache_l1")
        bp_e = none_energy("branch_predictor", 1)

        size_from_sig = _SIZE_FROM_SIG
        # The cached per-uid dynamic counts double as the set of uids that
        # actually occur: prefetch the static facts and encoded widths the
        # kernel needs once per *uid* instead of caching per shape.
        per_uid: dict[int, tuple] = {}
        for uid in trace.uid_counts():
            entry = static[uid]
            per_uid[uid] = (
                encoded_bytes(entry),
                entry.is_load,
                entry.is_load or entry.is_store,
                entry.is_branch,
                entry.functional_unit == "imul",
            )
        for (uid, sigs, rsig), count in counts:
            enc, uid_is_load, is_memory, uid_is_branch, is_imul = per_uid[uid]
            n_src = len(sigs)
            has_result = rsig >= 0
            alu_ea = alu_ea_mul if is_imul else alu_ea_one
            for lane in lanes:
                mode = lane.mode
                if mode == _MODE_ENCODED:
                    src_bytes = (enc,) * n_src
                    result_bytes = enc if has_result else 0
                elif mode == _MODE_SIG:
                    src_bytes = sigs
                    result_bytes = rsig if has_result else 0
                elif mode == _MODE_SIZE:
                    src_bytes = tuple(size_from_sig[s] for s in sigs)
                    result_bytes = size_from_sig[rsig] if has_result else 0
                elif mode == _MODE_MIN_SIG:
                    src_bytes = tuple(s if s < enc else enc for s in sigs)
                    result_bytes = (rsig if rsig < enc else enc) if has_result else 0
                elif mode == _MODE_MIN_SIZE:
                    src_bytes = tuple(
                        size_from_sig[s] if size_from_sig[s] < enc else enc for s in sigs
                    )
                    if has_result:
                        size = size_from_sig[rsig]
                        result_bytes = size if size < enc else enc
                    else:
                        result_bytes = 0
                else:  # _MODE_FULL
                    src_bytes = (8,) * n_src
                    result_bytes = 8 if has_result else 0

                totals = lane.totals
                # Front end / window structures: one access per instruction.
                totals[i_rename] += count * rename_e
                if has_result:
                    totals[i_rob] += count * (
                        rob_ea * (rob_omdf + rob_df * (result_bytes / 8.0))
                    )
                else:
                    totals[i_rob] += count * rob_none
                if n_src:
                    average = sum(src_bytes) / n_src
                    energy = iq_ea * (iq_omdf + iq_df * (average / 8.0))
                else:
                    energy = iq_none
                totals[i_iq] += count * (energy + lane.iq_tag)

                # Register file: one read per source, one write per result.
                for nbytes in src_bytes:
                    totals[i_rf] += count * (
                        rf_ea * (rf_omdf + rf_df * (nbytes / 8.0)) + lane.rf_tag
                    )
                if has_result:
                    activity = result_bytes / 8.0
                    totals[i_rf] += count * (rf_ea * (rf_omdf + rf_df * activity) + lane.rf_tag)
                    totals[i_rnb] += count * (
                        rnb_ea * (rnb_omdf + rnb_df * activity) + lane.rnb_tag
                    )
                    totals[i_bus] += count * (bus_ea * (bus_omdf + bus_df * activity))

                # Execution.
                if n_src:
                    fu_bytes = max(src_bytes)
                    if has_result and result_bytes > fu_bytes:
                        fu_bytes = result_bytes
                elif has_result:
                    fu_bytes = result_bytes
                else:
                    fu_bytes = 8
                totals[i_alu] += count * (alu_ea * (alu_omdf + alu_df * (fu_bytes / 8.0)))

                # Memory system.
                if is_memory:
                    if uid_is_load:
                        data_bytes = result_bytes
                    else:
                        data_bytes = src_bytes[0] if n_src else 8
                    activity = data_bytes / 8.0
                    totals[i_lsq] += count * (
                        lsq_ea * (lsq_omdf + lsq_df * activity) + lane.lsq_tag
                    )
                    totals[i_l1] += count * (l1_ea * (l1_omdf + l1_df * activity) + lane.l1_tag)
                if uid_is_branch:
                    totals[i_bp] += count * bp_e

    # ------------------------------------------------------------------
    # Generic path: per-record walk calling value_bytes per dynamic value
    # ------------------------------------------------------------------
    def _account_direct(self, trace: Trace, lanes: list[_PolicyLane]) -> None:
        """Reference walk for policies with an opaque ``width_source``.

        Iterates the lazy record view: opaque policies take a per-record,
        per-value ``value_bytes`` callback, so there is nothing to
        aggregate — exactness (including the per-record accumulation
        order) matters more than speed on this path.
        """
        static = trace.static
        index = {name: i for i, name in enumerate(STRUCTURES)}
        for record in trace:
            entry = static[record.uid]
            for lane in lanes:
                policy = lane.policy
                totals = lane.totals
                source_bytes = [policy.value_bytes(entry, value) for value in record.srcs]
                result_bytes = (
                    policy.value_bytes(entry, record.result) if record.result is not None else 0
                )

                _site_add(totals, index, lane, "rename", 1, None)
                _site_add(
                    totals,
                    index,
                    lane,
                    "rob",
                    2,
                    result_bytes if record.result is not None else None,
                )
                if source_bytes:
                    average = sum(source_bytes) / len(source_bytes)
                    _site_add(totals, index, lane, "instruction_queue", 2, average)
                else:
                    _site_add(totals, index, lane, "instruction_queue", 2, None)

                for nbytes in source_bytes:
                    _site_add(totals, index, lane, "register_file", 1, nbytes)
                if record.result is not None:
                    _site_add(totals, index, lane, "register_file", 1, result_bytes)
                    _site_add(totals, index, lane, "rename_buffers", 1, result_bytes)
                    _site_add(totals, index, lane, "result_bus", 1, result_bytes)

                operand_candidates = source_bytes + (
                    [result_bytes] if record.result is not None else []
                )
                fu_bytes = max(operand_candidates) if operand_candidates else 8
                fu_weight = _MUL_ENERGY_FACTOR if entry.functional_unit == "imul" else 1.0
                _site_add(totals, index, lane, "alu", fu_weight, fu_bytes)

                if entry.is_load or entry.is_store:
                    data_bytes = (
                        result_bytes
                        if entry.is_load
                        else (source_bytes[0] if source_bytes else 8)
                    )
                    _site_add(totals, index, lane, "lsq", 2, data_bytes)
                    _site_add(totals, index, lane, "dcache_l1", 1, data_bytes)
                if entry.is_branch:
                    _site_add(totals, index, lane, "branch_predictor", 1, None)

    # ------------------------------------------------------------------
    @staticmethod
    def _account_timing(timing: TimingResult, lanes: list[_PolicyLane]) -> None:
        """Structure-level activity known only to the timing model."""
        index = {name: i for i, name in enumerate(STRUCTURES)}
        for name, attribute in _TIMING_SITES:
            accesses = getattr(timing, attribute)
            for lane in lanes:
                _site_add(lane.totals, index, lane, name, accesses, None)


def _site_add(
    totals: list[float],
    index: dict[str, int],
    lane: _PolicyLane,
    name: str,
    accesses: float,
    active_bytes: float | None,
) -> None:
    """Accumulate the energy of ``accesses`` accesses to ``name``.

    ``active_bytes`` is the number of data bytes the access switches
    (``None`` means the access carries no value information and the full
    width is assumed).  Structures that store values also pay the per-value
    tag overhead of hardware compression schemes.
    """
    params = STRUCTURES[name]
    if active_bytes is None:
        activity = 1.0
    else:
        activity = active_bytes / 8.0
    energy = params.energy_per_access * accesses * (
        (1.0 - params.data_fraction) + params.data_fraction * activity
    )
    if params.stores_values and lane.tag_bits:
        energy += params.energy_per_access * accesses * params.data_fraction * lane.tag_frac
    totals[index[name]] += energy


class EnergyAccountant:
    """Walks a trace and produces an :class:`EnergyBreakdown`.

    Single-policy convenience wrapper over the fused
    :class:`MultiPolicyEnergyAccountant` core — the two are bit-identical
    by construction.
    """

    def __init__(self, policy: GatingPolicy | None = None) -> None:
        self.policy = policy or NoGating()

    def account(self, trace: Trace, timing: TimingResult) -> EnergyBreakdown:
        fused = MultiPolicyEnergyAccountant({self.policy.name: self.policy})
        return fused.account(trace, timing)[self.policy.name]
