"""Wattch-like activity-based energy model with operand gating."""

from .model import STRUCTURES, EnergyAccountant, EnergyBreakdown, StructureParams

__all__ = ["STRUCTURES", "EnergyAccountant", "EnergyBreakdown", "StructureParams"]
