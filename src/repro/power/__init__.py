"""Wattch-like activity-based energy model with operand gating."""

from .model import (
    STRUCTURES,
    EnergyAccountant,
    EnergyBreakdown,
    MultiPolicyEnergyAccountant,
    StructureParams,
)

__all__ = [
    "STRUCTURES",
    "EnergyAccountant",
    "EnergyBreakdown",
    "MultiPolicyEnergyAccountant",
    "StructureParams",
]
