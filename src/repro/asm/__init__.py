"""Assembler and disassembler for the Alpha-like target ISA.

The assembler turns the textual format produced by
:func:`repro.ir.format_program` back into a :class:`repro.ir.Program`, which
makes the IR round-trippable and lets workloads be written directly in
assembly when the mini-C front end is too high level (e.g. when a specific
instruction mix is wanted).
"""

from .assembler import AsmSyntaxError, assemble_function, assemble_program
from .lexer import AsmToken, strip_comment, tokenize_line

__all__ = [
    "AsmSyntaxError",
    "assemble_function",
    "assemble_program",
    "AsmToken",
    "strip_comment",
    "tokenize_line",
]
