"""Tokenizer for the assembly text format."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["AsmToken", "AsmSyntaxError", "tokenize_line", "strip_comment"]


class AsmSyntaxError(Exception):
    """Raised when assembly text cannot be tokenized or parsed."""

    def __init__(self, message: str, line_number: int | None = None) -> None:
        if line_number is not None:
            message = f"line {line_number}: {message}"
        super().__init__(message)
        self.line_number = line_number


@dataclass(frozen=True)
class AsmToken:
    """One token of an assembly line."""

    kind: str  # "word", "number", "symbol", "punct"
    text: str
    value: int | None = None


def strip_comment(line: str) -> str:
    """Remove a trailing ``;`` or ``#`` comment (outside of any quoting)."""
    for marker in (";", "#"):
        index = line.find(marker)
        if index >= 0:
            line = line[:index]
    return line.rstrip()


def tokenize_line(line: str, line_number: int | None = None) -> list[AsmToken]:
    """Split one assembly line into tokens.

    Recognized tokens: directive/identifier words, decimal and hexadecimal
    numbers (optionally negative), ``=symbol`` address references, and the
    punctuation ``, ( ) : +``.
    """
    line = strip_comment(line)
    tokens: list[AsmToken] = []
    i = 0
    length = len(line)
    while i < length:
        ch = line[i]
        if ch.isspace():
            i += 1
            continue
        if ch in ",():+":
            tokens.append(AsmToken("punct", ch))
            i += 1
            continue
        if ch == "=":
            j = i + 1
            while j < length and (line[j].isalnum() or line[j] == "_"):
                j += 1
            if j == i + 1:
                raise AsmSyntaxError("'=' must be followed by a symbol name", line_number)
            tokens.append(AsmToken("symbol", line[i + 1 : j]))
            i = j
            continue
        if ch == "-" or ch.isdigit():
            j = i + 1
            while j < length and (line[j].isalnum() or line[j] == "x" or line[j] == "X"):
                j += 1
            text = line[i:j]
            try:
                value = int(text, 0)
            except ValueError as exc:
                raise AsmSyntaxError(f"bad number {text!r}", line_number) from exc
            tokens.append(AsmToken("number", text, value))
            i = j
            continue
        if ch.isalpha() or ch in "._":
            j = i + 1
            while j < length and (line[j].isalnum() or line[j] in "._"):
                j += 1
            tokens.append(AsmToken("word", line[i:j]))
            i = j
            continue
        raise AsmSyntaxError(f"unexpected character {ch!r}", line_number)
    return tokens
