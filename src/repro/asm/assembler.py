"""Assembler: parse the textual assembly format into a :class:`Program`.

The format is the one produced by :func:`repro.ir.printer.format_program`,
so programs round-trip.  Grammar sketch::

    program   := (data | function)*
    data      := ".data" name size_bytes element_bits init_value*
    function  := ".func" name num_params line* ".endfunc"
    line      := label ":" | instruction
    instruction := mnemonic["." width] operand ("," operand)*

Operands are registers (``r3``, ``sp`` ...), immediates (``42``, ``0x1f``,
``-7``), data-symbol references (``=table``) which assemble to the symbol's
address, memory references (``8(sp)``), or label/function names for control
flow.
"""

from __future__ import annotations

from typing import Optional

from ..isa import Imm, Instruction, Opcode, Operand, RETURN_ADDRESS, Reg, Width, parse_register
from ..ir import Function, Program, build_cfg, validate_program
from .lexer import AsmSyntaxError, AsmToken, tokenize_line

__all__ = ["assemble_program", "assemble_function", "AsmSyntaxError"]

_MNEMONICS = {op.value: op for op in Opcode}
_WIDTH_BY_BITS = {8: Width.BYTE, 16: Width.HALF, 32: Width.WORD, 64: Width.QUAD}


def assemble_program(text: str, entry: str = "main", validate: bool = True) -> Program:
    """Assemble a complete program from text."""
    program = Program(entry=entry)
    lines = text.splitlines()

    # Pass 1: data objects (so that =symbol references resolve everywhere).
    for number, raw in enumerate(lines, start=1):
        tokens = tokenize_line(raw, number)
        if tokens and tokens[0].kind == "word" and tokens[0].text == ".data":
            _parse_data(program, tokens, number)

    # Pass 2: functions.
    index = 0
    while index < len(lines):
        number = index + 1
        tokens = tokenize_line(lines[index], number)
        if tokens and tokens[0].kind == "word" and tokens[0].text == ".func":
            end = _find_endfunc(lines, index)
            function = _parse_function(program, lines, index, end)
            program.add_function(function)
            index = end + 1
            continue
        if tokens and tokens[0].kind == "word" and tokens[0].text == ".endfunc":
            raise AsmSyntaxError(".endfunc without .func", number)
        index += 1

    if validate:
        validate_program(program)
    return program


def assemble_function(text: str, program: Optional[Program] = None) -> Function:
    """Assemble a single ``.func``/``.endfunc`` body (helper for tests)."""
    program = program if program is not None else Program()
    lines = text.splitlines()
    start = next(
        i for i, line in enumerate(lines) if tokenize_line(line) and tokenize_line(line)[0].text == ".func"
    )
    end = _find_endfunc(lines, start)
    return _parse_function(program, lines, start, end)


# ----------------------------------------------------------------------
# Directive parsing
# ----------------------------------------------------------------------
def _parse_data(program: Program, tokens: list[AsmToken], line_number: int) -> None:
    if len(tokens) < 4:
        raise AsmSyntaxError(".data requires: name size_bytes element_bits [values]", line_number)
    name = tokens[1].text
    size = _expect_number(tokens[2], line_number)
    bits = _expect_number(tokens[3], line_number)
    if bits not in _WIDTH_BY_BITS:
        raise AsmSyntaxError(f"bad element width {bits}", line_number)
    values = tuple(_expect_number(tok, line_number) for tok in tokens[4:])
    program.add_data(name, size, _WIDTH_BY_BITS[bits], values)


def _find_endfunc(lines: list[str], start: int) -> int:
    for index in range(start + 1, len(lines)):
        tokens = tokenize_line(lines[index], index + 1)
        if tokens and tokens[0].kind == "word" and tokens[0].text == ".endfunc":
            return index
        if tokens and tokens[0].kind == "word" and tokens[0].text == ".func":
            raise AsmSyntaxError("nested .func", index + 1)
    raise AsmSyntaxError(".func without matching .endfunc", start + 1)


def _parse_function(program: Program, lines: list[str], start: int, end: int) -> Function:
    header = tokenize_line(lines[start], start + 1)
    if len(header) < 2:
        raise AsmSyntaxError(".func requires a name", start + 1)
    name = header[1].text
    num_params = _expect_number(header[2], start + 1) if len(header) > 2 else 0
    function = Function(name, num_params=num_params)

    current_label = "entry"
    pending_block = True  # create the block lazily on first instruction/label
    for index in range(start + 1, end):
        number = index + 1
        tokens = tokenize_line(lines[index], number)
        if not tokens:
            continue
        # Label line: "name:"
        if (
            len(tokens) >= 2
            and tokens[0].kind == "word"
            and tokens[1].kind == "punct"
            and tokens[1].text == ":"
        ):
            current_label = tokens[0].text
            if current_label not in function.blocks:
                function.new_block(current_label)
            pending_block = False
            continue
        if pending_block and current_label not in function.blocks:
            function.new_block(current_label)
            pending_block = False
        instruction = _parse_instruction(program, tokens, number)
        function.blocks[current_label].append(instruction)

    build_cfg(function)
    return function


# ----------------------------------------------------------------------
# Instruction parsing
# ----------------------------------------------------------------------
def _parse_instruction(program: Program, tokens: list[AsmToken], number: int) -> Instruction:
    mnemonic = tokens[0].text.lower()
    width = Width.QUAD
    if "." in mnemonic and not mnemonic.startswith("."):
        base, _, bits_text = mnemonic.partition(".")
        if not bits_text.isdigit() or int(bits_text) not in _WIDTH_BY_BITS:
            raise AsmSyntaxError(f"bad width suffix in {mnemonic!r}", number)
        mnemonic = base
        width = _WIDTH_BY_BITS[int(bits_text)]
    if mnemonic not in _MNEMONICS:
        raise AsmSyntaxError(f"unknown mnemonic {mnemonic!r}", number)
    op = _MNEMONICS[mnemonic]
    operands = _split_operands(tokens[1:], number)

    if op in (Opcode.LDB, Opcode.LDH, Opcode.LDW, Opcode.LDQ):
        dest = _expect_reg(operands[0], program, number)
        base, offset = _parse_memory_operand(operands[1:], program, number)
        return Instruction(op, dest, (base, Imm(offset)))
    if op in (Opcode.STB, Opcode.STH, Opcode.STW, Opcode.STQ):
        value = _expect_reg(operands[0], program, number)
        base, offset = _parse_memory_operand(operands[1:], program, number)
        return Instruction(op, None, (value, base, Imm(offset)))
    if op is Opcode.BR:
        return Instruction(op, None, (), target=_expect_name(operands[0], number))
    if op in (Opcode.BEQ, Opcode.BNE, Opcode.BLT, Opcode.BLE, Opcode.BGT, Opcode.BGE):
        cond = _expect_reg(operands[0], program, number)
        return Instruction(op, None, (cond,), target=_expect_name(operands[1], number))
    if op is Opcode.JSR:
        return Instruction(op, RETURN_ADDRESS, (), target=_expect_name(operands[0], number))
    if op is Opcode.RET:
        reg = _expect_reg(operands[0], program, number) if operands else RETURN_ADDRESS
        return Instruction(op, None, (reg,))
    if op in (Opcode.HALT, Opcode.NOP):
        return Instruction(op)
    if op is Opcode.PRINT:
        return Instruction(op, None, (_expect_reg(operands[0], program, number),))

    # Generic register-form instruction: dest, src...
    if not operands:
        raise AsmSyntaxError(f"{mnemonic} requires operands", number)
    dest = _expect_reg(operands[0], program, number)
    srcs = tuple(_parse_operand(group, program, number) for group in operands[1:])
    return Instruction(op, dest, srcs, width=width)


def _split_operands(tokens: list[AsmToken], number: int) -> list[list[AsmToken]]:
    """Split the operand token stream on top-level commas."""
    groups: list[list[AsmToken]] = []
    current: list[AsmToken] = []
    for token in tokens:
        if token.kind == "punct" and token.text == ",":
            if not current:
                raise AsmSyntaxError("empty operand", number)
            groups.append(current)
            current = []
        else:
            current.append(token)
    if current:
        groups.append(current)
    return groups


def _parse_operand(group: list[AsmToken], program: Program, number: int) -> Operand:
    if len(group) == 1:
        token = group[0]
        if token.kind == "number":
            return Imm(token.value or 0)
        if token.kind == "symbol":
            return Imm(program.symbol_address(token.text))
        if token.kind == "word":
            return parse_register(token.text)
    if len(group) == 3 and group[1].kind == "punct" and group[1].text == "+":
        if group[0].kind == "symbol" and group[2].kind == "number":
            return Imm(program.symbol_address(group[0].text) + (group[2].value or 0))
    raise AsmSyntaxError(f"bad operand {' '.join(t.text for t in group)!r}", number)


def _parse_memory_operand(
    groups: list[list[AsmToken]], program: Program, number: int
) -> tuple[Reg, int]:
    """Parse ``offset(base)`` / ``(base)`` / ``base, offset`` forms."""
    if len(groups) == 1:
        group = groups[0]
        # offset(base) or (base)
        if group and group[-1].kind == "punct" and group[-1].text == ")":
            open_index = next(i for i, t in enumerate(group) if t.kind == "punct" and t.text == "(")
            offset_tokens = group[:open_index]
            reg_tokens = group[open_index + 1 : -1]
            offset = 0
            if offset_tokens:
                if offset_tokens[0].kind == "number":
                    offset = offset_tokens[0].value or 0
                elif offset_tokens[0].kind == "symbol":
                    offset = program.symbol_address(offset_tokens[0].text)
                else:
                    raise AsmSyntaxError("bad memory offset", number)
            if len(reg_tokens) != 1 or reg_tokens[0].kind != "word":
                raise AsmSyntaxError("bad memory base register", number)
            return parse_register(reg_tokens[0].text), offset
        if len(group) == 1 and group[0].kind == "word":
            return parse_register(group[0].text), 0
    if len(groups) == 2:
        base = groups[0]
        offset = groups[1]
        if len(base) == 1 and base[0].kind == "word" and len(offset) == 1 and offset[0].kind == "number":
            return parse_register(base[0].text), offset[0].value or 0
    raise AsmSyntaxError("bad memory operand", number)


def _expect_reg(group: list[AsmToken], program: Program, number: int) -> Reg:
    operand = _parse_operand(group, program, number)
    if not isinstance(operand, Reg):
        raise AsmSyntaxError(f"expected a register, got {operand}", number)
    return operand


def _expect_name(group: list[AsmToken], number: int) -> str:
    if len(group) == 1 and group[0].kind == "word":
        return group[0].text
    raise AsmSyntaxError("expected a label or function name", number)


def _expect_number(token: AsmToken, number: int) -> int:
    if token.kind != "number" or token.value is None:
        raise AsmSyntaxError(f"expected a number, got {token.text!r}", number)
    return token.value
