"""Natural-loop detection.

VRP needs loops for its trip-count analysis (§2.3): the range produced by
an affine induction variable ``x = a*x + b`` is bounded by the number of
iterations, so knowing the trip count turns an otherwise unbounded range
into a narrow one.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .dominators import DominatorTree, compute_dominators
from .function import Function

__all__ = ["Loop", "find_loops", "loop_nesting_depth"]


@dataclass
class Loop:
    """A natural loop.

    Attributes:
        header: label of the loop header block.
        blocks: labels of all blocks in the loop body (header included).
        back_edges: (tail, header) CFG edges that define the loop.
        exits: labels of blocks outside the loop that the loop branches to.
    """

    header: str
    blocks: set[str] = field(default_factory=set)
    back_edges: list[tuple[str, str]] = field(default_factory=list)
    exits: set[str] = field(default_factory=set)

    def contains(self, label: str) -> bool:
        return label in self.blocks

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Loop(header={self.header!r}, blocks={sorted(self.blocks)})"


def find_loops(function: Function, dom: DominatorTree | None = None) -> list[Loop]:
    """Find all natural loops of ``function`` (CFG must be built).

    Loops sharing a header are merged, as is conventional.  The result is
    sorted from innermost (fewest blocks) to outermost.
    """
    if dom is None:
        dom = compute_dominators(function)

    loops: dict[str, Loop] = {}
    for block in function.iter_blocks():
        for succ in block.successors:
            if dom.dominates(succ, block.label):
                loop = loops.setdefault(succ, Loop(header=succ))
                loop.back_edges.append((block.label, succ))
                _collect_body(function, loop, block.label)

    for loop in loops.values():
        loop.blocks.add(loop.header)
        for label in loop.blocks:
            for succ in function.blocks[label].successors:
                if succ not in loop.blocks:
                    loop.exits.add(succ)

    return sorted(loops.values(), key=lambda l: len(l.blocks))


def _collect_body(function: Function, loop: Loop, tail: str) -> None:
    """Add to ``loop`` every block that can reach ``tail`` without the header."""
    stack = [tail]
    while stack:
        label = stack.pop()
        if label in loop.blocks or label == loop.header:
            continue
        loop.blocks.add(label)
        stack.extend(function.blocks[label].predecessors)


def loop_nesting_depth(function: Function, loops: list[Loop] | None = None) -> dict[str, int]:
    """Nesting depth of every block (0 = not in any loop)."""
    if loops is None:
        build_needed = any(not b.successors and not b.predecessors for b in function.iter_blocks())
        if build_needed:
            from .cfg import build_cfg

            build_cfg(function)
        loops = find_loops(function)
    depth = {label: 0 for label in function.layout()}
    for loop in loops:
        for label in loop.blocks:
            depth[label] += 1
    return depth
