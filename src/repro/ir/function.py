"""Function representation: an ordered collection of basic blocks."""

from __future__ import annotations

from typing import Iterable, Iterator, Optional

from ..isa import Instruction
from .basic_block import BasicBlock

__all__ = ["Function"]


class Function:
    """A single procedure.

    Blocks are kept in *layout order*: the textual/binary order that
    determines fall-through successors.  ``num_params`` is the number of
    integer argument registers (``a0``..) the function reads; it feeds the
    interprocedural part of value range propagation and the call-site
    def/use modelling.
    """

    def __init__(self, name: str, num_params: int = 0) -> None:
        self.name = name
        self.num_params = num_params
        self.blocks: dict[str, BasicBlock] = {}
        self._layout: list[str] = []

    # ------------------------------------------------------------------
    # Block management
    # ------------------------------------------------------------------
    def add_block(self, block: BasicBlock, after: Optional[str] = None) -> BasicBlock:
        """Add ``block``, optionally right after the block labelled ``after``."""
        if block.label in self.blocks:
            raise ValueError(f"duplicate block label {block.label!r} in {self.name}")
        self.blocks[block.label] = block
        if after is None:
            self._layout.append(block.label)
        else:
            index = self._layout.index(after)
            self._layout.insert(index + 1, block.label)
        return block

    def new_block(self, label: str, after: Optional[str] = None) -> BasicBlock:
        """Create, add and return an empty block labelled ``label``."""
        return self.add_block(BasicBlock(label), after=after)

    def remove_block(self, label: str) -> None:
        """Remove the block labelled ``label``."""
        del self.blocks[label]
        self._layout.remove(label)

    def block(self, label: str) -> BasicBlock:
        """Look up a block by label."""
        return self.blocks[label]

    @property
    def entry_label(self) -> str:
        """Label of the entry block (first block in layout order)."""
        if not self._layout:
            raise ValueError(f"function {self.name} has no blocks")
        return self._layout[0]

    @property
    def entry(self) -> BasicBlock:
        """The entry block."""
        return self.blocks[self.entry_label]

    def layout(self) -> list[str]:
        """Block labels in layout order (copy)."""
        return list(self._layout)

    def layout_index(self, label: str) -> int:
        """Position of ``label`` in the layout order."""
        return self._layout.index(label)

    def block_after(self, label: str) -> Optional[BasicBlock]:
        """The block following ``label`` in layout order (fall-through target)."""
        index = self._layout.index(label)
        if index + 1 < len(self._layout):
            return self.blocks[self._layout[index + 1]]
        return None

    def unique_label(self, base: str) -> str:
        """Return a block label derived from ``base`` that is not yet used."""
        if base not in self.blocks:
            return base
        counter = 1
        while f"{base}_{counter}" in self.blocks:
            counter += 1
        return f"{base}_{counter}"

    # ------------------------------------------------------------------
    # Iteration helpers
    # ------------------------------------------------------------------
    def iter_blocks(self) -> Iterator[BasicBlock]:
        """Blocks in layout order."""
        for label in self._layout:
            yield self.blocks[label]

    def instructions(self) -> Iterator[Instruction]:
        """All instructions in layout order."""
        for block in self.iter_blocks():
            yield from block.instructions

    def instruction_count(self) -> int:
        """Number of static instructions in the function."""
        return sum(len(block) for block in self.iter_blocks())

    def find_instruction(self, uid: int) -> Optional[tuple[BasicBlock, int]]:
        """Locate an instruction by uid; returns (block, index) or None."""
        for block in self.iter_blocks():
            for index, inst in enumerate(block.instructions):
                if inst.uid == uid:
                    return block, index
        return None

    def calls(self) -> Iterable[Instruction]:
        """All call instructions in the function."""
        return (inst for inst in self.instructions() if inst.is_call)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Function({self.name!r}, {len(self.blocks)} blocks)"
