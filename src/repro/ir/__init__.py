"""Binary-level intermediate representation (the "Alto" substrate).

The IR plays the role that the Alto link-time optimizer plays in the paper:
a whole-program, binary-level representation with control-flow graphs,
dominators, natural loops, def-use chains and a call graph, on which the
value-range analyses operate and which can be rewritten (re-encoded opcodes,
cloned and guarded regions) and then simulated.
"""

from .basic_block import BasicBlock
from .builder import IRBuilder
from .callgraph import CallGraph, build_call_graph
from .cfg import build_cfg, postorder, reverse_postorder
from .defuse import (
    Definition,
    DependenceGraph,
    build_dependence_graph,
    call_defined_registers,
    call_used_registers,
)
from .dominators import DominatorTree, compute_dominators
from .function import Function
from .loops import Loop, find_loops, loop_nesting_depth
from .printer import format_function, format_instruction, format_program
from .program import DATA_BASE_ADDRESS, STACK_BASE_ADDRESS, DataObject, Program
from .validate import ValidationError, validate_function, validate_program

__all__ = [
    "BasicBlock",
    "IRBuilder",
    "CallGraph",
    "build_call_graph",
    "build_cfg",
    "postorder",
    "reverse_postorder",
    "Definition",
    "DependenceGraph",
    "build_dependence_graph",
    "call_defined_registers",
    "call_used_registers",
    "DominatorTree",
    "compute_dominators",
    "Function",
    "Loop",
    "find_loops",
    "loop_nesting_depth",
    "format_function",
    "format_instruction",
    "format_program",
    "DATA_BASE_ADDRESS",
    "STACK_BASE_ADDRESS",
    "DataObject",
    "Program",
    "ValidationError",
    "validate_function",
    "validate_program",
]
