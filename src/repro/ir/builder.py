"""Convenience builder for constructing IR functions programmatically.

The mini-C code generator, the assembler and many tests construct functions
through this builder rather than instantiating :class:`Instruction` by hand.
"""

from __future__ import annotations

from typing import Optional, Union

from ..isa import Imm, Instruction, Opcode, Operand, Reg, Width, ZERO
from .basic_block import BasicBlock
from .function import Function

__all__ = ["IRBuilder"]

RegOrInt = Union[Reg, int]


def _as_operand(value: RegOrInt) -> Operand:
    if isinstance(value, Reg):
        return value
    return Imm(int(value))


class IRBuilder:
    """Builds one :class:`~repro.ir.function.Function`, block by block."""

    def __init__(self, name: str, num_params: int = 0) -> None:
        self.function = Function(name, num_params=num_params)
        self._current: Optional[BasicBlock] = None

    # ------------------------------------------------------------------
    # Blocks
    # ------------------------------------------------------------------
    def block(self, label: str) -> BasicBlock:
        """Start (or resume) emitting into the block labelled ``label``."""
        if label in self.function.blocks:
            self._current = self.function.blocks[label]
        else:
            self._current = self.function.new_block(label)
        return self._current

    @property
    def current_block(self) -> BasicBlock:
        if self._current is None:
            raise RuntimeError("no current block; call block() first")
        return self._current

    # ------------------------------------------------------------------
    # Raw emission
    # ------------------------------------------------------------------
    def emit(self, instruction: Instruction) -> Instruction:
        """Append a pre-built instruction to the current block."""
        return self.current_block.append(instruction)

    def _emit(
        self,
        op: Opcode,
        dest: Optional[Reg] = None,
        srcs: tuple[Operand, ...] = (),
        target: Optional[str] = None,
        width: Width = Width.QUAD,
        comment: str = "",
    ) -> Instruction:
        inst = Instruction(op=op, dest=dest, srcs=srcs, target=target, width=width, comment=comment)
        return self.emit(inst)

    # ------------------------------------------------------------------
    # Moves and arithmetic
    # ------------------------------------------------------------------
    def li(self, dest: Reg, value: int, comment: str = "") -> Instruction:
        return self._emit(Opcode.LI, dest, (Imm(int(value)),), comment=comment)

    def mov(self, dest: Reg, src: Reg, comment: str = "") -> Instruction:
        return self._emit(Opcode.MOV, dest, (src,), comment=comment)

    def lda(self, dest: Reg, base: Reg, offset: int, comment: str = "") -> Instruction:
        return self._emit(Opcode.LDA, dest, (base, Imm(int(offset))), comment=comment)

    def add(self, dest: Reg, a: Reg, b: RegOrInt, comment: str = "") -> Instruction:
        return self._emit(Opcode.ADD, dest, (a, _as_operand(b)), comment=comment)

    def sub(self, dest: Reg, a: Reg, b: RegOrInt, comment: str = "") -> Instruction:
        return self._emit(Opcode.SUB, dest, (a, _as_operand(b)), comment=comment)

    def mul(self, dest: Reg, a: Reg, b: RegOrInt, comment: str = "") -> Instruction:
        return self._emit(Opcode.MUL, dest, (a, _as_operand(b)), comment=comment)

    def and_(self, dest: Reg, a: Reg, b: RegOrInt, comment: str = "") -> Instruction:
        return self._emit(Opcode.AND, dest, (a, _as_operand(b)), comment=comment)

    def or_(self, dest: Reg, a: Reg, b: RegOrInt, comment: str = "") -> Instruction:
        return self._emit(Opcode.OR, dest, (a, _as_operand(b)), comment=comment)

    def xor(self, dest: Reg, a: Reg, b: RegOrInt, comment: str = "") -> Instruction:
        return self._emit(Opcode.XOR, dest, (a, _as_operand(b)), comment=comment)

    def bic(self, dest: Reg, a: Reg, b: RegOrInt, comment: str = "") -> Instruction:
        return self._emit(Opcode.BIC, dest, (a, _as_operand(b)), comment=comment)

    def sll(self, dest: Reg, a: Reg, b: RegOrInt, comment: str = "") -> Instruction:
        return self._emit(Opcode.SLL, dest, (a, _as_operand(b)), comment=comment)

    def srl(self, dest: Reg, a: Reg, b: RegOrInt, comment: str = "") -> Instruction:
        return self._emit(Opcode.SRL, dest, (a, _as_operand(b)), comment=comment)

    def sra(self, dest: Reg, a: Reg, b: RegOrInt, comment: str = "") -> Instruction:
        return self._emit(Opcode.SRA, dest, (a, _as_operand(b)), comment=comment)

    def cmp(self, op: Opcode, dest: Reg, a: Reg, b: RegOrInt, comment: str = "") -> Instruction:
        return self._emit(op, dest, (a, _as_operand(b)), comment=comment)

    def cmov(self, op: Opcode, dest: Reg, cond: Reg, value: RegOrInt, comment: str = "") -> Instruction:
        return self._emit(op, dest, (cond, _as_operand(value)), comment=comment)

    def mask(self, op: Opcode, dest: Reg, src: Reg, comment: str = "") -> Instruction:
        return self._emit(op, dest, (src,), comment=comment)

    # ------------------------------------------------------------------
    # Memory
    # ------------------------------------------------------------------
    def load(self, op: Opcode, dest: Reg, base: Reg, offset: int = 0, comment: str = "") -> Instruction:
        return self._emit(op, dest, (base, Imm(int(offset))), comment=comment)

    def store(self, op: Opcode, value: Reg, base: Reg, offset: int = 0, comment: str = "") -> Instruction:
        return self._emit(op, None, (value, base, Imm(int(offset))), comment=comment)

    def ldq(self, dest: Reg, base: Reg, offset: int = 0) -> Instruction:
        return self.load(Opcode.LDQ, dest, base, offset)

    def stq(self, value: Reg, base: Reg, offset: int = 0) -> Instruction:
        return self.store(Opcode.STQ, value, base, offset)

    # ------------------------------------------------------------------
    # Control flow
    # ------------------------------------------------------------------
    def br(self, target: str, comment: str = "") -> Instruction:
        return self._emit(Opcode.BR, None, (), target=target, comment=comment)

    def branch(self, op: Opcode, cond: Reg, target: str, comment: str = "") -> Instruction:
        return self._emit(op, None, (cond,), target=target, comment=comment)

    def beq(self, cond: Reg, target: str) -> Instruction:
        return self.branch(Opcode.BEQ, cond, target)

    def bne(self, cond: Reg, target: str) -> Instruction:
        return self.branch(Opcode.BNE, cond, target)

    def call(self, callee: str, comment: str = "") -> Instruction:
        from ..isa import RETURN_ADDRESS

        return self._emit(Opcode.JSR, RETURN_ADDRESS, (), target=callee, comment=comment)

    def ret(self, comment: str = "") -> Instruction:
        from ..isa import RETURN_ADDRESS

        return self._emit(Opcode.RET, None, (RETURN_ADDRESS,), comment=comment)

    def halt(self) -> Instruction:
        return self._emit(Opcode.HALT)

    def nop(self) -> Instruction:
        return self._emit(Opcode.NOP)

    def print_(self, value: Reg) -> Instruction:
        return self._emit(Opcode.PRINT, None, (value,))

    # ------------------------------------------------------------------
    # Finalisation
    # ------------------------------------------------------------------
    def build(self) -> Function:
        """Finish and return the function (computes CFG edges)."""
        from .cfg import build_cfg

        build_cfg(self.function)
        return self.function


def zero_register() -> Reg:
    """The hardwired zero register (re-exported for builder users)."""
    return ZERO
