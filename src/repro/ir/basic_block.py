"""Basic blocks of the binary-level intermediate representation."""

from __future__ import annotations

from typing import Iterator, Optional

from ..isa import Instruction

__all__ = ["BasicBlock"]


class BasicBlock:
    """A straight-line sequence of instructions with a single entry point.

    Control can only enter at the first instruction and only leave at the
    last one (which is either a branch/return/halt or falls through to the
    next block in layout order).  Successor/predecessor labels are filled in
    by :func:`repro.ir.cfg.build_cfg`.
    """

    def __init__(self, label: str, instructions: Optional[list[Instruction]] = None) -> None:
        self.label = label
        self.instructions: list[Instruction] = list(instructions or [])
        self.successors: list[str] = []
        self.predecessors: list[str] = []

    # ------------------------------------------------------------------
    # Content manipulation
    # ------------------------------------------------------------------
    def append(self, instruction: Instruction) -> Instruction:
        """Append one instruction and return it."""
        self.instructions.append(instruction)
        return instruction

    def extend(self, instructions: list[Instruction]) -> None:
        """Append several instructions."""
        self.instructions.extend(instructions)

    def insert(self, index: int, instruction: Instruction) -> None:
        """Insert an instruction at ``index``."""
        self.instructions.insert(index, instruction)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def terminator(self) -> Optional[Instruction]:
        """The final control-flow instruction, if the block has one."""
        if self.instructions and self.instructions[-1].is_control:
            return self.instructions[-1]
        return None

    @property
    def falls_through(self) -> bool:
        """True when control can reach the next block in layout order."""
        term = self.terminator
        if term is None:
            return True
        if term.is_conditional_branch or term.is_call:
            return True
        return False

    def branch_targets(self) -> list[str]:
        """Labels this block branches to (not including fall-through)."""
        term = self.terminator
        if term is not None and term.is_branch and term.target is not None:
            return [term.target]
        return []

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def __len__(self) -> int:
        return len(self.instructions)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BasicBlock({self.label!r}, {len(self.instructions)} instructions)"
