"""Structural validation of IR programs.

Rewriting passes (particularly VRS, which clones regions and inserts
guards) call the validator to guarantee they did not corrupt the program.
"""

from __future__ import annotations

from ..isa import OpKind, Opcode
from .function import Function
from .program import Program

__all__ = ["ValidationError", "validate_function", "validate_program"]


class ValidationError(Exception):
    """Raised when an IR invariant does not hold."""


def validate_function(function: Function, program: Program | None = None) -> None:
    """Check the structural invariants of one function.

    * the function has an entry block,
    * control-flow instructions appear only as block terminators,
    * branch targets refer to existing blocks,
    * call targets refer to existing functions (when a program is given),
    * the last block does not fall off the end of the function.
    """
    if not function.layout():
        raise ValidationError(f"{function.name}: function has no blocks")

    labels = set(function.layout())
    for block in function.iter_blocks():
        for index, inst in enumerate(block.instructions):
            is_last = index == len(block.instructions) - 1
            if inst.is_control and not inst.is_call and not is_last:
                raise ValidationError(
                    f"{function.name}/{block.label}: control instruction {inst} "
                    f"is not the block terminator"
                )
            if inst.is_branch and inst.target not in labels:
                raise ValidationError(
                    f"{function.name}/{block.label}: branch to unknown label {inst.target!r}"
                )
            if inst.is_call and program is not None and inst.target not in program.functions:
                raise ValidationError(
                    f"{function.name}/{block.label}: call to unknown function {inst.target!r}"
                )
            if inst.kind is OpKind.STORE and len(inst.srcs) != 3:
                raise ValidationError(
                    f"{function.name}/{block.label}: store {inst} must have 3 operands"
                )

    last_label = function.layout()[-1]
    last_block = function.blocks[last_label]
    terminator = last_block.terminator
    if terminator is None or terminator.is_conditional_branch or terminator.is_call:
        # A trailing conditional branch or call would fall off the function.
        if terminator is None or terminator.op is not Opcode.HALT:
            raise ValidationError(
                f"{function.name}: final block {last_label!r} may fall off the end "
                f"of the function"
            )


def validate_program(program: Program) -> None:
    """Validate all functions of ``program`` plus program-level invariants."""
    if program.entry not in program.functions:
        raise ValidationError(f"entry function {program.entry!r} does not exist")
    for function in program.iter_functions():
        validate_function(function, program)
