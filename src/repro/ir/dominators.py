"""Dominator-tree computation (Cooper/Harvey/Kennedy iterative algorithm)."""

from __future__ import annotations

from .cfg import reverse_postorder
from .function import Function

__all__ = ["DominatorTree", "compute_dominators"]


class DominatorTree:
    """Immediate-dominator mapping plus convenience queries."""

    def __init__(self, function: Function, idom: dict[str, str]) -> None:
        self._function = function
        self.idom = idom
        self._children: dict[str, list[str]] = {}
        for node, parent in idom.items():
            if node != parent:
                self._children.setdefault(parent, []).append(node)

    def dominates(self, a: str, b: str) -> bool:
        """True when block ``a`` dominates block ``b`` (reflexive)."""
        node = b
        while True:
            if node == a:
                return True
            parent = self.idom.get(node)
            if parent is None or parent == node:
                return node == a
            node = parent

    def strictly_dominates(self, a: str, b: str) -> bool:
        return a != b and self.dominates(a, b)

    def children(self, label: str) -> list[str]:
        """Blocks immediately dominated by ``label``."""
        return list(self._children.get(label, []))

    def dominated_region(self, label: str) -> set[str]:
        """All blocks dominated by ``label`` (including itself)."""
        region: set[str] = set()
        stack = [label]
        while stack:
            node = stack.pop()
            if node in region:
                continue
            region.add(node)
            stack.extend(self._children.get(node, []))
        return region


def compute_dominators(function: Function) -> DominatorTree:
    """Compute the dominator tree of ``function`` (CFG must be built)."""
    rpo = reverse_postorder(function)
    index = {label: i for i, label in enumerate(rpo)}
    entry = function.entry_label
    idom: dict[str, str] = {entry: entry}

    def intersect(a: str, b: str) -> str:
        while a != b:
            while index[a] > index[b]:
                a = idom[a]
            while index[b] > index[a]:
                b = idom[b]
        return a

    changed = True
    while changed:
        changed = False
        for label in rpo:
            if label == entry:
                continue
            preds = [p for p in function.blocks[label].predecessors if p in idom]
            if not preds:
                continue
            new_idom = preds[0]
            for pred in preds[1:]:
                new_idom = intersect(pred, new_idom)
            if idom.get(label) != new_idom:
                idom[label] = new_idom
                changed = True

    # Unreachable blocks dominate only themselves.
    for label in function.layout():
        idom.setdefault(label, label)
    return DominatorTree(function, idom)
