"""Call-graph construction for interprocedural value range propagation."""

from __future__ import annotations

from dataclasses import dataclass, field

from .program import Program

__all__ = ["CallGraph", "build_call_graph"]


@dataclass
class CallGraph:
    """Caller/callee relation over a whole program."""

    callees: dict[str, set[str]] = field(default_factory=dict)
    callers: dict[str, set[str]] = field(default_factory=dict)
    call_sites: dict[str, list[int]] = field(default_factory=dict)

    def functions(self) -> set[str]:
        return set(self.callees) | set(self.callers)

    def callees_of(self, name: str) -> set[str]:
        return self.callees.get(name, set())

    def callers_of(self, name: str) -> set[str]:
        return self.callers.get(name, set())

    def bottom_up_order(self) -> list[str]:
        """Functions ordered callees-first (cycles broken arbitrarily).

        Interprocedural VRP wants callee return-ranges before analysing the
        caller, so a bottom-up (post-order) traversal over the call graph is
        the natural processing order.
        """
        order: list[str] = []
        visited: set[str] = set()

        def visit(name: str) -> None:
            if name in visited:
                return
            visited.add(name)
            for callee in sorted(self.callees.get(name, ())):
                visit(callee)
            order.append(name)

        for name in sorted(self.functions()):
            visit(name)
        return order


def build_call_graph(program: Program) -> CallGraph:
    """Build the call graph of ``program`` from its JSR instructions."""
    graph = CallGraph()
    for function in program.iter_functions():
        graph.callees.setdefault(function.name, set())
        graph.callers.setdefault(function.name, set())
    for function in program.iter_functions():
        for inst in function.instructions():
            if inst.is_call and inst.target is not None:
                graph.callees.setdefault(function.name, set()).add(inst.target)
                graph.callers.setdefault(inst.target, set()).add(function.name)
                graph.call_sites.setdefault(inst.target, []).append(inst.uid)
    return graph
