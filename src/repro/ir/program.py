"""Whole-program container: functions plus a static data segment."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from ..isa import Instruction, Width
from .function import Function

__all__ = ["DataObject", "Program", "DATA_BASE_ADDRESS", "STACK_BASE_ADDRESS"]

#: Base virtual address of the static data segment.  It is deliberately
#: placed above 2^16 so that global addresses are "wide" values, matching
#: the paper's observation that address-handling structures (LSQ, D-cache)
#: benefit little from operand gating.
DATA_BASE_ADDRESS = 0x1_0000_0000

#: Initial stack pointer.  The stack grows downwards from here.
STACK_BASE_ADDRESS = 0x7_FFFF_FF00


@dataclass
class DataObject:
    """A named object in the static data segment.

    ``element_width`` records the declared element size (``char`` arrays are
    byte arrays, ...) which is the HLL-declared-width information the
    compiler front end passes down to VRP (§2.1, first bullet).
    """

    name: str
    size_bytes: int
    element_width: Width = Width.QUAD
    initial_values: tuple[int, ...] = ()
    address: int = 0

    @property
    def element_count(self) -> int:
        return self.size_bytes // self.element_width.bytes


class Program:
    """A complete program: functions, data objects and an entry point."""

    def __init__(self, entry: str = "main") -> None:
        self.entry = entry
        self.functions: dict[str, Function] = {}
        self.data_objects: dict[str, DataObject] = {}
        self._next_data_address = DATA_BASE_ADDRESS

    # ------------------------------------------------------------------
    # Functions
    # ------------------------------------------------------------------
    def add_function(self, function: Function) -> Function:
        if function.name in self.functions:
            raise ValueError(f"duplicate function {function.name!r}")
        self.functions[function.name] = function
        return function

    def function(self, name: str) -> Function:
        return self.functions[name]

    @property
    def entry_function(self) -> Function:
        return self.functions[self.entry]

    def iter_functions(self) -> Iterator[Function]:
        return iter(self.functions.values())

    def instructions(self) -> Iterator[Instruction]:
        """All static instructions of the program."""
        for function in self.functions.values():
            yield from function.instructions()

    def instruction_count(self) -> int:
        return sum(f.instruction_count() for f in self.functions.values())

    # ------------------------------------------------------------------
    # Data segment
    # ------------------------------------------------------------------
    def add_data(
        self,
        name: str,
        size_bytes: int,
        element_width: Width = Width.QUAD,
        initial_values: tuple[int, ...] = (),
    ) -> DataObject:
        """Allocate a static data object and assign it an address."""
        if name in self.data_objects:
            raise ValueError(f"duplicate data object {name!r}")
        aligned = (self._next_data_address + 7) & ~7
        obj = DataObject(
            name=name,
            size_bytes=size_bytes,
            element_width=element_width,
            initial_values=tuple(initial_values),
            address=aligned,
        )
        self.data_objects[name] = obj
        self._next_data_address = aligned + max(size_bytes, 8)
        return obj

    def data(self, name: str) -> DataObject:
        return self.data_objects[name]

    def symbol_address(self, name: str) -> int:
        """Address of a data object by name."""
        return self.data_objects[name].address

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Program(entry={self.entry!r}, {len(self.functions)} functions, "
            f"{len(self.data_objects)} data objects)"
        )
