"""Textual printing of IR functions and programs.

The output format is the same one accepted by :mod:`repro.asm`, so a
program can be round-tripped program → text → program.
"""

from __future__ import annotations

from ..isa import Imm, Instruction, Opcode, Reg, Width
from .function import Function
from .program import Program

__all__ = ["format_instruction", "format_function", "format_program"]


def format_instruction(inst: Instruction) -> str:
    """Format one instruction in assembler syntax."""
    mnemonic = inst.op.value
    if inst.width is not Width.QUAD and not inst.is_memory and not inst.is_control:
        mnemonic = f"{mnemonic}.{inst.width.bits}"
    operands: list[str] = []
    # The assembler's jsr form is ``jsr target`` — the return-address
    # destination is implicit — so printing the dest here would make the
    # text reassemble as a call to a function named after the register.
    if inst.dest is not None and inst.op is not Opcode.JSR:
        operands.append(str(inst.dest))
    for src in inst.srcs:
        if isinstance(src, Imm):
            operands.append(str(src.value))
        elif isinstance(src, Reg):
            operands.append(str(src))
    if inst.target is not None:
        operands.append(inst.target)
    text = mnemonic
    if operands:
        text += " " + ", ".join(operands)
    if inst.comment:
        text += f"    ; {inst.comment}"
    return text


def format_function(function: Function) -> str:
    """Format one function as assembler text."""
    lines = [f".func {function.name} {function.num_params}"]
    for block in function.iter_blocks():
        lines.append(f"{block.label}:")
        for inst in block.instructions:
            lines.append(f"    {format_instruction(inst)}")
    lines.append(".endfunc")
    return "\n".join(lines)


def format_program(program: Program) -> str:
    """Format a whole program (data objects first, then functions)."""
    lines: list[str] = []
    for obj in program.data_objects.values():
        init = " ".join(str(v) for v in obj.initial_values)
        lines.append(f".data {obj.name} {obj.size_bytes} {obj.element_width.bits} {init}".rstrip())
    if lines:
        lines.append("")
    for function in program.iter_functions():
        lines.append(format_function(function))
        lines.append("")
    return "\n".join(lines).rstrip() + "\n"
