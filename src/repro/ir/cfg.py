"""Control-flow graph construction and traversal orders."""

from __future__ import annotations

from .function import Function

__all__ = ["build_cfg", "reverse_postorder", "postorder"]


def build_cfg(function: Function) -> None:
    """(Re)compute successor and predecessor edges for ``function``.

    Successors are the explicit branch targets of each block's terminator
    plus the fall-through block when the terminator permits it.  Returns,
    halts and unconditional branches do not fall through.
    """
    for block in function.iter_blocks():
        block.successors = []
        block.predecessors = []

    for block in function.iter_blocks():
        successors: list[str] = []
        for target in block.branch_targets():
            if target not in function.blocks:
                raise ValueError(
                    f"{function.name}/{block.label}: branch target {target!r} does not exist"
                )
            successors.append(target)
        if block.falls_through:
            following = function.block_after(block.label)
            if following is not None and following.label not in successors:
                successors.append(following.label)
        block.successors = successors

    for block in function.iter_blocks():
        for succ in block.successors:
            function.blocks[succ].predecessors.append(block.label)


def postorder(function: Function) -> list[str]:
    """Depth-first postorder over block labels, starting at the entry."""
    visited: set[str] = set()
    order: list[str] = []

    def visit(label: str) -> None:
        if label in visited:
            return
        visited.add(label)
        for succ in function.blocks[label].successors:
            visit(succ)
        order.append(label)

    visit(function.entry_label)
    # Unreachable blocks are appended at the end so every block gets a slot.
    for label in function.layout():
        visit(label)
    return order


def reverse_postorder(function: Function) -> list[str]:
    """Reverse postorder (a topological-ish order suited to forward dataflow)."""
    return list(reversed(postorder(function)))
