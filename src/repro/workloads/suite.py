"""The SpecInt95-analogue workload suite.

Each workload is a mini-C program plus ``train`` and ``ref`` input data sets
(global-array initial values).  The eight programs mirror the dominant
kernels of the SpecInt95 benchmarks the paper evaluates, so the dynamic
width distributions have the same qualitative shape: character and flag
data are narrow, addresses and accumulators are wide, and a few benchmarks
(the m88ksim and vortex analogues) carry mode variables that are almost
always a single small value — the pattern VRS exploits.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Callable

from ..ir import Program
from ..minic import compile_source

__all__ = ["Workload", "load_suite", "workload_by_name", "SUITE_NAMES"]

#: Benchmarks of SpecInt95, in the order the paper's figures use.
SUITE_NAMES = ("compress", "gcc", "go", "ijpeg", "li", "m88ksim", "perl", "vortex")


@dataclass
class Workload:
    """One benchmark: source text plus train/ref input data."""

    name: str
    description: str
    source: str
    train_data: dict[str, tuple[int, ...]] = field(default_factory=dict)
    ref_data: dict[str, tuple[int, ...]] = field(default_factory=dict)

    def build(self) -> Program:
        """Compile a fresh program instance for this workload."""
        return compile_source(self.source)

    def content_hash(self) -> str:
        """Stable SHA-256 over everything that determines this workload's build.

        The hash covers the source text and both input data sets, so two
        :class:`Workload` instances with the same name but different content
        (an edited program, changed inputs) never alias in the persistent
        result store.  The result is cached on the instance — treat a
        workload as immutable once it has been hashed/evaluated.
        """
        cached = self.__dict__.get("_content_hash")
        if cached is None:
            material = {
                "name": self.name,
                "source": self.source,
                "train": {name: list(values) for name, values in sorted(self.train_data.items())},
                "ref": {name: list(values) for name, values in sorted(self.ref_data.items())},
            }
            blob = json.dumps(material, sort_keys=True).encode("utf-8")
            cached = hashlib.sha256(blob).hexdigest()
            self.__dict__["_content_hash"] = cached
        return cached

    def apply_input(self, program: Program, which: str) -> None:
        """Install the ``train`` or ``ref`` input data into ``program``."""
        if which not in ("train", "ref"):
            raise ValueError(f"unknown input set {which!r}")
        data = self.train_data if which == "train" else self.ref_data
        for name, values in data.items():
            obj = program.data_objects[name]
            capacity = obj.element_count
            if len(values) > capacity:
                raise ValueError(
                    f"{self.name}: input {name!r} has {len(values)} values but only "
                    f"{capacity} fit"
                )
            obj.initial_values = tuple(values)


_REGISTRY: dict[str, Callable[[], Workload]] = {}


def register(name: str):
    """Decorator used by the program modules to register their factory."""

    def wrapper(factory: Callable[[], Workload]) -> Callable[[], Workload]:
        _REGISTRY[name] = factory
        return factory

    return wrapper


def load_suite() -> list[Workload]:
    """Instantiate every workload of the suite (in paper order)."""
    _ensure_loaded()
    return [_REGISTRY[name]() for name in SUITE_NAMES]


def workload_by_name(name: str) -> Workload:
    """Instantiate a single workload by its SpecInt95 name."""
    _ensure_loaded()
    return _REGISTRY[name]()


def _ensure_loaded() -> None:
    if _REGISTRY:
        return
    from .programs import (  # noqa: F401  (importing registers the factories)
        compress_w,
        gcc_w,
        go_w,
        ijpeg_w,
        li_w,
        m88ksim_w,
        perl_w,
        vortex_w,
    )
