"""Deterministic input-data generation for the workload suite.

The paper profiles with the SpecInt95 *train* inputs and evaluates with the
*reference* inputs.  Our synthetic analogues follow the same split: every
workload declares a ``train`` and a ``ref`` data set, generated here with a
small deterministic linear congruential generator so runs are reproducible
without any external files.
"""

from __future__ import annotations

__all__ = ["DataGenerator"]


class DataGenerator:
    """A tiny deterministic PRNG (64-bit LCG) for building input arrays."""

    _MULTIPLIER = 6364136223846793005
    _INCREMENT = 1442695040888963407
    _MASK = (1 << 64) - 1

    def __init__(self, seed: int) -> None:
        self._state = (seed * 2654435761 + 1) & self._MASK

    def next(self, bound: int) -> int:
        """Next value in ``[0, bound)``."""
        self._state = (self._state * self._MULTIPLIER + self._INCREMENT) & self._MASK
        return (self._state >> 33) % bound

    def values(self, count: int, bound: int) -> tuple[int, ...]:
        """A tuple of ``count`` values in ``[0, bound)``."""
        return tuple(self.next(bound) for _ in range(count))

    def bytes_(self, count: int) -> tuple[int, ...]:
        """A tuple of ``count`` byte values."""
        return self.values(count, 256)

    def skewed_bytes(self, count: int, hot_value: int, hot_fraction_percent: int) -> tuple[int, ...]:
        """Bytes where ``hot_value`` appears roughly ``hot_fraction_percent``% of the time.

        Skewed distributions are what make value (range) specialization
        profitable, mirroring the mode/flag variables of m88ksim and vortex.
        """
        result = []
        for _ in range(count):
            if self.next(100) < hot_fraction_percent:
                result.append(hot_value)
            else:
                result.append(self.next(256))
        return tuple(result)
