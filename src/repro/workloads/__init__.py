"""SpecInt95-analogue workload suite."""

from .inputs import DataGenerator
from .suite import SUITE_NAMES, Workload, load_suite, workload_by_name

__all__ = ["DataGenerator", "SUITE_NAMES", "Workload", "load_suite", "workload_by_name"]
