"""``gcc`` analogue: table-driven peephole optimisation over an opcode stream.

gcc's hot loops walk instruction lists making small table-driven decisions;
operands are small enumerations while pointers/addresses stay wide.
"""

from __future__ import annotations

from ..inputs import DataGenerator
from ..suite import Workload, register

_SOURCE = """
int job_size;
int opcodes[1024];
int operands[1024];
int costs[32];
int rewritten[1024];

int op_cost(int op) {
    int c;
    c = costs[op & 31];
    return c;
}

int simplify(int op, int operand) {
    int result;
    result = op;
    if (op == 3) {
        if (operand == 0) {
            result = 0;
        }
    }
    if (op == 5) {
        if (operand == 1) {
            result = 4;
        }
    }
    if (op > 24) {
        result = op & 7;
    }
    return result;
}

int main() {
    int i;
    int n;
    int op;
    int arg;
    int new_op;
    int folded;
    long total_cost;

    n = job_size;
    folded = 0;
    total_cost = 0;

    for (i = 0; i < 32; i = i + 1) {
        costs[i] = (i * 3) & 15;
    }

    for (i = 0; i < n; i = i + 1) {
        op = opcodes[i & 1023];
        arg = operands[i & 1023];
        new_op = simplify(op, arg);
        rewritten[i & 1023] = new_op;
        if (new_op != op) {
            folded = folded + 1;
        }
        total_cost = total_cost + op_cost(new_op);
    }

    print(total_cost);
    print(folded);
    return 0;
}
"""


@register("gcc")
def build() -> Workload:
    train = DataGenerator(303)
    ref = DataGenerator(404)
    return Workload(
        name="gcc",
        description="peephole optimizer walking an opcode/operand stream",
        source=_SOURCE,
        train_data={
            "job_size": (700,),
            "opcodes": train.values(1024, 32),
            "operands": train.values(1024, 8),
        },
        ref_data={
            "job_size": (1100,),
            "opcodes": ref.values(1024, 32),
            "operands": ref.values(1024, 8),
        },
    )
