"""``vortex`` analogue: an object database packing/unpacking record fields.

vortex manipulates object records whose status/type fields take one hot
value almost always — the second workload (with m88ksim) where VRS's
single-value specialization plus constant propagation removes most of the
specialized region.
"""

from __future__ import annotations

from ..inputs import DataGenerator
from ..suite import Workload, register

_SOURCE = """
int job_size;
int records[1024];
int index_table[256];
int status_counts[8];
long field_sum;

int unpack_status(int record) {
    int status;
    status = record & 7;
    return status;
}

int unpack_field(int record) {
    int field;
    field = (record >> 3) & 255;
    return field;
}

int lookup(int key) {
    int slot;
    slot = index_table[key & 255];
    return slot;
}

int main() {
    int i;
    int record;
    int status;
    int field;
    int slot;
    long checksum;

    field_sum = 0;
    checksum = 0;
    for (i = 0; i < 8; i = i + 1) {
        status_counts[i] = 0;
    }
    for (i = 0; i < 256; i = i + 1) {
        index_table[i] = (i * 7) & 1023;
    }

    for (i = 0; i < job_size; i = i + 1) {
        record = records[i & 1023];
        status = unpack_status(record);
        field = unpack_field(record);
        status_counts[status] = status_counts[status] + 1;
        if (status == 1) {
            slot = lookup(field);
            field_sum = field_sum + field + (slot & 63);
        } else {
            field_sum = field_sum + (field << 1);
        }
        checksum = checksum + status;
    }

    print(field_sum);
    print(checksum);
    return 0;
}
"""


def _records(generator: DataGenerator, count: int, hot_percent: int) -> tuple[int, ...]:
    """Records whose status field (low 3 bits) is 1 ``hot_percent``% of the time."""
    values = []
    for _ in range(count):
        field = generator.next(256)
        extra = generator.next(4)
        if generator.next(100) < hot_percent:
            status = 1
        else:
            status = generator.next(8)
        values.append((extra << 11) | (field << 3) | status)
    return tuple(values)


@register("vortex")
def build() -> Workload:
    train = DataGenerator(1515)
    ref = DataGenerator(1616)
    return Workload(
        name="vortex",
        description="object-database record unpacking with a dominant status value",
        source=_SOURCE,
        train_data={"job_size": (700,), "records": _records(train, 1024, 85)},
        ref_data={"job_size": (1100,), "records": _records(ref, 1024, 85)},
    )
