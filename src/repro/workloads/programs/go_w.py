"""``go`` analogue: board evaluation with neighbour counting and influence.

Go engines spend their time scanning a 19x19 board of tiny values
(empty/black/white) and accumulating small influence scores.
"""

from __future__ import annotations

from ..inputs import DataGenerator
from ..suite import Workload, register

_SOURCE = """
int job_size;
char board[400];
char influence[400];
int liberties[400];

int neighbour_count(int point, int colour) {
    int count;
    int up;
    int down;
    count = 0;
    up = point - 19;
    down = point + 19;
    if (up >= 0) {
        if (board[up] == colour) { count = count + 1; }
    }
    if (down < 361) {
        if (board[down] == colour) { count = count + 1; }
    }
    if (point > 0) {
        if (board[point - 1] == colour) { count = count + 1; }
    }
    if (point < 360) {
        if (board[point + 1] == colour) { count = count + 1; }
    }
    return count;
}

int main() {
    int pass;
    int point;
    int stone;
    int score;
    long evaluation;

    evaluation = 0;
    for (pass = 0; pass < job_size; pass = pass + 1) {
        for (point = 0; point < 361; point = point + 1) {
            stone = board[point];
            if (stone == 0) {
                influence[point] = neighbour_count(point, 1) - neighbour_count(point, 2) + 8;
            } else {
                liberties[point] = neighbour_count(point, 0);
            }
        }
        score = 0;
        for (point = 0; point < 361; point = point + 1) {
            score = score + influence[point] - 8;
        }
        evaluation = evaluation + score;
    }
    print(evaluation);
    return 0;
}
"""


@register("go")
def build() -> Workload:
    train = DataGenerator(505)
    ref = DataGenerator(606)
    return Workload(
        name="go",
        description="Go board evaluation: neighbour counting and influence maps",
        source=_SOURCE,
        train_data={
            "job_size": (2,),
            "board": train.values(361, 3),
        },
        ref_data={
            "job_size": (3,),
            "board": ref.values(361, 3),
        },
    )
