"""``perl`` analogue: word hashing into an associative table.

perl's interpreter loops hash short strings into hash tables; characters
and hash buckets are narrow while the table slots behave like pointers.
"""

from __future__ import annotations

from ..inputs import DataGenerator
from ..suite import Workload, register

_SOURCE = """
int job_size;
char text[2048];
int buckets[256];
int bucket_keys[256];
int collisions;

int hash_word(int start, int length) {
    int i;
    int h;
    int c;
    h = 5381 & 1023;
    for (i = 0; i < length; i = i + 1) {
        c = text[(start + i) & 2047];
        h = ((h << 5) + h + c) & 1023;
    }
    return h & 255;
}

int insert(int key, int value) {
    int slot;
    int probes;
    slot = key;
    probes = 0;
    while (probes < 8) {
        if (buckets[slot] == 0) {
            buckets[slot] = value;
            bucket_keys[slot] = key;
            return probes;
        }
        if (bucket_keys[slot] == key) {
            buckets[slot] = buckets[slot] + value;
            return probes;
        }
        slot = (slot + 1) & 255;
        probes = probes + 1;
        collisions = collisions + 1;
    }
    return probes;
}

int main() {
    int word;
    int start;
    int length;
    int key;
    long checksum;
    int i;

    collisions = 0;
    checksum = 0;
    for (i = 0; i < 256; i = i + 1) {
        buckets[i] = 0;
        bucket_keys[i] = 0;
    }

    start = 0;
    for (word = 0; word < job_size; word = word + 1) {
        length = (text[start & 2047] & 7) + 2;
        key = hash_word(start, length);
        insert(key, length);
        start = start + length;
    }

    for (i = 0; i < 256; i = i + 1) {
        checksum = checksum + buckets[i];
    }
    print(checksum);
    print(collisions);
    return 0;
}
"""


@register("perl")
def build() -> Workload:
    train = DataGenerator(1313)
    ref = DataGenerator(1414)
    return Workload(
        name="perl",
        description="string hashing into an open-addressed associative table",
        source=_SOURCE,
        train_data={"job_size": (220,), "text": train.bytes_(2048)},
        ref_data={"job_size": (380,), "text": ref.bytes_(2048)},
    )
