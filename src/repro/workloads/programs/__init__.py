"""Workload program definitions (one module per SpecInt95 analogue)."""
