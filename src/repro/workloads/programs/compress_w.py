"""``compress`` analogue: byte-stream compression (hash + run-length).

SpecInt95's compress spends its time hashing byte pairs and emitting codes;
almost all of its data fits in one or two bytes, which is why the paper's
width distributions are so narrow for it.
"""

from __future__ import annotations

from ..inputs import DataGenerator
from ..suite import Workload, register

_SOURCE = """
int job_size;
char input[1024];
char output[2048];
int htab[256];
int codes[256];

int hash_pair(int previous, int current) {
    int h;
    h = (previous * 37 + current * 17) & 255;
    return h;
}

int emit(int position, int code) {
    output[position & 2047] = code & 255;
    return position + 1;
}

int main() {
    int i;
    int n;
    int prev;
    int cur;
    int h;
    int out_pos;
    int run;
    long checksum;

    n = job_size;
    out_pos = 0;
    prev = 0;
    run = 0;
    checksum = 0;

    for (i = 0; i < 256; i = i + 1) {
        htab[i] = 0;
        codes[i] = i & 255;
    }

    for (i = 0; i < n; i = i + 1) {
        cur = input[i & 1023];
        if (cur == prev) {
            run = run + 1;
            if (run == 255) {
                out_pos = emit(out_pos, run);
                run = 0;
            }
        } else {
            if (run > 0) {
                out_pos = emit(out_pos, run);
            }
            h = hash_pair(prev, cur);
            htab[h] = htab[h] + 1;
            out_pos = emit(out_pos, codes[h]);
            run = 0;
        }
        prev = cur;
    }

    for (i = 0; i < 256; i = i + 1) {
        checksum = checksum + htab[i];
    }
    checksum = checksum + out_pos;
    print(checksum);
    return 0;
}
"""


@register("compress")
def build() -> Workload:
    train = DataGenerator(101)
    ref = DataGenerator(202)
    return Workload(
        name="compress",
        description="byte-stream compression: pair hashing plus run-length encoding",
        source=_SOURCE,
        train_data={
            "job_size": (600,),
            "input": train.skewed_bytes(1024, hot_value=32, hot_fraction_percent=35),
        },
        ref_data={
            "job_size": (900,),
            "input": ref.skewed_bytes(1024, hot_value=32, hot_fraction_percent=30),
        },
    )
