"""``li`` analogue: a small expression-tree interpreter.

xlisp (SpecInt95's li) recursively evaluates tagged cells; the tags and
most leaf values are tiny, while cell indices behave like pointers.
"""

from __future__ import annotations

from ..inputs import DataGenerator
from ..suite import Workload, register

_SOURCE = """
int job_size;
char cell_op[512];
int cell_left[512];
int cell_right[512];
int leaf_value[512];

long eval_cell(int node) {
    int op;
    long left;
    long right;
    long result;
    op = cell_op[node & 511];
    if (op == 0) {
        result = leaf_value[node & 511];
    } else {
        left = eval_cell(cell_left[node & 511]);
        right = eval_cell(cell_right[node & 511]);
        if (op == 1) { result = left + right; }
        else {
            if (op == 2) { result = left - right; }
            else {
                if (op == 3) { result = left & right; }
                else { result = left ^ right; }
            }
        }
    }
    return result;
}

int main() {
    int round;
    int root;
    long accumulator;

    accumulator = 0;
    for (round = 0; round < job_size; round = round + 1) {
        for (root = 256; root < 512; root = root + 8) {
            accumulator = accumulator + eval_cell(root);
        }
    }
    print(accumulator);
    return 0;
}
"""


def _tree_data(generator: DataGenerator) -> dict[str, tuple[int, ...]]:
    """Build a forest of shallow expression trees over 512 cells.

    Cells 0-255 are leaves, cells 256-383 are depth-1 operators over leaves,
    and cells 384-511 are depth-2 operators over depth-1 cells, so every
    evaluation touches at most seven cells and the recursion is bounded.
    """
    ops = []
    left = []
    right = []
    leaves = []
    for index in range(512):
        if index < 256:
            ops.append(0)
            left.append(0)
            right.append(0)
            leaves.append(generator.next(64))
        elif index < 384:
            ops.append(1 + generator.next(4))
            left.append(generator.next(256))
            right.append(generator.next(256))
            leaves.append(0)
        else:
            ops.append(1 + generator.next(4))
            left.append(256 + generator.next(128))
            right.append(256 + generator.next(128))
            leaves.append(0)
    return {
        "cell_op": tuple(ops),
        "cell_left": tuple(left),
        "cell_right": tuple(right),
        "leaf_value": tuple(leaves),
    }


@register("li")
def build() -> Workload:
    train = DataGenerator(909)
    ref = DataGenerator(1010)
    train_data = _tree_data(train)
    ref_data = _tree_data(ref)
    train_data["job_size"] = (2,)
    ref_data["job_size"] = (5,)
    return Workload(
        name="li",
        description="recursive evaluation of tagged expression cells",
        source=_SOURCE,
        train_data=train_data,
        ref_data=ref_data,
    )
