"""``ijpeg`` analogue: 8x8 block transform and quantisation.

Image compression works on byte pixels, widens them briefly inside the
transform butterflies, then quantises back down with shifts — a classic
mix of 8/16-bit useful data inside 32-bit arithmetic.
"""

from __future__ import annotations

from ..inputs import DataGenerator
from ..suite import Workload, register

_SOURCE = """
int job_size;
char image[1024];
int block[64];
int coeffs[64];
int quant[64];
long histogram[16];

int transform_row(int base) {
    int j;
    int a;
    int b;
    for (j = 0; j < 4; j = j + 1) {
        a = block[base + j];
        b = block[base + 7 - j];
        block[base + j] = a + b;
        block[base + 7 - j] = (a - b) << 1;
    }
    return base;
}

int main() {
    int blk;
    int i;
    int pixel;
    int q;
    int bucket;
    long energy;

    energy = 0;
    for (i = 0; i < 64; i = i + 1) {
        quant[i] = (i & 7) + 1;
    }
    for (i = 0; i < 16; i = i + 1) {
        histogram[i] = 0;
    }

    for (blk = 0; blk < job_size; blk = blk + 1) {
        for (i = 0; i < 64; i = i + 1) {
            pixel = image[((blk << 6) + i) & 1023];
            block[i] = pixel - 128;
        }
        for (i = 0; i < 8; i = i + 1) {
            transform_row(i << 3);
        }
        for (i = 0; i < 64; i = i + 1) {
            q = block[i] >> (quant[i] & 7);
            coeffs[i] = q;
            bucket = q & 15;
            histogram[bucket] = histogram[bucket] + 1;
            energy = energy + (q * q);
        }
    }

    print(energy);
    return 0;
}
"""


@register("ijpeg")
def build() -> Workload:
    train = DataGenerator(707)
    ref = DataGenerator(808)
    return Workload(
        name="ijpeg",
        description="8x8 image block transform, quantisation and histogramming",
        source=_SOURCE,
        train_data={"job_size": (4,), "image": train.bytes_(1024)},
        ref_data={"job_size": (12,), "image": ref.bytes_(1024)},
    )
