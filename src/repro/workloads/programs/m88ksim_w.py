"""``m88ksim`` analogue: an instruction-set simulator's decode/execute loop.

m88ksim decodes 32-bit instruction words into small fields and dispatches
on them; its processor-mode flag is almost always the same value, which is
exactly the pattern the paper's value range specialization (and its
constant-propagation clean-up) exploits.
"""

from __future__ import annotations

from ..inputs import DataGenerator
from ..suite import Workload, register

_SOURCE = """
int job_size;
int imem[512];
long cpuregs[16];
int cpu_mode;
int exception_count;

int decode_op(int word) {
    int op;
    op = (word >> 12) & 7;
    return op;
}

long alu(int op, long a, long b) {
    long r;
    if (op == 0) { r = a + b; }
    else {
        if (op == 1) { r = a - b; }
        else {
            if (op == 2) { r = a & b; }
            else {
                if (op == 3) { r = a | b; }
                else { r = a ^ b; }
            }
        }
    }
    return r;
}

int main() {
    int pc;
    int cycles;
    int word;
    int op;
    int rd;
    int rs;
    int imm;
    long result;
    long checksum;

    checksum = 0;
    exception_count = 0;
    for (pc = 0; pc < 16; pc = pc + 1) {
        cpuregs[pc] = pc;
    }

    for (cycles = 0; cycles < job_size; cycles = cycles + 1) {
        word = imem[cycles & 511];
        op = decode_op(word);
        rd = (word >> 8) & 15;
        rs = (word >> 4) & 15;
        imm = word & 15;
        if (cpu_mode == 0) {
            result = alu(op, cpuregs[rs], imm);
            cpuregs[rd] = result & 65535;
        } else {
            if (op > 5) {
                exception_count = exception_count + 1;
            }
            result = alu(op, cpuregs[rs], cpuregs[rd]);
            cpuregs[rd] = result;
        }
        checksum = checksum + cpuregs[rd];
    }

    print(checksum);
    print(exception_count);
    return 0;
}
"""


@register("m88ksim")
def build() -> Workload:
    train = DataGenerator(1111)
    ref = DataGenerator(1212)
    return Workload(
        name="m88ksim",
        description="CPU simulator decode/execute loop with a dominant mode flag",
        source=_SOURCE,
        train_data={
            "job_size": (700,),
            "imem": train.values(512, 1 << 16),
            "cpu_mode": (0,),
        },
        ref_data={
            "job_size": (1000,),
            "imem": ref.values(512, 1 << 16),
            "cpu_mode": (0,),
        },
    )
