"""Functional (architectural) simulator for the Alpha-like ISA.

The machine executes a :class:`~repro.ir.Program` with exact 64-bit
two's-complement semantics, honouring the *encoded width* of every
instruction (a ``add.8`` wraps its result to 8 bits).  Because VRP/VRS are
required to be conservative, running the original and the transformed
program must produce identical outputs — the test suite checks exactly
that.

Besides program output, the machine produces the dynamic artefacts the rest
of the system needs:

* basic-block execution counts (VRS candidate identification, Figure 4),
* a full dynamic trace (timing model, power model, hardware schemes),
* value observations at watched instructions (the Calder-style value
  profiler used by VRS).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Protocol

from ..isa import Imm, Instruction, Opcode, OpKind, Reg, Width, to_signed
from ..isa.semantics import (
    ARITHMETIC_SEMANTICS as _ARITH,
    BRANCH_SEMANTICS as _BRANCH,
    COMPARE_SEMANTICS as _COMPARE,
    MASK_SEMANTICS as _MASK,
)
from ..isa.widths import wrap_to_width
from ..ir import Program, STACK_BASE_ADDRESS
from .memory import Memory, load_program_data
from .trace import StaticInfo, Trace, TraceRecord

__all__ = ["Machine", "RunResult", "SimulationError", "SimulationLimitExceeded", "ValueObserver"]

#: Base address of the (virtual) code segment; instructions are 4 bytes.
CODE_BASE_ADDRESS = 0x1000


class SimulationError(Exception):
    """Raised when the simulated program performs an illegal operation."""


class SimulationLimitExceeded(SimulationError):
    """Raised when the dynamic instruction limit is exceeded."""


class ValueObserver(Protocol):
    """Interface for value profiling hooks (see :mod:`repro.core.profiling`)."""

    watched_uids: set[int]

    def observe(self, uid: int, value: int) -> None:  # pragma: no cover - protocol
        ...


@dataclass
class RunResult:
    """Outcome of one functional simulation."""

    instructions: int
    output: list[int]
    block_counts: dict[tuple[str, str], int]
    halted: bool
    trace: Optional[Trace] = None
    call_counts: dict[str, int] = field(default_factory=dict)

    def instruction_counts(self, program: Program) -> dict[int, int]:
        """Per-static-instruction execution counts, derived from block counts."""
        counts: dict[int, int] = {}
        for function in program.iter_functions():
            for block in function.iter_blocks():
                count = self.block_counts.get((function.name, block.label), 0)
                if count == 0:
                    continue
                for inst in block.instructions:
                    counts[inst.uid] = counts.get(inst.uid, 0) + count
        return counts


class Machine:
    """Functional simulator."""

    def __init__(self, program: Program, max_instructions: int = 20_000_000) -> None:
        self.program = program
        self.max_instructions = max_instructions
        # Flatten the program into an address-indexed instruction sequence.
        self._flat: list[tuple[str, str, Instruction]] = []
        self._block_start: dict[tuple[str, str], int] = {}
        self._function_entry: dict[str, int] = {}
        for function in program.iter_functions():
            self._function_entry[function.name] = len(self._flat)
            for block in function.iter_blocks():
                self._block_start[(function.name, block.label)] = len(self._flat)
                for inst in block.instructions:
                    self._flat.append((function.name, block.label, inst))
        self.static_info = StaticInfo.from_program(program)

    # ------------------------------------------------------------------
    # Address helpers
    # ------------------------------------------------------------------
    def address_of_index(self, index: int) -> int:
        return CODE_BASE_ADDRESS + 4 * index

    def index_of_address(self, address: int) -> int:
        index = (address - CODE_BASE_ADDRESS) // 4
        if not 0 <= index <= len(self._flat):
            raise SimulationError(f"jump to invalid code address {address:#x}")
        return index

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(
        self,
        collect_trace: bool = False,
        value_observer: Optional[ValueObserver] = None,
        arguments: Optional[list[int]] = None,
    ) -> RunResult:
        """Execute the program from its entry function until HALT.

        Args:
            collect_trace: record a full :class:`Trace` (needed by the
                timing/power models; costs memory proportional to the run).
            value_observer: optional value-profiling hook.
            arguments: optional initial values for the argument registers of
                the entry function (``a0``, ``a1``...).
        """
        regs = [0] * 32
        regs[30] = STACK_BASE_ADDRESS
        memory = Memory()
        load_program_data(memory, self.program)
        if arguments:
            for index, value in enumerate(arguments[:6]):
                regs[16 + index] = to_signed(value)

        entry = self.program.entry
        if entry not in self._function_entry:
            raise SimulationError(f"entry function {entry!r} not found")
        pc = self._function_entry[entry]
        # A return address outside the code segment terminates execution
        # (used when the entry function returns instead of halting).
        stop_address = self.address_of_index(len(self._flat) + 16)
        regs[26] = stop_address

        block_counts: dict[tuple[str, str], int] = {}
        call_counts: dict[str, int] = {}
        records: list[TraceRecord] = []
        output: list[int] = []
        watched = value_observer.watched_uids if value_observer is not None else frozenset()

        executed = 0
        halted = False
        current_block_key: Optional[tuple[str, str]] = None

        while True:
            if pc >= len(self._flat):
                raise SimulationError("program counter ran past the end of the program")
            function_name, block_label, inst = self._flat[pc]
            block_key = (function_name, block_label)
            if self._block_start[block_key] == pc:
                block_counts[block_key] = block_counts.get(block_key, 0) + 1
                current_block_key = block_key

            executed += 1
            if executed > self.max_instructions:
                raise SimulationLimitExceeded(
                    f"exceeded the limit of {self.max_instructions} dynamic instructions"
                )

            next_pc = pc + 1
            taken: Optional[bool] = None
            mem_address: Optional[int] = None
            result: Optional[int] = None
            srcs: tuple[int, ...] = ()

            op = inst.op
            kind = inst.kind
            width = inst.width

            if kind is OpKind.ALU or kind is OpKind.MUL or kind is OpKind.LOGICAL or kind is OpKind.SHIFT:
                a = self._read(regs, inst.srcs[0])
                b = self._read(regs, inst.srcs[1])
                srcs = (a, b)
                result = _ARITH[op](a, b, width)
                self._write(regs, inst.dest, result)
            elif kind is OpKind.COMPARE:
                a = self._read(regs, inst.srcs[0])
                b = self._read(regs, inst.srcs[1])
                srcs = (a, b)
                result = _COMPARE[op](a, b)
                self._write(regs, inst.dest, result)
            elif kind is OpKind.CMOV:
                cond = self._read(regs, inst.srcs[0])
                value = self._read(regs, inst.srcs[1])
                old = self._read(regs, inst.dest)
                srcs = (cond, value, old)
                take = cond == 0 if op is Opcode.CMOVEQ else cond != 0
                result = wrap_to_width(value, width) if take else old
                self._write(regs, inst.dest, result)
            elif kind is OpKind.MASK or kind is OpKind.EXTEND:
                a = self._read(regs, inst.srcs[0])
                srcs = (a,)
                result = _MASK[op](a)
                self._write(regs, inst.dest, result)
            elif kind is OpKind.MOVE:
                if op is Opcode.LI:
                    result = to_signed(self._read(regs, inst.srcs[0]))
                elif op is Opcode.MOV:
                    a = self._read(regs, inst.srcs[0])
                    srcs = (a,)
                    result = a
                else:  # LDA
                    a = self._read(regs, inst.srcs[0])
                    offset = self._read(regs, inst.srcs[1])
                    srcs = (a,)
                    result = wrap_to_width(a + offset, Width.QUAD)
                self._write(regs, inst.dest, result)
            elif kind is OpKind.LOAD:
                base = self._read(regs, inst.srcs[0])
                offset = self._read(regs, inst.srcs[1])
                mem_address = (base + offset) & ((1 << 64) - 1)
                srcs = (base,)
                signed = op in (Opcode.LDW, Opcode.LDQ)
                result = memory.load(mem_address, inst.memory_width, signed)
                self._write(regs, inst.dest, result)
            elif kind is OpKind.STORE:
                value = self._read(regs, inst.srcs[0])
                base = self._read(regs, inst.srcs[1])
                offset = self._read(regs, inst.srcs[2])
                mem_address = (base + offset) & ((1 << 64) - 1)
                srcs = (value, base)
                memory.store(mem_address, value, inst.memory_width)
            elif kind is OpKind.BRANCH:
                if op is Opcode.BR:
                    taken = True
                else:
                    cond = self._read(regs, inst.srcs[0])
                    srcs = (cond,)
                    taken = _BRANCH[op](cond)
                if taken:
                    next_pc = self._block_start[(function_name, inst.target)]
            elif kind is OpKind.CALL:
                return_address = self.address_of_index(pc + 1)
                self._write(regs, inst.dest, return_address)
                result = return_address
                next_pc = self._function_entry[inst.target]
                call_counts[inst.target] = call_counts.get(inst.target, 0) + 1
                taken = True
            elif kind is OpKind.RETURN:
                address = self._read(regs, inst.srcs[0])
                srcs = (address,)
                taken = True
                if address == stop_address:
                    halted = True
                else:
                    next_pc = self.index_of_address(address)
            elif kind is OpKind.HALT:
                halted = True
            elif kind is OpKind.OUTPUT:
                value = self._read(regs, inst.srcs[0])
                srcs = (value,)
                output.append(value)
            elif kind is OpKind.NOP:
                pass
            else:  # pragma: no cover - all kinds handled above
                raise SimulationError(f"cannot execute {inst}")

            if inst.uid in watched and result is not None:
                value_observer.observe(inst.uid, result)

            if collect_trace:
                records.append(
                    TraceRecord(
                        uid=inst.uid,
                        address=self.address_of_index(pc),
                        srcs=srcs,
                        result=result,
                        mem_address=mem_address,
                        taken=taken,
                        next_address=self.address_of_index(next_pc),
                    )
                )

            if halted:
                break
            pc = next_pc

        trace = Trace(records=records, static=self.static_info) if collect_trace else None
        return RunResult(
            instructions=executed,
            output=output,
            block_counts=block_counts,
            halted=halted,
            trace=trace,
            call_counts=call_counts,
        )

    # ------------------------------------------------------------------
    # Register access
    # ------------------------------------------------------------------
    @staticmethod
    def _read(regs: list[int], operand) -> int:
        if isinstance(operand, Imm):
            return operand.value
        if operand.index == 31:
            return 0
        return regs[operand.index]

    @staticmethod
    def _write(regs: list[int], dest: Optional[Reg], value: int) -> None:
        if dest is None or dest.index == 31:
            return
        regs[dest.index] = to_signed(value)


